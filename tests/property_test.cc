// Randomized property tests across module boundaries: serialization round
// trips, algebraic invariants, and Def. 8 verification of SEA on random
// inputs. Seeds are fixed, so failures are reproducible.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "ontology/hierarchy_io.h"
#include "ontology/sea.h"
#include "sim/measure_registry.h"
#include "tax/condition_parser.h"
#include "tax/embedding.h"
#include "tax/operators.h"
#include "tax/tax_semantics.h"
#include "xml/xml_parser.h"
#include "xml/xpath.h"
#include "xml/xml_writer.h"

namespace toss {
namespace {

// ---------------------------------------------------------------------------
// Random generators
// ---------------------------------------------------------------------------

tax::DataTree RandomTree(Random* rng, size_t max_nodes) {
  tax::DataTree t;
  const char* tags[] = {"a", "b", "c", "item", "name"};
  auto tag = [&] { return tags[rng->Uniform(std::size(tags))]; };
  auto content = [&] {
    // Mix of empty, plain, and escape-needing content.
    switch (rng->Uniform(4)) {
      case 0:
        return std::string();
      case 1:
        return rng->AlphaString(1 + rng->Uniform(8));
      case 2:
        return "x<&>\"y" + rng->AlphaString(2);
      default:
        return "multi word " + rng->AlphaString(3);
    }
  };
  tax::NodeId root = t.CreateRoot(tag(), content());
  (void)root;
  size_t n = 1 + rng->Uniform(max_nodes);
  for (size_t i = 1; i < n; ++i) {
    tax::NodeId parent = static_cast<tax::NodeId>(rng->Uniform(t.size()));
    t.AppendChild(parent, tag(), content());
  }
  return t;
}

ontology::Hierarchy RandomOrderedHierarchy(Random* rng, size_t n) {
  ontology::Hierarchy h;
  for (size_t i = 0; i < n; ++i) {
    std::string term = rng->AlphaString(4 + rng->Uniform(8));
    if (i % 3 == 2) {
      // Near-duplicate of the previous term to exercise grouping.
      term = h.terms(static_cast<ontology::HNodeId>(i - 1))[0];
      term[rng->Uniform(term.size())] = 'q';
    }
    h.AddNode({term});
    if (i > 0 && rng->Bernoulli(0.4)) {
      (void)h.AddEdge(static_cast<ontology::HNodeId>(i),
                      static_cast<ontology::HNodeId>(rng->Uniform(i)));
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// XML round trips
// ---------------------------------------------------------------------------

TEST(PropertyTest, DataTreeXmlWriteParseRoundTrip) {
  Random rng(1001);
  for (int trial = 0; trial < 100; ++trial) {
    tax::DataTree original = RandomTree(&rng, 20);
    // Annotate some provenance to verify it survives.
    original.node(0).provenance = 10000 + trial;
    xml::XmlDocument doc = original.ToXml();
    std::string text = xml::Write(doc);
    auto reparsed = xml::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
    tax::DataTree back = tax::DataTree::FromXml(*reparsed,
                                                reparsed->root());
    EXPECT_TRUE(back.Equals(original)) << text;
    EXPECT_EQ(back.node(0).provenance, original.node(0).provenance);
  }
}

TEST(PropertyTest, PrettyPrintingPreservesContent) {
  Random rng(1002);
  for (int trial = 0; trial < 50; ++trial) {
    tax::DataTree original = RandomTree(&rng, 12);
    xml::WriteOptions pretty;
    pretty.pretty = true;
    std::string text = xml::Write(original.ToXml(), pretty);
    auto reparsed = xml::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
    // Pretty-printing may move whitespace, but element structure and
    // non-whitespace text survive. Compare canonical keys after rebuilding
    // both trees in preorder (RandomTree ids are not preorder) and
    // trimming content.
    auto normalize = [](const tax::DataTree& t) {
      tax::DataTree copy;
      copy.CopySubtree(t, t.root(), tax::kInvalidNode);
      for (tax::NodeId v = 0; v < copy.size(); ++v) {
        copy.node(v).content = std::string(Trim(copy.node(v).content));
      }
      return copy.CanonicalKey();
    };
    tax::DataTree back = tax::DataTree::FromXml(*reparsed,
                                                reparsed->root());
    ASSERT_EQ(back.size(), original.size());
    EXPECT_EQ(normalize(back), normalize(original)) << text;
  }
}

// ---------------------------------------------------------------------------
// Hierarchy / ontology round trips
// ---------------------------------------------------------------------------

TEST(PropertyTest, HierarchyDumpRoundTrip) {
  Random rng(1003);
  for (int trial = 0; trial < 50; ++trial) {
    ontology::Hierarchy h = RandomOrderedHierarchy(&rng, 15);
    auto parsed = ontology::ParseHierarchyText(FormatHierarchy(h));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    // Same node count, same reachability everywhere.
    ASSERT_EQ(parsed->node_count(), h.node_count());
    for (ontology::HNodeId a = 0; a < h.node_count(); ++a) {
      for (ontology::HNodeId b = 0; b < h.node_count(); ++b) {
        EXPECT_EQ(parsed->Leq(a, b), h.Leq(a, b));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SEA on random hierarchies (Theorem 2)
// ---------------------------------------------------------------------------

TEST(PropertyTest, StrictSeaOutputVerifiesOnRandomHierarchies) {
  // Strict mode enforces all of Def. 8, so whenever it succeeds the output
  // must pass the independent VerifyEnhancement check (Theorem 2). The
  // paper's acyclicity-only check is looser by design -- see sea.h.
  Random rng(1004);
  auto lev = *sim::MakeMeasure("levenshtein");
  ontology::SeaOptions strict;
  strict.strict = true;
  size_t consistent = 0, inconsistent = 0;

  // Strict mode only accepts groupings whose members are order-equivalent,
  // so consistent inputs are built from "groups": each group holds 1-2
  // near-duplicate terms sharing identical edges to parent groups.
  auto parallel_hierarchy = [&](size_t groups) {
    ontology::Hierarchy h;
    std::vector<std::vector<ontology::HNodeId>> members;
    for (size_t g = 0; g < groups; ++g) {
      std::string base = rng.AlphaString(6 + rng.Uniform(4));
      std::vector<ontology::HNodeId> ids{h.AddNode({base})};
      if (rng.Bernoulli(0.4)) {
        std::string dup = base;
        dup[rng.Uniform(dup.size())] = 'q';
        ids.push_back(h.AddNode({dup}));
      }
      if (g > 0 && rng.Bernoulli(0.6)) {
        size_t parent = rng.Uniform(g);
        for (ontology::HNodeId child : ids) {
          for (ontology::HNodeId up : members[parent]) {
            EXPECT_TRUE(h.AddEdge(child, up).ok());
          }
        }
      }
      members.push_back(std::move(ids));
    }
    return h;
  };

  for (int trial = 0; trial < 40; ++trial) {
    // Parallel-group inputs: strict SEA should mostly succeed and its
    // output must satisfy Def. 8 in full.
    ontology::Hierarchy parallel = parallel_hierarchy(8);
    // Asymmetric inputs: strict SEA usually rejects; when it accepts, the
    // output must still verify.
    ontology::Hierarchy asymmetric = RandomOrderedHierarchy(&rng, 12);
    for (const auto* h : {&parallel, &asymmetric}) {
      for (double eps : {1.0, 2.0}) {
        auto r = ontology::SimilarityEnhance(*h, *lev, eps, strict);
        if (!r.ok()) {
          EXPECT_TRUE(r.status().IsInconsistent()) << r.status();
          ++inconsistent;
          continue;
        }
        ++consistent;
        Status v = ontology::VerifyEnhancement(*h, *lev, eps, *r);
        EXPECT_TRUE(v.ok()) << v;
      }
    }
  }
  // Both outcomes must actually occur for the test to mean anything.
  EXPECT_GT(consistent, 10u);
  EXPECT_GT(inconsistent, 0u);
}

TEST(PropertyTest, LaxSeaAlwaysAcyclicAndCoversEveryNode) {
  // Paper-mode SEA guarantees less (see above) but must still return an
  // acyclic, transitively reduced hierarchy with total mu.
  Random rng(1014);
  auto lev = *sim::MakeMeasure("levenshtein");
  for (int trial = 0; trial < 40; ++trial) {
    ontology::Hierarchy h = RandomOrderedHierarchy(&rng, 12);
    auto r = ontology::SimilarityEnhance(h, *lev, 2.0);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInconsistent());
      continue;
    }
    EXPECT_TRUE(r->enhanced.IsAcyclic());
    EXPECT_TRUE(r->enhanced.IsTransitivelyReduced());
    ASSERT_EQ(r->mu.size(), h.node_count());
    for (const auto& targets : r->mu) {
      EXPECT_FALSE(targets.empty());
    }
  }
}

TEST(PropertyTest, SeaIdentityAtZeroEpsilonOnReducedHierarchies) {
  Random rng(1005);
  auto lev = *sim::MakeMeasure("levenshtein");
  for (int trial = 0; trial < 25; ++trial) {
    ontology::Hierarchy h = RandomOrderedHierarchy(&rng, 10);
    ASSERT_TRUE(h.TransitiveReduction().ok());
    // Distinct node terms can coincide (near-duplicates with 'q'); only
    // all-distinct hierarchies enhance to themselves at eps=0.
    std::set<std::string> terms;
    bool distinct = true;
    for (ontology::HNodeId v = 0; v < h.node_count(); ++v) {
      if (!terms.insert(h.terms(v)[0]).second) distinct = false;
    }
    if (!distinct) continue;
    auto r = ontology::SimilarityEnhance(h, *lev, 0.0);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->enhanced.EquivalentTo(h));
  }
}

// ---------------------------------------------------------------------------
// Algebraic invariants on random trees
// ---------------------------------------------------------------------------

TEST(PropertyTest, SetOperationLaws) {
  Random rng(1006);
  for (int trial = 0; trial < 25; ++trial) {
    tax::TreeCollection a, b;
    for (int i = 0; i < 6; ++i) a.push_back(RandomTree(&rng, 6));
    for (int i = 0; i < 4; ++i) b.push_back(RandomTree(&rng, 6));
    // Seed some intentional overlap.
    if (!a.empty()) b.push_back(a[0]);

    auto u = Union(a, b);
    auto i = Intersect(a, b);
    auto d_ab = Difference(a, b);
    auto d_ba = Difference(b, a);
    // |A ∪ B| = |A\B| + |B\A| + |A ∩ B| (set semantics).
    EXPECT_EQ(u.size(), d_ab.size() + d_ba.size() + i.size());
    // Union is idempotent and commutative in content.
    EXPECT_EQ(Union(u, u).size(), u.size());
    EXPECT_EQ(Union(b, a).size(), u.size());
    // Intersection is contained in both.
    EXPECT_LE(i.size(), Union(a, {}).size());
    EXPECT_LE(i.size(), Union(b, {}).size());
  }
}

TEST(PropertyTest, ProductCardinality) {
  Random rng(1007);
  for (int trial = 0; trial < 10; ++trial) {
    tax::TreeCollection a, b;
    size_t na = rng.Uniform(5), nb = rng.Uniform(5);
    for (size_t i = 0; i < na; ++i) a.push_back(RandomTree(&rng, 4));
    for (size_t i = 0; i < nb; ++i) b.push_back(RandomTree(&rng, 4));
    EXPECT_EQ(Product(a, b).size(), na * nb);
  }
}

TEST(PropertyTest, SelectWithTrueConditionFindsEveryNodeOnce) {
  // A single-node pattern with condition `true` has one embedding per data
  // node; with SL={1} each witness is the node's whole subtree.
  Random rng(1008);
  tax::TaxSemantics sem;
  tax::PatternTree pattern;
  pattern.AddRoot();
  pattern.SetCondition(tax::Condition::True());
  for (int trial = 0; trial < 20; ++trial) {
    tax::DataTree t = RandomTree(&rng, 10);
    auto r = tax::Select({t}, pattern, {1}, sem);
    ASSERT_TRUE(r.ok());
    // At most one witness per node (exact when all subtrees distinct).
    EXPECT_LE(r->size(), t.size());
    EXPECT_GE(r->size(), 1u);
    // The full tree itself is among the witnesses.
    bool found = false;
    for (const auto& w : *r) {
      if (w.Equals(t)) found = true;
    }
    EXPECT_TRUE(found);
  }
}

// ---------------------------------------------------------------------------
// Tag-indexed embedding enumeration vs naive scan
// ---------------------------------------------------------------------------

// Like RandomTree but drawing tags from a pool that includes '*'-bearing
// tags: under glob equality a *data* tag can act as the pattern side of
// `$n.tag = "lit"`, so index pruning must keep wildcard nodes candidates.
tax::DataTree RandomTaggedTree(Random* rng, size_t max_nodes) {
  tax::DataTree t;
  const char* tags[] = {"a", "b", "c", "item", "a*", "*"};
  auto tag = [&] { return tags[rng->Uniform(std::size(tags))]; };
  auto content = [&] { return rng->AlphaString(1 + rng->Uniform(3)); };
  t.CreateRoot(tag(), content());
  size_t n = 1 + rng->Uniform(max_nodes);
  for (size_t i = 1; i < n; ++i) {
    tax::NodeId parent = static_cast<tax::NodeId>(rng->Uniform(t.size()));
    t.AppendChild(parent, tag(), content());
  }
  return t;
}

// A random 1-3 node pattern whose per-label conjuncts mix pinned tags,
// SEO-shaped tag disjunctions, content atoms, and unconstrained labels.
tax::PatternTree RandomTagPattern(Random* rng, int* num_labels) {
  tax::PatternTree p;
  std::vector<int> labels{p.AddRoot()};
  size_t extra = rng->Uniform(3);
  for (size_t i = 0; i < extra; ++i) {
    int parent = labels[rng->Uniform(labels.size())];
    labels.push_back(p.AddChild(parent, rng->Bernoulli(0.5)
                                            ? tax::EdgeKind::kPc
                                            : tax::EdgeKind::kAd));
  }
  const char* pool[] = {"a", "b", "c", "item", "a*", "zzz"};
  auto tag_atom = [&](int label) {
    return tax::Condition::Atom(tax::TagOf(label), tax::CondOp::kEq,
                                tax::Value(pool[rng->Uniform(
                                    std::size(pool))]));
  };
  std::vector<tax::Condition> atoms;
  for (int label : labels) {
    switch (rng->Uniform(4)) {
      case 0:
        atoms.push_back(tag_atom(label));
        break;
      case 1:
        atoms.push_back(
            tax::Condition::Or({tag_atom(label), tag_atom(label)}));
        break;
      case 2:  // non-tag atom: no index leverage for this label
        atoms.push_back(tax::Condition::Atom(
            tax::ContentOf(label), tax::CondOp::kNeq, tax::Value("qqq")));
        break;
      default:  // unconstrained
        break;
    }
  }
  if (atoms.empty()) {
    p.SetCondition(tax::Condition::True());
  } else if (atoms.size() == 1) {
    p.SetCondition(std::move(atoms[0]));
  } else {
    p.SetCondition(tax::Condition::And(std::move(atoms)));
  }
  *num_labels = static_cast<int>(labels.size());
  return p;
}

TEST(PropertyTest, TagIndexedEmbeddingsMatchNaiveEnumeration) {
  Random rng(1013);
  tax::TaxSemantics sem;
  tax::EmbeddingOptions naive;
  naive.use_tag_index = false;
  size_t nonempty = 0;
  for (int trial = 0; trial < 150; ++trial) {
    tax::DataTree t = RandomTaggedTree(&rng, 14);
    if (rng.Bernoulli(0.5)) {
      // Rebuild via FromXml: ids become preorder, enabling the
      // subtree-interval fast path for ad edges.
      xml::XmlDocument doc = t.ToXml();
      t = tax::DataTree::FromXml(doc, doc.root());
    } else {
      t.BuildTagIndex();  // random parent order: Descendants() ad path
    }
    ASSERT_TRUE(t.TagFilterable());
    int num_labels = 0;
    tax::PatternTree p = RandomTagPattern(&rng, &num_labels);
    auto indexed = tax::FindEmbeddings(p, t, sem);
    auto plain = tax::FindEmbeddings(p, t, sem, naive);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    ASSERT_TRUE(plain.ok()) << plain.status();
    ASSERT_EQ(indexed->size(), plain->size()) << p.condition().ToString();
    for (size_t i = 0; i < indexed->size(); ++i) {
      for (int label = 1; label <= num_labels; ++label) {
        ASSERT_EQ((*indexed)[i].mapping.Get(label),
                  (*plain)[i].mapping.Get(label))
            << p.condition().ToString() << " embedding " << i << " label "
            << label;
      }
      tax::DataTree wi = tax::BuildWitnessTree(p, t, (*indexed)[i], {1});
      tax::DataTree wp = tax::BuildWitnessTree(p, t, (*plain)[i], {1});
      EXPECT_TRUE(wi.Equals(wp)) << "witness " << i << " differs";
    }
    if (!indexed->empty()) ++nonempty;
  }
  // The equivalence must be exercised nontrivially.
  EXPECT_GT(nonempty, 20u);
}

// ---------------------------------------------------------------------------
// Fuzzing: hostile inputs must error, never crash
// ---------------------------------------------------------------------------

TEST(PropertyTest, XmlParserSurvivesRandomBytes) {
  Random rng(1010);
  const char kAlphabet[] = "<>/=\"'&;ab \n\t![]-?";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
    auto r = xml::Parse(input);  // must not crash or hang
    if (r.ok()) {
      // Whatever parsed must serialize and re-parse.
      auto again = xml::Parse(xml::Write(*r));
      EXPECT_TRUE(again.ok()) << input;
    }
  }
}

TEST(PropertyTest, XmlParserSurvivesMutatedValidDocuments) {
  Random rng(1011);
  const std::string valid =
      "<dblp><inproceedings key=\"a\"><author>J. Ullman</author>"
      "<title>T &amp; U</title></inproceedings></dblp>";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    size_t n_mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < n_mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(128));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>('!' + rng.Uniform(90)));
          break;
      }
      if (mutated.empty()) break;
    }
    (void)xml::Parse(mutated);  // outcome irrelevant; crashing is failure
  }
}

TEST(PropertyTest, ParsersSurviveRandomQueryText) {
  Random rng(1012);
  const char kAlphabet[] = "$12.tagcontent=\"'~&|!()<>i sabelowpart_of";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    size_t len = rng.Uniform(50);
    for (size_t i = 0; i < len; ++i) {
      input += kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
    (void)tax::ParseCondition(input);
    (void)xml::XPath::Compile(input);
  }
}

// ---------------------------------------------------------------------------
// Condition parser round trip on random ASTs
// ---------------------------------------------------------------------------

tax::Condition RandomCondition(Random* rng, int depth) {
  using tax::CondOp;
  if (depth <= 0 || rng->Bernoulli(0.5)) {
    const CondOp ops[] = {CondOp::kEq,     CondOp::kNeq,   CondOp::kLeq,
                          CondOp::kSimilar, CondOp::kIsa,  CondOp::kBelow,
                          CondOp::kPartOf, CondOp::kInstanceOf};
    CondOp op = ops[rng->Uniform(std::size(ops))];
    tax::CondTerm lhs = rng->Bernoulli(0.5)
                            ? tax::TagOf(1 + int(rng->Uniform(4)))
                            : tax::ContentOf(1 + int(rng->Uniform(4)));
    tax::CondTerm rhs;
    switch (rng->Uniform(3)) {
      case 0:
        rhs = tax::Value(rng->AlphaString(4));
        break;
      case 1:
        rhs = tax::Value(rng->AlphaString(3), "year");
        break;
      default:
        rhs = tax::TypeName(rng->AlphaString(4));
        break;
    }
    return tax::Condition::Atom(std::move(lhs), op, std::move(rhs));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return tax::Condition::And(
          {RandomCondition(rng, depth - 1), RandomCondition(rng, depth - 1)});
    case 1:
      return tax::Condition::Or(
          {RandomCondition(rng, depth - 1), RandomCondition(rng, depth - 1)});
    default:
      return tax::Condition::Not(RandomCondition(rng, depth - 1));
  }
}

TEST(PropertyTest, ConditionToStringParsesBack) {
  Random rng(1009);
  for (int trial = 0; trial < 200; ++trial) {
    tax::Condition c = RandomCondition(&rng, 3);
    std::string text = c.ToString();
    auto parsed = tax::ParseCondition(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    EXPECT_EQ(parsed->ToString(), text);
  }
}

}  // namespace
}  // namespace toss
