#include <gtest/gtest.h>

#include <algorithm>

#include "lexicon/lexicon.h"
#include "ontology/ontology.h"
#include "ontology/ontology_maker.h"
#include "xml/xml_parser.h"

namespace toss::ontology {
namespace {

xml::XmlDocument Doc(const char* text) {
  auto r = xml::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(OntologyTest, IsaAndPartofAlwaysDefined) {
  Ontology o;
  EXPECT_NE(o.Find(kIsa), nullptr);
  EXPECT_NE(o.Find(kPartOf), nullptr);
  EXPECT_EQ(o.Find("custom"), nullptr);
  o.hierarchy("custom").EnsureTerm("x");
  EXPECT_NE(o.Find("custom"), nullptr);
  EXPECT_EQ(o.relations().size(), 3u);
  EXPECT_EQ(o.TotalNodeCount(), 1u);
}

TEST(OntologyMakerTest, StructureYieldsPartofHierarchy) {
  auto doc = Doc(
      "<inproceedings><author>X</author><title>T</title>"
      "<booktitle>B</booktitle></inproceedings>");
  lexicon::Lexicon empty;
  OntologyMakerOptions opts;
  opts.use_lexicon = false;
  auto r = MakeOntology(doc, empty, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& partof = r->partof();
  EXPECT_TRUE(partof.LeqTerms("author", "inproceedings"));
  EXPECT_TRUE(partof.LeqTerms("title", "inproceedings"));
  EXPECT_TRUE(partof.LeqTerms("booktitle", "inproceedings"));
  EXPECT_FALSE(partof.LeqTerms("inproceedings", "author"));
}

TEST(OntologyMakerTest, RecursiveNestingStaysAcyclic) {
  auto doc = Doc("<section><section><para>x</para></section></section>");
  lexicon::Lexicon empty;
  OntologyMakerOptions opts;
  opts.use_lexicon = false;
  auto r = MakeOntology(doc, empty, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->partof().IsAcyclic());
}

TEST(OntologyMakerTest, LexiconAddsIsaChains) {
  auto doc = Doc("<inproceedings><title>T</title></inproceedings>");
  auto r = MakeOntology(doc, lexicon::BuiltinBibliographicLexicon());
  ASSERT_TRUE(r.ok()) << r.status();
  // inproceedings isa paper isa publication (from the lexicon).
  EXPECT_TRUE(r->isa().LeqTerms("inproceedings", "paper"));
  EXPECT_TRUE(r->isa().LeqTerms("inproceedings", "publication"));
}

TEST(OntologyMakerTest, ContentTermsEnterOntology) {
  auto doc = Doc(
      "<inproceedings>"
      "<author>Jeffrey Ullman</author>"
      "<booktitle>SIGMOD Conference</booktitle>"
      "</inproceedings>");
  OntologyMakerOptions opts;
  opts.content_tags = {"author", "booktitle"};
  auto r = MakeOntology(doc, lexicon::BuiltinBibliographicLexicon(), opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& isa = r->isa();
  EXPECT_NE(isa.FindTerm("Jeffrey Ullman"), kInvalidHNode);
  // Venue content term links into the category taxonomy.
  EXPECT_TRUE(isa.LeqTerms("SIGMOD Conference", "database conference"));
}

TEST(OntologyMakerTest, VenueSynonymsShareANode) {
  auto doc = Doc(
      "<dblp>"
      "<inproceedings><booktitle>SIGMOD Conference</booktitle>"
      "</inproceedings>"
      "<inproceedings><booktitle>ACM SIGMOD International Conference on "
      "Management of Data</booktitle></inproceedings>"
      "</dblp>");
  OntologyMakerOptions opts;
  opts.content_tags = {"booktitle"};
  auto r = MakeOntology(doc, lexicon::BuiltinBibliographicLexicon(), opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& isa = r->isa();
  HNodeId a = isa.FindTerm("SIGMOD Conference");
  HNodeId b = isa.FindTerm(
      "ACM SIGMOD International Conference on Management of Data");
  ASSERT_NE(a, kInvalidHNode);
  EXPECT_EQ(a, b) << "both surface forms must share one node";
}

TEST(OntologyMakerTest, EmptyDocumentRejected) {
  xml::XmlDocument empty;
  lexicon::Lexicon lex;
  EXPECT_TRUE(MakeOntology(empty, lex).status().IsInvalidArgument());
}

TEST(OntologyMakerTest, NonTransitiveLexiconStopsAtOneLevel) {
  auto doc = Doc("<inproceedings/>");
  OntologyMakerOptions opts;
  opts.transitive_lexicon = false;
  auto r = MakeOntology(doc, lexicon::BuiltinBibliographicLexicon(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->isa().LeqTerms("inproceedings", "paper"));
  EXPECT_FALSE(r->isa().LeqTerms("inproceedings", "publication"));
}

TEST(SuggestConstraintsTest, ExactAndSynonymMatches) {
  Hierarchy left, right;
  left.EnsureTerm("author");
  left.EnsureTerm("booktitle");
  right.EnsureTerm("author");
  right.EnsureTerm("conference name");
  lexicon::Lexicon lex;
  lex.AddSynset({"booktitle", "conference name"});
  auto cs = SuggestEqualityConstraints(left, right, lex);
  // author=author and booktitle=conference name, each as two <=.
  ASSERT_EQ(cs.size(), 4u);
  bool found_synonym = false;
  for (const auto& c : cs) {
    if (c.left_term == "booktitle" && c.right_term == "conference name") {
      found_synonym = true;
    }
  }
  EXPECT_TRUE(found_synonym);
}

TEST(FuseOntologiesTest, PerRelationConstraints) {
  Ontology o1, o2;
  (void)o1.partof().AddTermEdge("booktitle", "inproceedings");
  (void)o2.partof().AddTermEdge("conference", "proceedingsPage");
  std::map<std::string, std::vector<InteropConstraint>> cs;
  Append(&cs[kPartOf], Eq("booktitle", 0, "conference", 1));
  auto r = FuseOntologies({&o1, &o2}, cs);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& partof = r->partof();
  EXPECT_EQ(partof.FindTerm("booktitle"), partof.FindTerm("conference"));
  EXPECT_TRUE(partof.LeqTerms("conference", "inproceedings"));
  EXPECT_TRUE(partof.LeqTerms("booktitle", "proceedingsPage"));
}

}  // namespace
}  // namespace toss::ontology
