#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "xml/xml_writer.h"

namespace toss::data {
namespace {

BibConfig SmallConfig() {
  BibConfig cfg;
  cfg.seed = 42;
  cfg.num_people = 30;
  cfg.num_papers = 60;
  return cfg;
}

TEST(GeneratorTest, WorldIsDeterministic) {
  BibConfig cfg = SmallConfig();
  BibWorld a = GenerateWorld(cfg);
  BibWorld b = GenerateWorld(cfg);
  ASSERT_EQ(a.people.size(), b.people.size());
  ASSERT_EQ(a.papers.size(), b.papers.size());
  for (size_t i = 0; i < a.people.size(); ++i) {
    EXPECT_EQ(a.people[i].CanonicalName(), b.people[i].CanonicalName());
  }
  for (size_t i = 0; i < a.papers.size(); ++i) {
    EXPECT_EQ(a.papers[i].title, b.papers[i].title);
    EXPECT_EQ(a.papers[i].authors, b.papers[i].authors);
  }
  BibConfig other = cfg;
  other.seed = 43;
  BibWorld c = GenerateWorld(other);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.papers.size(), c.papers.size()); ++i) {
    if (a.papers[i].title != c.papers[i].title) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, WorldShape) {
  BibConfig cfg = SmallConfig();
  BibWorld w = GenerateWorld(cfg);
  EXPECT_EQ(w.people.size(), cfg.num_people);
  EXPECT_EQ(w.papers.size(), cfg.num_papers);
  EXPECT_EQ(w.venues.size(), cfg.num_venues);
  std::set<EntityId> ids;
  for (const auto& p : w.people) ids.insert(p.id);
  for (const auto& v : w.venues) ids.insert(v.id);
  for (const auto& p : w.papers) ids.insert(p.id);
  EXPECT_EQ(ids.size(), w.people.size() + w.venues.size() + w.papers.size())
      << "entity ids must be globally unique";
  for (const auto& p : w.papers) {
    EXPECT_FALSE(p.authors.empty());
    EXPECT_GE(p.year, cfg.year_min);
    EXPECT_LE(p.year, cfg.year_max);
    EXPECT_NO_THROW(w.VenueById(p.venue));
  }
}

TEST(GeneratorTest, ConfusablePairsExist) {
  BibWorld w = GenerateWorld(SmallConfig());
  // The confusable slice shares last names with close first names.
  size_t shared_last = 0;
  for (size_t i = 0; i + 1 < w.people.size(); ++i) {
    if (w.people[i].last == w.people[i + 1].last &&
        w.people[i].first != w.people[i + 1].first) {
      ++shared_last;
    }
  }
  EXPECT_GE(shared_last, 2u);
}

TEST(GeneratorTest, DblpDocumentStructure) {
  BibWorld w = GenerateWorld(SmallConfig());
  auto docs = EmitDblp(w, 0, 10, SmallConfig());
  ASSERT_EQ(docs.size(), 10u);
  for (const auto& [key, doc] : docs) {
    EXPECT_EQ(doc.node(doc.root()).tag, "inproceedings");
    EXPECT_FALSE(doc.ChildrenByTag(doc.root(), "author").empty());
    EXPECT_NE(doc.FirstChildByTag(doc.root(), "title"), xml::kInvalidNode);
    EXPECT_NE(doc.FirstChildByTag(doc.root(), "booktitle"),
              xml::kInvalidNode);
    EXPECT_NE(doc.FirstChildByTag(doc.root(), "year"), xml::kInvalidNode);
    EXPECT_FALSE(std::string(doc.Attribute(doc.root(), "gtid")).empty());
  }
}

TEST(GeneratorTest, SigmodPagesGroupByVenueAndYear) {
  BibWorld w = GenerateWorld(SmallConfig());
  auto pages = EmitSigmod(w, 0, 60, SmallConfig(), 4);
  ASSERT_FALSE(pages.empty());
  size_t articles = 0;
  for (const auto& [key, doc] : pages) {
    EXPECT_EQ(doc.node(doc.root()).tag, "proceedingsPage");
    EXPECT_NE(doc.FirstChildByTag(doc.root(), "conference"),
              xml::kInvalidNode);
    auto descendants = doc.ElementDescendants(doc.root());
    size_t page_articles = 0;
    for (auto id : descendants) {
      if (doc.node(id).tag == "article") ++page_articles;
    }
    EXPECT_GE(page_articles, 1u);
    EXPECT_LE(page_articles, 4u);
    articles += page_articles;
  }
  EXPECT_EQ(articles, 60u);  // every paper appears exactly once
}

TEST(GeneratorTest, MentionsProduceVariants) {
  BibConfig cfg = SmallConfig();
  cfg.num_papers = 200;
  BibWorld w = GenerateWorld(cfg);
  auto docs = EmitDblp(w, 0, 200, cfg);
  // Collect mention strings per author entity; some entity must have > 1
  // surface form.
  std::map<uint64_t, std::set<std::string>> forms;
  for (const auto& [key, doc] : docs) {
    for (auto id : doc.ElementDescendants(doc.root())) {
      if (doc.node(id).tag != "author") continue;
      long long gtid = 0;
      EXPECT_TRUE(
          ParseInt(doc.Attribute(id, "gtid"), &gtid));
      forms[gtid].insert(doc.TextContent(id));
    }
  }
  size_t with_variants = 0;
  for (const auto& [id, set] : forms) {
    if (set.size() > 1) ++with_variants;
  }
  EXPECT_GT(with_variants, forms.size() / 4);
}

TEST(GeneratorTest, LoadIntoCollection) {
  BibWorld w = GenerateWorld(SmallConfig());
  store::Database db;
  ASSERT_TRUE(LoadIntoCollection(&db, "dblp",
                                 EmitDblp(w, 0, 20, SmallConfig()))
                  .ok());
  auto coll = db.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 20u);
  // Loading the same collection name again fails.
  EXPECT_TRUE(LoadIntoCollection(&db, "dblp", {})
                  .IsAlreadyExists());
}

TEST(GeneratorTest, InflateOntologyAddsInertTerms) {
  ontology::Ontology onto;
  onto.isa().EnsureTerm("real-term");
  size_t before = onto.isa().node_count();
  InflateOntology(&onto, 50, 7);
  EXPECT_EQ(onto.isa().node_count(), before + 50);
  EXPECT_TRUE(onto.isa().IsAcyclic());
  // Padding terms never alias real ones.
  EXPECT_NE(onto.isa().FindTerm("real-term"), ontology::kInvalidHNode);
}

TEST(WorkloadTest, BuildsRequestedQueryCount) {
  BibWorld w = GenerateWorld(SmallConfig());
  auto queries = MakeSelectionWorkload(w, 0, 60, 12, 5);
  ASSERT_TRUE(queries.ok()) << queries.status();
  ASSERT_EQ(queries->size(), 12u);
  size_t category_queries = 0;
  for (const auto& q : *queries) {
    EXPECT_FALSE(q.correct.empty());
    EXPECT_FALSE(q.person_literal.empty());
    EXPECT_TRUE(q.pattern.Validate().ok());
    EXPECT_EQ(q.sl, std::vector<int>{1});
    if (q.category_query) ++category_queries;
    // Every correct paper really has the intended author.
    for (uint64_t pid : q.correct) {
      const PaperEntity& p = w.PaperById(pid);
      EXPECT_NE(std::find(p.authors.begin(), p.authors.end(), q.person),
                p.authors.end());
    }
  }
  EXPECT_GE(category_queries, 3u);
}

TEST(WorkloadTest, EmptyRangeRejected) {
  BibWorld w = GenerateWorld(SmallConfig());
  EXPECT_TRUE(
      MakeSelectionWorkload(w, 1000, 10, 4, 1).status().IsInvalidArgument());
}

TEST(WorkloadTest, ScalabilityPatterns) {
  auto sel = MakeScalabilitySelectionPattern("SIGMOD Conference",
                                             "database conference");
  EXPECT_TRUE(sel.Validate().ok());
  EXPECT_EQ(sel.node_count(), 4u);
  auto join = MakeTitleJoinPattern();
  EXPECT_TRUE(join.Validate().ok());
  EXPECT_EQ(join.node_count(), 5u);
}

}  // namespace
}  // namespace toss::data
