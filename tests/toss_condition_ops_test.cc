// End-to-end coverage of every Section 5.1.1 operator evaluated through
// ParseCondition + EvalCondition under SeoSemantics, over a typed data
// tree -- the TOSS satisfaction relation in one place.

#include <gtest/gtest.h>

#include "core/seo.h"
#include "core/seo_semantics.h"
#include "core/types.h"
#include "lexicon/lexicon.h"
#include "ontology/ontology_maker.h"
#include "sim/measure_registry.h"
#include "tax/condition_parser.h"
#include "xml/xml_parser.h"

namespace toss::core {
namespace {

class TossConditionOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Ontology covering authors, venues and the lexicon taxonomy.
    auto doc = xml::Parse(
        "<dblp><inproceedings>"
        "<author>Jeffrey Ullman</author>"
        "<author>Jeffrey D. Ullman</author>"
        "<booktitle>SIGMOD Conference</booktitle>"
        "<affiliation>US Census Bureau</affiliation>"
        "</inproceedings></dblp>");
    ASSERT_TRUE(doc.ok());
    ontology::OntologyMakerOptions opts;
    opts.content_tags = {"author", "booktitle", "affiliation"};
    auto onto = ontology::MakeOntology(
        *doc, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok());
    SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    b.SetEpsilon(3.0);
    auto seo = b.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = MakeBibliographicTypeSystem();
    sem_ = std::make_unique<SeoSemantics>(&seo_, &types_);

    // The data tree under test, with typed contents.
    auto root = tree_.CreateRoot("inproceedings");
    author_ = tree_.AppendChild(root, "author", "Jeffrey D. Ullman");
    tree_.node(author_).content_type = "person";
    venue_ = tree_.AppendChild(root, "booktitle", "SIGMOD Conference");
    year_ = tree_.AppendChild(root, "year", "1999");
    tree_.node(year_).content_type = "year";
    affil_ = tree_.AppendChild(root, "affiliation", "US Census Bureau");
    mapping_ = {{1, root}, {2, author_}, {3, venue_}, {4, year_},
                {5, affil_}};
    view_ = {&tree_, &mapping_};
  }

  bool Eval(const std::string& text) {
    auto cond = tax::ParseCondition(text);
    EXPECT_TRUE(cond.ok()) << text << ": " << cond.status();
    auto r = tax::EvalCondition(*cond, view_, *sem_);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status();
    return r.ok() && *r;
  }

  Seo seo_;
  TypeSystem types_;
  std::unique_ptr<SeoSemantics> sem_;
  tax::DataTree tree_;
  tax::NodeId author_ = 0, venue_ = 0, year_ = 0, affil_ = 0;
  tax::LabelMap mapping_;
  tax::EmbeddingView view_;
};

TEST_F(TossConditionOpsTest, EqualityOperators) {
  EXPECT_TRUE(Eval("$1.tag = \"inproceedings\""));
  EXPECT_TRUE(Eval("$2.content != \"Jeffrey Ullman\""));
  EXPECT_TRUE(Eval("$3.content = \"SIGMOD*\""));  // wildcard
}

TEST_F(TossConditionOpsTest, OrderingWithTypedLiterals) {
  EXPECT_TRUE(Eval("$4.content <= \"2000\":year"));
  EXPECT_TRUE(Eval("$4.content > \"1995\":year"));
  EXPECT_FALSE(Eval("$4.content < \"1999\":year"));
  // Cross-type: year vs int converts through the lub.
  EXPECT_TRUE(Eval("$4.content >= \"1000\":int"));
}

TEST_F(TossConditionOpsTest, SimilarTo) {
  EXPECT_TRUE(Eval("$2.content ~ \"Jeffrey Ullman\""));       // d=3 variant
  EXPECT_FALSE(Eval("$2.content ~ \"Serge Abiteboul\""));
  EXPECT_TRUE(Eval("$2.content ~ $2.content"));               // reflexive
}

TEST_F(TossConditionOpsTest, IsaOverOntology) {
  EXPECT_TRUE(Eval("$3.content isa \"database conference\""));
  EXPECT_TRUE(Eval("$1.tag isa \"publication\""));  // via lexicon chain
  EXPECT_FALSE(Eval("$3.content isa \"data mining conference\""));
}

TEST_F(TossConditionOpsTest, PartOfOverOntology) {
  EXPECT_TRUE(Eval("$2.tag part_of \"inproceedings\""));  // structure
  EXPECT_TRUE(Eval("$5.content part_of \"us government\""));  // lexicon
  EXPECT_FALSE(Eval("$1.tag part_of \"author\""));
}

TEST_F(TossConditionOpsTest, InstanceOf) {
  EXPECT_TRUE(Eval("$4.content instance_of year"));
  EXPECT_TRUE(Eval("$4.content instance_of int"));
  EXPECT_FALSE(Eval("$2.content instance_of year"));
}

TEST_F(TossConditionOpsTest, SubtypeOf) {
  EXPECT_TRUE(Eval("year subtype_of int"));
  EXPECT_TRUE(Eval("year subtype_of string"));
  EXPECT_FALSE(Eval("int subtype_of year"));
  // Ontology terms as types.
  EXPECT_TRUE(Eval("inproceedings subtype_of paper"));
}

TEST_F(TossConditionOpsTest, BelowAndAbove) {
  // below = instance_of OR subtype_of (paper 5.1.1).
  EXPECT_TRUE(Eval("$4.content below year"));
  EXPECT_TRUE(Eval("$4.content below int"));
  EXPECT_TRUE(Eval("year below int"));
  EXPECT_FALSE(Eval("int below year"));
  // above = reverse.
  EXPECT_TRUE(Eval("int above year"));
  EXPECT_TRUE(Eval("year above $4.content"));
  EXPECT_FALSE(Eval("year above int"));
}

TEST_F(TossConditionOpsTest, Connectives) {
  EXPECT_TRUE(
      Eval("$2.content ~ \"Jeffrey Ullman\" & $4.content below year"));
  EXPECT_TRUE(Eval("$4.content < \"1990\":year | $1.tag isa \"paper\""));
  EXPECT_TRUE(Eval("!($3.content isa \"data mining conference\")"));
}

TEST_F(TossConditionOpsTest, IllTypedAtomPropagatesTypeError) {
  ASSERT_TRUE(types_.AddType("isolated").ok());
  auto cond = tax::ParseCondition("$4.content < \"x\":isolated");
  ASSERT_TRUE(cond.ok());
  auto r = tax::EvalCondition(*cond, view_, *sem_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

}  // namespace
}  // namespace toss::core
