#include <gtest/gtest.h>

#include "core/seo.h"
#include "core/seo_semantics.h"
#include "lexicon/lexicon.h"
#include "ontology/ontology_maker.h"
#include "sim/measure_registry.h"
#include "xml/xml_parser.h"

namespace toss::core {
namespace {

using tax::CondOp;
using tax::TermValue;

class SeoSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::Parse(
        "<dblp><inproceedings>"
        "<author>Jeffrey Ullman</author>"
        "<author>Jeffrey D. Ullman</author>"
        "<booktitle>SIGMOD Conference</booktitle>"
        "</inproceedings></dblp>");
    ASSERT_TRUE(doc.ok());
    ontology::OntologyMakerOptions opts;
    opts.content_tags = {"author", "booktitle"};
    auto onto = ontology::MakeOntology(
        *doc, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok());
    SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("levenshtein"));
    b.SetEpsilon(3.0);
    auto seo = b.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = MakeBibliographicTypeSystem();
    sem_ = std::make_unique<SeoSemantics>(&seo_, &types_);
  }

  static TermValue Val(std::string text, std::string type = "string") {
    TermValue v;
    v.text = std::move(text);
    v.type = std::move(type);
    return v;
  }
  static TermValue Type(std::string name) {
    TermValue v;
    v.text = std::move(name);
    v.is_type_name = true;
    return v;
  }

  Seo seo_;
  TypeSystem types_;
  std::unique_ptr<SeoSemantics> sem_;
};

TEST_F(SeoSemanticsTest, SameTypeComparison) {
  EXPECT_TRUE(*sem_->Compare(Val("a"), CondOp::kEq, Val("a")));
  EXPECT_TRUE(*sem_->Compare(Val("1999", "year"), CondOp::kLeq,
                             Val("2000", "year")));
  EXPECT_FALSE(*sem_->Compare(Val("1999", "year"), CondOp::kGt,
                              Val("2000", "year")));
}

TEST_F(SeoSemanticsTest, CrossTypeComparisonConvertsThroughLub) {
  // year vs month: lub = int, both convert.
  EXPECT_TRUE(
      *sem_->Compare(Val("3", "month"), CondOp::kLt, Val("1999", "year")));
  // year vs string: lub = string.
  EXPECT_TRUE(*sem_->Compare(Val("1999", "year"), CondOp::kEq,
                             Val("1999", "string")));
}

TEST_F(SeoSemanticsTest, IllTypedComparisonIsTypeError) {
  ASSERT_TRUE(types_.AddType("isolated").ok());
  auto r = sem_->Compare(Val("x", "isolated"), CondOp::kLt,
                         Val("1999", "year"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST_F(SeoSemanticsTest, TypeNamesCompareByName) {
  EXPECT_TRUE(*sem_->Compare(Type("year"), CondOp::kEq, Type("year")));
  EXPECT_TRUE(*sem_->Compare(Type("year"), CondOp::kNeq, Type("month")));
  EXPECT_TRUE(
      sem_->Compare(Type("year"), CondOp::kLt, Type("month")).status()
          .IsTypeError());
}

TEST_F(SeoSemanticsTest, SimilarUsesSeo) {
  EXPECT_TRUE(*sem_->Similar(Val("Jeffrey Ullman"),
                             Val("Jeffrey D. Ullman")));
  EXPECT_FALSE(*sem_->Similar(Val("Jeffrey Ullman"),
                              Val("Serge Abiteboul")));
}

TEST_F(SeoSemanticsTest, RelatedFollowsOntology) {
  EXPECT_TRUE(*sem_->Related("isa", Val("SIGMOD Conference"),
                             Val("database conference")));
  EXPECT_TRUE(
      *sem_->Related("partof", Val("author"), Val("inproceedings")));
  EXPECT_FALSE(*sem_->Related("isa", Val("database conference"),
                              Val("SIGMOD Conference")));
}

TEST_F(SeoSemanticsTest, RelatedIsaCoversDeclaredSubtypes) {
  EXPECT_TRUE(
      *sem_->Related("isa", Val("1999", "year"), Val("5", "int")));
}

TEST_F(SeoSemanticsTest, InstanceOfChecksTypeHierarchyAndDomain) {
  EXPECT_TRUE(*sem_->InstanceOf(Val("1999", "year"), Type("int")));
  EXPECT_TRUE(*sem_->InstanceOf(Val("1999", "year"), Type("string")));
  // In-domain value of unrelated declared type, via the string escape.
  EXPECT_TRUE(*sem_->InstanceOf(Val("7", "string"), Type("month")));
  EXPECT_FALSE(*sem_->InstanceOf(Val("13", "string"), Type("month")));
  // Ontology-term fallback: a value below an ontology concept.
  EXPECT_TRUE(
      *sem_->InstanceOf(Val("SIGMOD Conference"),
                        Type("database conference")));
  TermValue untyped;  // neither a type name nor a typed value
  untyped.text = "y";
  auto err = sem_->InstanceOf(Val("x"), untyped);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsTypeError());
}

TEST_F(SeoSemanticsTest, SubtypeOfTypeSystemAndOntology) {
  EXPECT_TRUE(*sem_->SubtypeOf(Type("year"), Type("int")));
  EXPECT_FALSE(*sem_->SubtypeOf(Type("int"), Type("year")));
  // Ontology terms as types (Section 5's value-as-type view).
  EXPECT_TRUE(*sem_->SubtypeOf(Type("inproceedings"), Type("paper")));
}

}  // namespace
}  // namespace toss::core
