#include <gtest/gtest.h>

#include "tax/condition.h"
#include "tax/condition_parser.h"
#include "tax/data_tree.h"
#include "tax/tax_semantics.h"

namespace toss::tax {
namespace {

// Shared fixture: one paper tree plus an embedding of $1..$3 onto it.
class ConditionEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NodeId root = tree_.CreateRoot("inproceedings");
    author_ = tree_.AppendChild(root, "author", "Jeffrey Ullman");
    year_ = tree_.AppendChild(root, "year", "1999");
    mapping_ = {{1, root}, {2, author_}, {3, year_}};
    view_ = {&tree_, &mapping_};
  }

  Result<bool> Eval(const std::string& text) {
    auto cond = ParseCondition(text);
    if (!cond.ok()) return cond.status();
    return EvalCondition(*cond, view_, semantics_);
  }

  DataTree tree_;
  NodeId author_ = 0, year_ = 0;
  LabelMap mapping_;
  EmbeddingView view_;
  TaxSemantics semantics_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ConditionParserTest, ParsesAtoms) {
  auto c = ParseCondition("$1.tag = \"inproceedings\"");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->kind, Condition::Kind::kAtom);
  EXPECT_EQ(c->lhs.kind, CondTerm::Kind::kNodeTag);
  EXPECT_EQ(c->lhs.node_label, 1);
  EXPECT_EQ(c->op, CondOp::kEq);
  EXPECT_EQ(c->rhs.text, "inproceedings");
}

TEST(ConditionParserTest, ParsesAllOperators) {
  for (const char* op :
       {"=", "!=", "<", "<=", ">", ">=", "~", "instance_of", "isa",
        "subtype_of", "part_of", "above", "below"}) {
    std::string text = std::string("$1.content ") + op + " \"x\"";
    auto c = ParseCondition(text);
    EXPECT_TRUE(c.ok()) << text << ": " << c.status();
  }
}

TEST(ConditionParserTest, ParsesConnectivesAndPrecedence) {
  auto c = ParseCondition(
      "$1.tag = \"a\" & $2.tag = \"b\" | !($3.tag = \"c\")");
  ASSERT_TRUE(c.ok()) << c.status();
  // Top level is OR of (AND, NOT).
  EXPECT_EQ(c->kind, Condition::Kind::kOr);
  ASSERT_EQ(c->children.size(), 2u);
  EXPECT_EQ(c->children[0]->kind, Condition::Kind::kAnd);
  EXPECT_EQ(c->children[1]->kind, Condition::Kind::kNot);
}

TEST(ConditionParserTest, ParsesTypedValuesAndNumbers) {
  auto c = ParseCondition("$3.content <= \"2000\":year");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->rhs.value_type, "year");
  auto n = ParseCondition("$3.content >= 1995");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rhs.text, "1995");
  auto tn = ParseCondition("$3.content instance_of year");
  ASSERT_TRUE(tn.ok());
  EXPECT_EQ(tn->rhs.kind, CondTerm::Kind::kTypeName);
}

TEST(ConditionParserTest, ParsesEscapesInLiterals) {
  auto c = ParseCondition("$2.content = \"say \\\"hi\\\"\"");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->rhs.text, "say \"hi\"");
}

TEST(ConditionParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCondition("$1.tag =").ok());
  EXPECT_FALSE(ParseCondition("$1.bogus = \"x\"").ok());
  EXPECT_FALSE(ParseCondition("$1.tag = \"unterminated").ok());
  EXPECT_FALSE(ParseCondition("$.tag = \"x\"").ok());
  EXPECT_FALSE(ParseCondition("$1.tag = \"a\" extra").ok());
  EXPECT_FALSE(ParseCondition("($1.tag = \"a\"").ok());
}

TEST(ConditionParserTest, RoundTripsThroughToString) {
  const char* kConditions[] = {
      "$1.tag = \"inproceedings\"",
      "$1.tag = \"a\" & $2.content ~ \"J. Ullman\"",
      "!($1.tag != \"x\") | $2.content below \"y\"",
      "$3.content <= \"2000\":year",
      "true",
  };
  for (const char* text : kConditions) {
    auto first = ParseCondition(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseCondition(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString()) << text;
  }
}

TEST(ConditionTest, ReferencedLabels) {
  auto c = ParseCondition(
      "$1.tag = \"a\" & ($5.content ~ $2.content | $1.content = \"x\")");
  ASSERT_TRUE(c.ok());
  std::vector<int> expect{1, 2, 5};
  EXPECT_EQ(c->ReferencedLabels(), expect);
}

TEST(ConditionTest, BuildersCollapseTrivialCases) {
  EXPECT_EQ(Condition::And({}).kind, Condition::Kind::kTrue);
  EXPECT_EQ(Condition::Or({}).kind, Condition::Kind::kTrue);
  Condition atom =
      Condition::Atom(TagOf(1), CondOp::kEq, Value("x"));
  EXPECT_EQ(Condition::And({atom}).kind, Condition::Kind::kAtom);
}

// ---------------------------------------------------------------------------
// Evaluation under TaxSemantics
// ---------------------------------------------------------------------------

TEST_F(ConditionEvalTest, TagAndContentEquality) {
  EXPECT_TRUE(*Eval("$1.tag = \"inproceedings\""));
  EXPECT_FALSE(*Eval("$1.tag = \"article\""));
  EXPECT_TRUE(*Eval("$2.content = \"Jeffrey Ullman\""));
  EXPECT_TRUE(*Eval("$2.content != \"J. Ullman\""));
}

TEST_F(ConditionEvalTest, WildcardEquality) {
  EXPECT_TRUE(*Eval("$2.content = \"*Ullman*\""));
  EXPECT_TRUE(*Eval("$2.content = \"Jeff*\""));
  EXPECT_FALSE(*Eval("$2.content = \"*Widom*\""));
}

TEST_F(ConditionEvalTest, NumericComparisons) {
  EXPECT_TRUE(*Eval("$3.content <= \"2000\""));
  EXPECT_TRUE(*Eval("$3.content >= \"1995\""));
  EXPECT_FALSE(*Eval("$3.content < \"1999\""));
  EXPECT_TRUE(*Eval("$3.content > \"200\""));  // numeric, not lexicographic
}

TEST_F(ConditionEvalTest, LexicographicFallback) {
  EXPECT_TRUE(*Eval("$2.content < \"Zed\""));
  EXPECT_FALSE(*Eval("$2.content < \"Aaron\""));
}

TEST_F(ConditionEvalTest, SimilarIsExactMatchInTax) {
  EXPECT_TRUE(*Eval("$2.content ~ \"Jeffrey Ullman\""));
  EXPECT_FALSE(*Eval("$2.content ~ \"Jeffrey D. Ullman\""));
}

TEST_F(ConditionEvalTest, IsaIsContainsInTax) {
  EXPECT_TRUE(*Eval("$2.content isa \"Ullman\""));
  EXPECT_TRUE(*Eval("$1.tag part_of \"inproceedings\""));
  EXPECT_FALSE(*Eval("$2.content isa \"Widom\""));
}

TEST_F(ConditionEvalTest, Connectives) {
  EXPECT_TRUE(
      *Eval("$1.tag = \"inproceedings\" & $3.content = \"1999\""));
  EXPECT_FALSE(
      *Eval("$1.tag = \"inproceedings\" & $3.content = \"2000\""));
  EXPECT_TRUE(
      *Eval("$1.tag = \"article\" | $3.content = \"1999\""));
  EXPECT_TRUE(*Eval("!($1.tag = \"article\")"));
  EXPECT_TRUE(*Eval("true"));
}

TEST_F(ConditionEvalTest, UnboundLabelIsError) {
  auto r = Eval("$9.tag = \"x\"");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ConditionEvalTest, TwoNodeAtoms) {
  EXPECT_FALSE(*Eval("$2.content = $3.content"));
  EXPECT_TRUE(*Eval("$2.content != $3.content"));
  EXPECT_TRUE(*Eval("$2.content ~ $2.content"));
}

TEST(TaxSemanticsTest, InstanceOfAndSubtypeOfAreNameChecks) {
  TaxSemantics sem;
  TermValue value{"1999", "year", false};
  TermValue year_type{"year", "", true};
  TermValue string_type{"string", "", true};
  EXPECT_TRUE(*sem.InstanceOf(value, year_type));
  EXPECT_FALSE(*sem.InstanceOf(value, string_type));  // no hierarchy in TAX
  EXPECT_TRUE(*sem.SubtypeOf(year_type, year_type));
  EXPECT_FALSE(*sem.SubtypeOf(year_type, string_type));
}

}  // namespace
}  // namespace toss::tax
