#include <gtest/gtest.h>

#include "core/types.h"

namespace toss::core {
namespace {

TEST(TypeSystemTest, StringIsRootType) {
  TypeSystem ts;
  EXPECT_TRUE(ts.HasType("string"));
  EXPECT_FALSE(ts.HasType("year"));
}

TEST(TypeSystemTest, AddTypeWithSupertype) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("int", "string").ok());
  ASSERT_TRUE(ts.AddType("year", "int").ok());
  EXPECT_TRUE(ts.IsSubtype("year", "int"));
  EXPECT_TRUE(ts.IsSubtype("year", "string"));  // transitive
  EXPECT_TRUE(ts.IsSubtype("year", "year"));    // reflexive
  EXPECT_FALSE(ts.IsSubtype("string", "year"));
  EXPECT_TRUE(ts.AddType("", "x").IsInvalidArgument());
}

TEST(TypeSystemTest, SubtypeCycleRejected) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("a").ok());
  ASSERT_TRUE(ts.AddType("b", "a").ok());
  EXPECT_TRUE(ts.AddType("a", "b").IsInvalidArgument());
}

TEST(TypeSystemTest, LeastCommonSupertype) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("int", "string").ok());
  ASSERT_TRUE(ts.AddType("year", "int").ok());
  ASSERT_TRUE(ts.AddType("month", "int").ok());
  auto lub = ts.LeastCommonSupertype("year", "month");
  ASSERT_TRUE(lub.ok());
  EXPECT_EQ(*lub, "int");
  auto same = ts.LeastCommonSupertype("year", "year");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, "year");
  auto with_super = ts.LeastCommonSupertype("year", "string");
  ASSERT_TRUE(with_super.ok());
  EXPECT_EQ(*with_super, "string");
  EXPECT_TRUE(
      ts.LeastCommonSupertype("year", "nosuch").status().IsTypeError());
}

TEST(TypeSystemTest, LubAmbiguityIsTypeError) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("p").ok());
  ASSERT_TRUE(ts.AddType("q").ok());
  ASSERT_TRUE(ts.AddType("a", "p").ok());
  ASSERT_TRUE(ts.AddType("a", "q").ok());
  ASSERT_TRUE(ts.AddType("b", "p").ok());
  ASSERT_TRUE(ts.AddType("b", "q").ok());
  // a and b have upper bounds {p, q}, both minimal: ambiguous.
  EXPECT_TRUE(ts.LeastCommonSupertype("a", "b").status().IsTypeError());
}

TEST(TypeSystemTest, DisjointRootsHaveNoLub) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("x").ok());
  ASSERT_TRUE(ts.AddType("y").ok());
  EXPECT_TRUE(ts.LeastCommonSupertype("x", "y").status().IsTypeError());
}

TEST(TypeSystemTest, DomainsGateInstanceMembership) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("year", "string").ok());
  // Without a predicate every value is in dom.
  EXPECT_TRUE(ts.IsInstance("banana", "year"));
  ASSERT_TRUE(ts.SetDomain("year",
                           [](const std::string& v) {
                             return v.size() == 4;
                           })
                  .ok());
  EXPECT_TRUE(ts.IsInstance("1999", "year"));
  EXPECT_FALSE(ts.IsInstance("99", "year"));
  EXPECT_FALSE(ts.IsInstance("x", "nosuch"));
  EXPECT_TRUE(ts.SetDomain("nosuch", nullptr).IsNotFound());
}

TEST(TypeSystemTest, IdentityConversionAlwaysExists) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("x").ok());
  EXPECT_TRUE(ts.HasConversion("x", "x"));
  auto r = ts.Convert("value", "x", "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "value");
}

TEST(TypeSystemTest, ConversionComposition) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("cm").ok());
  ASSERT_TRUE(ts.AddType("mm").ok());
  ASSERT_TRUE(ts.AddType("m").ok());
  // Register cm->mm and mm->m only; cm->m must compose.
  ASSERT_TRUE(ts.AddConversion("cm", "mm",
                               [](const std::string& v) -> Result<std::string> {
                                 return v + "0";
                               })
                  .ok());
  ASSERT_TRUE(ts.AddConversion("mm", "m",
                               [](const std::string& v) -> Result<std::string> {
                                 return "0.00" + v;
                               })
                  .ok());
  EXPECT_TRUE(ts.HasConversion("cm", "m"));
  EXPECT_FALSE(ts.HasConversion("m", "cm"));
  auto r = ts.Convert("5", "cm", "m");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "0.0050");
  EXPECT_TRUE(ts.Convert("5", "m", "cm").status().IsTypeError());
  EXPECT_TRUE(
      ts.AddConversion("cm", "nosuch", nullptr).IsNotFound());
}

TEST(TypeSystemTest, ValidateClosureFindsMissingConversions) {
  TypeSystem ts;
  ASSERT_TRUE(ts.AddType("int", "string").ok());
  // int <= string but no conversion registered.
  EXPECT_TRUE(ts.ValidateClosure().IsTypeError());
  ASSERT_TRUE(ts.AddConversion("int", "string",
                               [](const std::string& v) -> Result<std::string> {
                                 return v;
                               })
                  .ok());
  EXPECT_TRUE(ts.ValidateClosure().ok());
}

TEST(BibliographicTypeSystemTest, ShipsValidClosure) {
  TypeSystem ts = MakeBibliographicTypeSystem();
  EXPECT_TRUE(ts.ValidateClosure().ok()) << ts.ValidateClosure();
  EXPECT_TRUE(ts.IsSubtype("year", "string"));
  EXPECT_TRUE(ts.IsInstance("1999", "year"));
  EXPECT_FALSE(ts.IsInstance("later", "year"));
  EXPECT_FALSE(ts.IsInstance("13", "month"));
  auto lub = ts.LeastCommonSupertype("year", "month");
  ASSERT_TRUE(lub.ok());
  EXPECT_EQ(*lub, "int");
  auto converted = ts.Convert("1999", "year", "string");
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(*converted, "1999");
  // Conversion functions can reject out-of-domain values.
  EXPECT_FALSE(ts.Convert("notayear", "year", "int").ok());
}

}  // namespace
}  // namespace toss::core
