#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/cancel.h"
#include "common/json.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/worker_pool.h"
#include "obs/metrics.h"

namespace toss {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasDistinctName) {
  std::set<std::string> names;
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kInconsistent,
        StatusCode::kIOError, StatusCode::kInternal,
        StatusCode::kUnsupported, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled}) {
    names.insert(StatusCodeName(c));
  }
  EXPECT_EQ(names.size(), 14u);
}

TEST(StatusTest, ServiceCodes) {
  Status shed = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_EQ(shed.ToString(), "ResourceExhausted: queue full");

  Status late = Status::DeadlineExceeded("too slow");
  EXPECT_TRUE(late.IsDeadlineExceeded());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);

  Status gone = Status::Cancelled("caller hung up");
  EXPECT_TRUE(gone.IsCancelled());
  EXPECT_FALSE(gone.IsDeadlineExceeded());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::IOError("disk gone"); };
  auto outer = [&]() -> Status {
    TOSS_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::ParseError("bad int");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto makes = []() -> Result<std::string> { return std::string("x"); };
  auto fails = []() -> Result<std::string> {
    return Status::NotFound("nope");
  };
  auto use = [&](bool fail) -> Result<int> {
    TOSS_ASSIGN_OR_RETURN(std::string s, fail ? fails() : makes());
    return static_cast<int>(s.size());
  };
  EXPECT_EQ(*use(false), 1);
  EXPECT_TRUE(use(true).status().IsNotFound());
}

TEST(ResultTest, ValueOrMovesFromRvalueResult) {
  auto make = [](bool ok) -> Result<std::vector<int>> {
    if (ok) return std::vector<int>{1, 2, 3};
    return Status::NotFound("nope");
  };
  EXPECT_EQ(make(true).value_or({}).size(), 3u);
  EXPECT_EQ(make(false).value_or({9}).size(), 1u);

  // The lvalue overload leaves the Result usable.
  Result<std::string> r = std::string("keep");
  EXPECT_EQ(r.value_or("fallback"), "keep");
  EXPECT_EQ(*r, "keep");
}

TEST(CancelTokenTest, PlainTokenNeverFiresUntilCancelled) {
  CancelToken t;
  EXPECT_TRUE(t.Check().ok());
  EXPECT_TRUE(CheckCancel(&t).ok());
  EXPECT_TRUE(CheckCancel(nullptr).ok());
  t.Cancel();
  EXPECT_TRUE(t.Check().IsCancelled());
}

TEST(CancelTokenTest, ExpiredDeadlineIsDeadlineExceeded) {
  CancelToken t(CancelToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(t.Check().IsDeadlineExceeded());

  CancelToken future = CancelToken::AfterMillis(60'000);
  EXPECT_TRUE(future.Check().ok());
  EXPECT_TRUE(future.has_deadline());
}

TEST(CancelTokenTest, ParentCancellationPropagates) {
  CancelToken parent;
  CancelToken child = CancelToken::AfterMillis(60'000, &parent);
  EXPECT_TRUE(child.Check().ok());
  parent.Cancel();
  EXPECT_TRUE(child.Check().IsCancelled());
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = SplitAny("a,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(Join(parts, "-"), "a-b-c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("inproceedings", "in"));
  EXPECT_FALSE(StartsWith("in", "inproceedings"));
  EXPECT_TRUE(EndsWith("booktitle", "title"));
  EXPECT_TRUE(Contains("SIGMOD Conference", "MOD"));
  EXPECT_TRUE(ContainsIgnoreCase("SIGMOD Conference", "sigmod"));
  EXPECT_FALSE(ContainsIgnoreCase("SIGMOD", "sigmodx"));
  EXPECT_TRUE(EqualsIgnoreCase("VLDB", "vldb"));
}

TEST(StringUtilTest, TokenizeWords) {
  auto toks = TokenizeWords("J. D. Ullman-Smith 2nd");
  std::vector<std::string> expect{"j", "d", "ullman", "smith", "2nd"};
  EXPECT_EQ(toks, expect);
}

TEST(StringUtilTest, ParseIntAndDouble) {
  long long i;
  EXPECT_TRUE(ParseInt(" 42 ", &i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(ParseInt("4x", &i));
  EXPECT_FALSE(ParseInt("", &i));
  double d;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(StringUtilTest, CompareScalarIntegers) {
  EXPECT_EQ(CompareScalar("2", "10"), -1);   // numeric, not lexicographic
  EXPECT_EQ(CompareScalar("10", "2"), 1);
  EXPECT_EQ(CompareScalar("007", "7"), 0);   // non-canonical spellings
  EXPECT_EQ(CompareScalar("-5", "3"), -1);
  EXPECT_EQ(CompareScalar("1999", "1999"), 0);
}

TEST(StringUtilTest, CompareScalarDoubles) {
  EXPECT_EQ(CompareScalar("3.5", "4.25"), -1);
  EXPECT_EQ(CompareScalar("4.25", "3.5"), 1);
  EXPECT_EQ(CompareScalar("2.50", "2.5"), 0);
}

TEST(StringUtilTest, CompareScalarStrings) {
  EXPECT_EQ(CompareScalar("apple", "banana"), -1);
  EXPECT_EQ(CompareScalar("banana", "apple"), 1);
  EXPECT_EQ(CompareScalar("same", "same"), 0);
}

TEST(StringUtilTest, CompareScalarMixedIsIncomparable) {
  EXPECT_EQ(CompareScalar("1999", "abc"), std::nullopt);
  EXPECT_EQ(CompareScalar("abc", "1999"), std::nullopt);
  EXPECT_EQ(CompareScalar("3.5", "4"), std::nullopt);   // double vs int
  EXPECT_EQ(CompareScalar("3.5", "abc"), std::nullopt);  // double vs string
}

TEST(StringUtilTest, CompareScalarTotalOrderWithinEachClass) {
  // Antisymmetry and transitivity spot checks within one class.
  Random rng(31);
  std::vector<std::string> ints, strs;
  for (int i = 0; i < 12; ++i) {
    ints.push_back(std::to_string(rng.UniformRange(-500, 500)));
    strs.push_back(rng.AlphaString(1 + rng.Uniform(6)));
  }
  for (const auto& pool : {ints, strs}) {
    for (const auto& a : pool) {
      for (const auto& b : pool) {
        auto ab = CompareScalar(a, b);
        auto ba = CompareScalar(b, a);
        ASSERT_TRUE(ab.has_value());
        ASSERT_TRUE(ba.has_value());
        EXPECT_EQ(*ab, -*ba) << a << " vs " << b;
      }
    }
  }
}

TEST(StringUtilTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*Microsoft*", "About Microsoft SQL Server"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a*c", "abbbc"));
  EXPECT_FALSE(GlobMatch("a*c", "abd"));
  EXPECT_TRUE(GlobMatch("abc", "abc"));
  EXPECT_FALSE(GlobMatch("abc", "abcd"));
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  std::vector<uint64_t> va, vb, vc;
  for (int i = 0; i < 16; ++i) {
    va.push_back(a.Next());
    vb.push_back(b.Next());
    vc.push_back(c.Next());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RandomTest, UniformInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RandomTest, ZipfSkewsTowardsLowRanks) {
  Random rng(17);
  size_t low = 0, total = 5000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // With theta=1, the first 10 of 100 ranks carry well over a third of
  // the mass.
  EXPECT_GT(low, total / 3);
}

TEST(WorkerPoolTest, RunsEveryIndexOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  Status st = pool.ParallelFor(100, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, FirstErrorAbortsAndPoolStaysUsable) {
  WorkerPool pool(4);
  std::atomic<size_t> ran{0};
  Status st = pool.ParallelFor(10'000, [&](size_t i) {
    ran.fetch_add(1);
    if (i == 3) return Status::IOError("task 3 failed");
    return Status::OK();
  });
  ASSERT_TRUE(st.IsIOError()) << st;
  // The abort flag dropped the bulk of the range.
  EXPECT_LT(ran.load(), 10'000u);

  // An aborted batch must not poison the pool: the next batch runs fully.
  std::vector<std::atomic<int>> hits(64);
  st = pool.ParallelFor(64, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ThrowingTaskBecomesInternalErrorNotDeadlock) {
  WorkerPool pool(4);
  Status st = pool.ParallelFor(1'000, [&](size_t i) -> Status {
    if (i == 7) throw std::runtime_error("boom at 7");
    return Status::OK();
  });
  ASSERT_TRUE(st.IsInternal()) << st;
  EXPECT_NE(st.message().find("boom at 7"), std::string::npos) << st;

  // Reuse after the throwing batch, including a non-std thrower.
  st = pool.ParallelFor(16, [&](size_t i) -> Status {
    if (i == 2) throw 42;  // NOLINT(hicpp-exception-baseclass)
    return Status::OK();
  });
  ASSERT_TRUE(st.IsInternal()) << st;

  std::atomic<size_t> ran{0};
  st = pool.ParallelFor(32, [&](size_t) {
    ran.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(ran.load(), 32u);
}

TEST(WorkerPoolTest, SharedPoolSurvivesThrowingBatch) {
  Status st = SharedParallelFor(8, [&](size_t i) -> Status {
    if (i == 1) throw std::runtime_error("shared boom");
    return Status::OK();
  });
  ASSERT_TRUE(st.IsInternal()) << st;
  std::atomic<size_t> ran{0};
  st = SharedParallelFor(8, [&](size_t) {
    ran.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(ran.load(), 8u);
}

TEST(RandomTest, AlphaStringShapeAndDeterminism) {
  Random a(9), b(9);
  std::string sa = a.AlphaString(24);
  EXPECT_EQ(sa.size(), 24u);
  for (char c : sa) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  EXPECT_EQ(sa, b.AlphaString(24));
}

// ---------------------------------------------------------------------------
// JsonValue (the telemetry read-back parser)
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  using common::JsonValue;
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool(true));
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-3.5e2")->AsDouble(), -350.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  using common::JsonValue;
  auto doc = JsonValue::Parse(
      R"({"a":{"b":[1,2,{"c":"deep"}]},"empty":{},"list":[]})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* b = doc->Get("a")->Get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->size(), 3u);
  EXPECT_DOUBLE_EQ(b->At(0)->AsDouble(), 1.0);
  EXPECT_EQ(b->At(2)->Get("c")->AsString(), "deep");
  EXPECT_EQ(doc->Get("empty")->size(), 0u);
  EXPECT_TRUE(doc->Get("list")->is_array());
  EXPECT_EQ(doc->Get("missing"), nullptr);
  EXPECT_EQ(b->At(99), nullptr);
}

TEST(JsonTest, ParsesEscapes) {
  using common::JsonValue;
  auto doc = JsonValue::Parse(R"("q\"b\\s\/n\nt\tu\u0041")");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->AsString(), "q\"b\\s/n\nt\tuA");
  // Multi-byte \u escapes UTF-8 encode.
  EXPECT_EQ(JsonValue::Parse(R"("\u00e9")")->AsString(), "\xC3\xA9");
}

TEST(JsonTest, RejectsMalformedInput) {
  using common::JsonValue;
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "nul", "\"\\u12g4\"", "{\"a\" 1}"}) {
    auto r = JsonValue::Parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    if (!r.ok()) EXPECT_TRUE(r.status().IsParseError()) << bad;
  }
}

TEST(JsonTest, DepthBounded) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto r = common::JsonValue::Parse(deep);
  EXPECT_FALSE(r.ok());
}

TEST(JsonTest, RoundTripsMetricsSnapshotJson) {
  // The parser must read what the registry writes -- the contract the
  // telemetry tests rely on.
  obs::MetricsRegistry reg;
  reg.GetCounter("a.count").Add(3);
  reg.GetHistogram("a.lat_ns").Record(1'000'000);
  auto doc = common::JsonValue::Parse(reg.SnapshotJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_DOUBLE_EQ(doc->Get("counters")->Get("a.count")->AsDouble(), 3.0);
  const common::JsonValue* h = doc->Get("histograms")->Get("a.lat_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Get("count")->AsDouble(), 1.0);
  EXPECT_EQ(h->Get("buckets")->size(), obs::Histogram::kBuckets);
}

}  // namespace
}  // namespace toss
