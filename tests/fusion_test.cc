#include <gtest/gtest.h>

#include <algorithm>

#include "ontology/fusion.h"

namespace toss::ontology {
namespace {

/// The paper's Figure 9(a): simplified SIGMOD partof hierarchy.
Hierarchy SigmodHierarchy() {
  Hierarchy h;
  for (const char* leaf :
       {"article", "conference", "volume", "number", "confYear", "month"}) {
    (void)h.AddTermEdge(leaf, "proceedingsPage");
  }
  for (const char* leaf : {"author", "title", "year", "location"}) {
    (void)h.AddTermEdge(leaf, "article");
  }
  return h;
}

/// The paper's Figure 9(b): simplified DBLP partof hierarchy.
Hierarchy DblpHierarchy() {
  Hierarchy h;
  for (const char* leaf :
       {"author", "title", "booktitle", "year", "pages"}) {
    (void)h.AddTermEdge(leaf, "inproceedings");
  }
  return h;
}

TEST(FusionTest, PaperExample10CanonicalFusion) {
  Hierarchy sigmod = SigmodHierarchy();
  Hierarchy dblp = DblpHierarchy();
  // Example 10's interoperation constraints:
  //   conference:0 = booktitle:1, title:0 = title:1, author:0 = author:1,
  //   confYear:0 = year:1.
  std::vector<InteropConstraint> ics;
  Append(&ics, Eq("conference", 0, "booktitle", 1));
  Append(&ics, Eq("title", 0, "title", 1));
  Append(&ics, Eq("author", 0, "author", 1));
  Append(&ics, Eq("confYear", 0, "year", 1));

  auto r = Fuse({&sigmod, &dblp}, ics);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& fused = r->fused;

  // Merged nodes contain both constituent terms.
  HNodeId conf = fused.FindTerm("conference");
  ASSERT_NE(conf, kInvalidHNode);
  EXPECT_EQ(conf, fused.FindTerm("booktitle"));

  // confYear:0 = year:1 merged into one node, but SIGMOD's own 'year'
  // (child of article) stays separate: the constraint named hierarchy 1's
  // year only. So 'year' now appears in two fused nodes.
  auto year_nodes = fused.NodesContaining("year");
  ASSERT_EQ(year_nodes.size(), 2u);
  HNodeId confyear = fused.FindTerm("confYear");
  ASSERT_NE(confyear, kInvalidHNode);
  EXPECT_TRUE(year_nodes[0] == confyear || year_nodes[1] == confyear);

  // Orderings preserved (Def. 5 axiom 1):
  EXPECT_TRUE(fused.LeqTerms("author", "article"));
  EXPECT_TRUE(fused.LeqTerms("booktitle", "proceedingsPage"));
  EXPECT_TRUE(fused.LeqTerms("author", "inproceedings"));
  // Total size: 11 SIGMOD nodes + 6 DBLP nodes - 4 merges = 13.
  EXPECT_EQ(fused.node_count(), 13u);
  EXPECT_TRUE(fused.IsAcyclic());
  EXPECT_TRUE(fused.IsTransitivelyReduced());
}

TEST(FusionTest, WitnessMapsEveryInputNode) {
  Hierarchy sigmod = SigmodHierarchy();
  Hierarchy dblp = DblpHierarchy();
  std::vector<InteropConstraint> ics;
  Append(&ics, Eq("author", 0, "author", 1));
  auto r = Fuse({&sigmod, &dblp}, ics);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->witness.size(), 2u);
  EXPECT_EQ(r->witness[0].size(), sigmod.node_count());
  EXPECT_EQ(r->witness[1].size(), dblp.node_count());
  // Def. 5 axiom 1: psi preserves order.
  for (HNodeId u = 0; u < sigmod.node_count(); ++u) {
    for (HNodeId v = 0; v < sigmod.node_count(); ++v) {
      if (sigmod.Leq(u, v)) {
        EXPECT_TRUE(r->fused.Leq(r->witness[0][u], r->witness[0][v]));
      }
    }
  }
  // Def. 5 axiom 2: constraints preserved.
  EXPECT_TRUE(r->fused.Leq(r->witness[0][sigmod.FindTerm("author")],
                           r->witness[1][dblp.FindTerm("author")]));
}

TEST(FusionTest, LeqConstraintAddsOrderWithoutMerging) {
  Hierarchy h1, h2;
  h1.EnsureTerm("us census bureau");
  h2.EnsureTerm("us government");
  auto r = Fuse({&h1, &h2}, {Leq("us census bureau", 0, "us government", 1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fused.node_count(), 2u);
  EXPECT_TRUE(r->fused.LeqTerms("us census bureau", "us government"));
  EXPECT_FALSE(r->fused.LeqTerms("us government", "us census bureau"));
}

TEST(FusionTest, NeqConstraintViolationFails) {
  Hierarchy h1, h2;
  h1.EnsureTerm("conference");
  h2.EnsureTerm("booktitle");
  std::vector<InteropConstraint> ics;
  Append(&ics, Eq("conference", 0, "booktitle", 1));
  ics.push_back(Neq("conference", 0, "booktitle", 1));
  auto r = Fuse({&h1, &h2}, ics);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
}

TEST(FusionTest, NeqConstraintSatisfiedPasses) {
  Hierarchy h1, h2;
  h1.EnsureTerm("a");
  h2.EnsureTerm("b");
  auto r = Fuse({&h1, &h2}, {Neq("a", 0, "b", 1)});
  EXPECT_TRUE(r.ok());
}

TEST(FusionTest, ConstraintsForcingSameHierarchyNodesEqualFail) {
  // x:0 <= y:1 and y:1 <= z:0 with z <_0 x closes a cycle through two
  // distinct nodes of hierarchy 0 -- psi_0 would not be injective.
  Hierarchy h1, h2;
  (void)h1.AddTermEdge("z", "x");
  h2.EnsureTerm("y");
  std::vector<InteropConstraint> ics;
  ics.push_back(Leq("x", 0, "y", 1));
  ics.push_back(Leq("y", 1, "z", 0));
  auto r = Fuse({&h1, &h2}, ics);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
}

TEST(FusionTest, CrossHierarchyCycleMergesNodes) {
  // a:0 = b:1 via two <= constraints: one merged node.
  Hierarchy h1, h2;
  h1.EnsureTerm("a");
  h2.EnsureTerm("b");
  std::vector<InteropConstraint> ics;
  Append(&ics, Eq("a", 0, "b", 1));
  auto r = Fuse({&h1, &h2}, ics);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fused.node_count(), 1u);
  EXPECT_EQ(r->fused.terms(0).size(), 2u);
}

TEST(FusionTest, UnknownConstraintTermRejected) {
  Hierarchy h1, h2;
  h1.EnsureTerm("a");
  h2.EnsureTerm("b");
  auto r = Fuse({&h1, &h2}, {Leq("zzz", 0, "b", 1)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(FusionTest, BadHierarchyIndexRejected) {
  Hierarchy h1;
  h1.EnsureTerm("a");
  auto r = Fuse({&h1}, {Leq("a", 0, "a", 5)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(FusionTest, CyclicInputHierarchyRejected) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, a).ok());
  auto r = Fuse({&h}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
}

TEST(FusionTest, EmptyInputsRejected) {
  EXPECT_TRUE(Fuse({}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(Fuse({nullptr}, {}).status().IsInvalidArgument());
}

TEST(FusionTest, SingleHierarchyFusesToItself) {
  Hierarchy h = DblpHierarchy();
  auto r = Fuse({&h}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->fused.EquivalentTo(h));
}

TEST(FusionTest, ThreeWayFusionChainsConstraints) {
  Hierarchy h1, h2, h3;
  h1.EnsureTerm("a");
  h2.EnsureTerm("b");
  h3.EnsureTerm("c");
  std::vector<InteropConstraint> ics;
  Append(&ics, Eq("a", 0, "b", 1));
  Append(&ics, Eq("b", 1, "c", 2));
  auto r = Fuse({&h1, &h2, &h3}, ics);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fused.node_count(), 1u);
  EXPECT_EQ(r->fused.terms(0).size(), 3u);
}

}  // namespace
}  // namespace toss::ontology
