// The structural (twig) join engine, three ways:
//   1. Unit tests of tax::TwigJoiner itself -- postings, pruning, the
//      stack-based merge, cancellation.
//   2. Golden executor tests: use_twig_join on vs. off must produce
//      byte-identical answers in identical order, under TAX and TOSS.
//   3. Randomized property tests: seeded random corpora and patterns
//      (ad edges, Or conditions, unpinned roots, root in the selection
//      list) through both engines.

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/toss.h"
#include "tax/tax_semantics.h"
#include "tax/twig_join.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss {
namespace {

std::shared_ptr<const tax::DataTree> Tree(const std::string& xml) {
  auto doc = xml::Parse(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::make_shared<tax::DataTree>(
      tax::DataTree::FromXml(*doc, doc->root()));
}

tax::PatternTree JoinPattern(const std::string& cond) {
  tax::PatternTree pt;
  int root = pt.AddRoot();
  int left = pt.AddChild(root, tax::EdgeKind::kPc);
  pt.AddChild(left, tax::EdgeKind::kPc);
  int right = pt.AddChild(root, tax::EdgeKind::kAd);
  pt.AddChild(right, tax::EdgeKind::kPc);
  auto parsed = tax::ParseCondition(cond);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  pt.SetCondition(std::move(parsed).value());
  return pt;
}

std::vector<std::string> Serialize(const tax::TreeCollection& trees) {
  std::vector<std::string> out;
  out.reserve(trees.size());
  for (const auto& t : trees) out.push_back(xml::Write(t.ToXml()));
  return out;
}

// ---------------------------------------------------------------------------
// TwigJoiner units
// ---------------------------------------------------------------------------

class TwigJoinerTest : public ::testing::Test {
 protected:
  tax::PatternTree pattern_ = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"paper\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content = $5.content");
  std::set<int> expand_{2, 4};
  tax::TaxSemantics sem_;
  tax::ExactSimilarOracle oracle_;
};

TEST_F(TwigJoinerTest, PlanRejectsDegeneratePatterns) {
  tax::PatternTree empty;
  EXPECT_EQ(tax::TwigJoiner::Plan(empty, {}, sem_, &oracle_), nullptr);
  tax::PatternTree bare;
  bare.AddRoot();
  EXPECT_EQ(tax::TwigJoiner::Plan(bare, {}, sem_, &oracle_), nullptr);
  EXPECT_NE(tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_),
            nullptr);
}

TEST_F(TwigJoinerTest, EmptyPostingsShortCircuitTheMerge) {
  auto joiner = tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_);
  ASSERT_NE(joiner, nullptr);
  tax::TwigJoinStats stats;
  // Neither doc carries the pattern's tags: no postings anywhere.
  auto l = joiner->Prepare(Tree("<misc><x>1</x></misc>"), &stats);
  auto r = joiner->Prepare(Tree("<misc><y>2</y></misc>"), &stats);
  ASSERT_TRUE(l.ok()) << l.status();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(l->HasPostings());
  const tax::TwigDoc* rp = &*r;
  auto out = joiner->JoinLeft(*l, {rp}, /*combos_enabled=*/true, /*first_part=*/true,
                       /*value_filter=*/nullptr, nullptr, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(stats.stack_pushes.load(), 0u);
}

TEST_F(TwigJoinerTest, SingleDocPairProducesTheProduct) {
  auto joiner = tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_);
  ASSERT_NE(joiner, nullptr);
  tax::TwigJoinStats stats;
  // The left head's edge from the product root is pc, so in pair-tree
  // semantics it can only be the document root itself.
  auto l = joiner->Prepare(
      Tree("<paper><title>Views</title></paper>"), &stats);
  auto r = joiner->Prepare(
      Tree("<page><article><title>Views</title></article></page>"), &stats);
  ASSERT_TRUE(l.ok()) << l.status();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(l->HasPostings());
  const tax::TwigDoc* rp = &*r;
  auto out =
      joiner->JoinLeft(*l, {rp}, /*combos_enabled=*/true, /*first_part=*/true,
                       /*value_filter=*/nullptr, nullptr, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 1u);
  const std::string xml = xml::Write((*out)[0].ToXml());
  EXPECT_NE(xml.find("tax_prod_root"), std::string::npos) << xml;
  EXPECT_NE(xml.find("paper"), std::string::npos) << xml;
  EXPECT_NE(xml.find("article"), std::string::npos) << xml;
  EXPECT_GT(stats.combos_emitted.load(), 0u);
  EXPECT_GT(stats.stack_pushes.load(), 0u);
}

TEST_F(TwigJoinerTest, DuplicateTermsGroupInOneRun) {
  auto joiner = tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_);
  ASSERT_NE(joiner, nullptr);
  tax::TwigJoinStats stats;
  // Two identical titles on each side: 4 combos pass, but the sorted runs
  // group the duplicate values, so stream advances stay sub-quadratic in
  // the duplicate count at the value-comparison level.
  auto l = joiner->Prepare(Tree("<paper>"
                                "<title>Same</title>"
                                "<title>Same</title>"
                                "</paper>"),
                           &stats);
  auto r = joiner->Prepare(Tree("<page>"
                                "<article><title>Same</title></article>"
                                "<article><title>Same</title></article>"
                                "</page>"),
                           &stats);
  ASSERT_TRUE(l.ok()) << l.status();
  ASSERT_TRUE(r.ok()) << r.status();
  const tax::TwigDoc* rp = &*r;
  auto out =
      joiner->JoinLeft(*l, {rp}, /*combos_enabled=*/true, /*first_part=*/true,
                       /*value_filter=*/nullptr, nullptr, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  // All 2x2 combinations are checked and pass, but their witness trees are
  // byte-identical, so dedup collapses them to one answer -- exactly what
  // the pairwise engine produces.
  EXPECT_EQ(stats.combos_checked.load(), 4u);
  EXPECT_EQ(stats.combos_emitted.load(), 4u);
  EXPECT_EQ(out->size(), 1u);
}

TEST_F(TwigJoinerTest, CancellationMidMergeAborts) {
  auto joiner = tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_);
  ASSERT_NE(joiner, nullptr);
  tax::TwigJoinStats stats;
  auto l = joiner->Prepare(
      Tree("<paper><title>Views</title></paper>"), &stats);
  auto r = joiner->Prepare(
      Tree("<page><article><title>Views</title></article></page>"), &stats);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  CancelToken cancel;
  cancel.Cancel();
  const tax::TwigDoc* rp = &*r;
  auto out =
      joiner->JoinLeft(*l, {rp}, /*combos_enabled=*/true, /*first_part=*/true,
                       /*value_filter=*/nullptr, &cancel, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCancelled()) << out.status();
}

TEST_F(TwigJoinerTest, PruneFiltersExposeThePinnedTags) {
  auto joiner = tax::TwigJoiner::Plan(pattern_, expand_, sem_, &oracle_);
  ASSERT_NE(joiner, nullptr);
  auto filters = joiner->PruneFilters();
  // Both subtree heads are tag-pinned and the root's pin is the product
  // tag, so pruning is available.
  ASSERT_FALSE(filters.empty());
  bool saw_paper = false, saw_article = false;
  for (const auto* f : filters) {
    if (f->count("paper")) saw_paper = true;
    if (f->count("article")) saw_article = true;
  }
  EXPECT_TRUE(saw_paper);
  EXPECT_TRUE(saw_article);

  // An unpinned head disables doc pruning (any node could match).
  tax::PatternTree loose = JoinPattern(
      "$1.tag = \"tax_prod_root\" & $3.tag = \"title\" & "
      "$5.tag = \"title\" & $3.content = $5.content");
  auto loose_joiner = tax::TwigJoiner::Plan(loose, expand_, sem_, &oracle_);
  ASSERT_NE(loose_joiner, nullptr);
  EXPECT_TRUE(loose_joiner->PruneFilters().empty());
}

// ---------------------------------------------------------------------------
// Golden executor comparisons (twig vs. pairwise)
// ---------------------------------------------------------------------------

class TwigGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dblp = db_.CreateCollection("dblp");
    ASSERT_TRUE(dblp.ok());
    const char* kPapers[] = {
        "<inproceedings gtid=\"10001\">"
        "<author gtid=\"1001\">Jeffrey Ullman</author>"
        "<title>Views</title>"
        "<booktitle>SIGMOD Conference</booktitle><year>1999</year>"
        "</inproceedings>",
        "<inproceedings gtid=\"10002\">"
        "<author gtid=\"1001\">Jeffrey D. Ullman</author>"
        "<title>Indexes</title>"
        "<booktitle>ACM SIGMOD International Conference on Management of "
        "Data</booktitle><year>2000</year>"
        "</inproceedings>",
        "<inproceedings gtid=\"10003\">"
        "<author gtid=\"1002\">Serge Abiteboul</author>"
        "<title>Trees</title>"
        "<booktitle>SIGMOD Conference</booktitle><year>2000</year>"
        "</inproceedings>",
        // A doc with none of the join tags: exercises document pruning.
        "<misc gtid=\"10005\"><note>nothing to join</note></misc>",
        // Duplicate titles inside one doc: exercises run grouping.
        "<inproceedings gtid=\"10006\">"
        "<title>Views</title><title>Views</title>"
        "<booktitle>SIGMOD Conference</booktitle>"
        "</inproceedings>",
    };
    int i = 0;
    for (const char* p : kPapers) {
      ASSERT_TRUE((*dblp)->InsertXml("p" + std::to_string(i++), p).ok());
    }

    auto sigmod = db_.CreateCollection("sigmod");
    ASSERT_TRUE(sigmod.ok());
    ASSERT_TRUE((*sigmod)
                    ->InsertXml("page0",
                                "<proceedingsPage><articles>"
                                "<article gtid=\"10001\">"
                                "<title>Views.</title></article>"
                                "<article gtid=\"99\">"
                                "<title>Nothing Alike Here</title></article>"
                                "</articles></proceedingsPage>")
                    .ok());
    ASSERT_TRUE((*sigmod)
                    ->InsertXml("page1",
                                "<proceedingsPage><articles>"
                                "<article gtid=\"10003\">"
                                "<title>Trees</title></article>"
                                "</articles></proceedingsPage>")
                    .ok());

    ontology::OntologyMakerOptions opts;
    opts.content_tags = {"author", "booktitle", "title"};
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*dblp)->AllDocs()) {
      docs.push_back(&(*dblp)->document(id));
    }
    auto o = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(o.ok()) << o.status();
    core::SeoBuilder builder;
    builder.AddInstanceOntology(std::move(o).value());
    builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
    builder.SetEpsilon(3.0);
    auto seo = builder.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = core::MakeBibliographicTypeSystem();
  }

  /// Runs the join under both engines and requires byte-identical output
  /// in identical order (or the identical error). Returns the answer size.
  size_t ExpectEngineEquivalence(const core::QueryExecutor& exec,
                                 const tax::PatternTree& pt,
                                 const std::vector<int>& sl) {
    core::QueryOptions twig;
    twig.use_twig_join = true;
    core::QueryOptions pairwise;
    pairwise.use_twig_join = false;
    auto a = exec.Join("dblp", "sigmod", pt, sl, twig);
    auto b = exec.Join("dblp", "sigmod", pt, sl, pairwise);
    EXPECT_EQ(a.ok(), b.ok()) << a.status() << " vs " << b.status();
    if (!a.ok() || !b.ok()) return 0;
    EXPECT_EQ(Serialize(*a), Serialize(*b));
    return a->size();
  }

  store::Database db_;
  core::Seo seo_;
  core::TypeSystem types_;
};

TEST_F(TwigGoldenTest, Fig16StylePatternUnderTaxAndToss) {
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content");
  core::QueryExecutor tax_exec(&db_, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  size_t tax_n = ExpectEngineEquivalence(tax_exec, pt, {2, 4});
  size_t toss_n = ExpectEngineEquivalence(toss_exec, pt, {2, 4});
  // TOSS's ~ admits "Views"/"Views." on top of TAX's exact "Trees".
  EXPECT_GT(toss_n, tax_n);
  EXPECT_GT(tax_n, 0u);
}

TEST_F(TwigGoldenTest, AdEdgesOrConditionsAndUnpinnedRoot) {
  // No root tag pin, Or across the sides, one unpinned head.
  tax::PatternTree pt = JoinPattern(
      "$3.tag = \"title\" & $5.tag = \"title\" & "
      "($3.content = $5.content | $3.content = \"Trees\")");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  EXPECT_GT(ExpectEngineEquivalence(toss_exec, pt, {2, 4}), 0u);
}

TEST_F(TwigGoldenTest, RootInSelectionListCopiesWholePairs) {
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content = $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  EXPECT_GT(ExpectEngineEquivalence(toss_exec, pt, {1}), 0u);
}

/// Restores the symbol fast-path switch on scope exit.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool enabled) : prev_(SymbolFastPathsEnabled()) {
    SetSymbolFastPaths(enabled);
  }
  ~FastPathGuard() { SetSymbolFastPaths(prev_); }

 private:
  bool prev_;
};

TEST_F(TwigGoldenTest, AnswersInvariantAcrossFastPathsAndValueIndex) {
  // The full A/B matrix on the similarity-heavy pattern: {twig, pairwise}
  // x {symbol fast paths on, off} x {value index on, off} must be
  // byte-identical -- ids and the cross-document value filter are pure
  // accelerations.
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  std::vector<std::string> baseline;
  bool have_baseline = false;
  for (bool twig : {true, false}) {
    for (bool fast : {true, false}) {
      for (bool vindex : {true, false}) {
        FastPathGuard guard(fast);
        core::QueryOptions options;
        options.use_twig_join = twig;
        options.use_join_value_index = vindex;
        auto r = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, options);
        ASSERT_TRUE(r.ok()) << r.status();
        if (!have_baseline) {
          baseline = Serialize(*r);
          have_baseline = true;
          EXPECT_GT(baseline.size(), 0u);
        } else {
          EXPECT_EQ(Serialize(*r), baseline)
              << "twig=" << twig << " fast=" << fast << " vindex=" << vindex;
        }
      }
    }
  }
}

TEST_F(TwigGoldenTest, ValueFilterSkipsPairsWithoutChangingAnswers) {
  // On the similarity-join shape the filter is in-envelope: stats must show
  // value skips once enough incompatible documents exist, and the answer
  // must match the unfiltered run exactly.
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  core::QueryOptions with;
  with.use_join_value_index = true;
  core::QueryOptions without;
  without.use_join_value_index = false;
  auto a = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, with);
  auto b = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, without);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(Serialize(*a), Serialize(*b));
}

TEST_F(TwigGoldenTest, NoMatchesStaysEmptyUnderBothEngines) {
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"phantom\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content = $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  EXPECT_EQ(ExpectEngineEquivalence(toss_exec, pt, {2, 4}), 0u);
}

TEST_F(TwigGoldenTest, CancelledTokenAbortsTheTwigJoin) {
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content = $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  CancelToken cancel;
  cancel.Cancel();
  core::QueryOptions options;
  options.cancel = &cancel;
  auto r = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
}

TEST_F(TwigGoldenTest, TracedJoinAnnotatesTheTwigPhases) {
  tax::PatternTree pt = JoinPattern(
      "$1.tag = \"tax_prod_root\" & "
      "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
      "$4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content");
  core::QueryExecutor toss_exec(&db_, &seo_, &types_);
  obs::Trace trace("join(dblp,sigmod)");
  {
    obs::Span root_span = trace.RootSpan();
    auto joined = toss_exec.Join("dblp", "sigmod", pt, {2, 4},
                                 core::QueryOptions{}, nullptr, &root_span);
    ASSERT_TRUE(joined.ok()) << joined.status();
  }
  const std::string pretty = trace.Pretty();
  EXPECT_NE(pretty.find("twig_postings"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("twig_merge"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("stream_advances"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("join_engine"), std::string::npos) << pretty;
}

// ---------------------------------------------------------------------------
// Randomized property equivalence
// ---------------------------------------------------------------------------

class TwigPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937 rng(4242);
    auto load = [&](const std::string& name, size_t docs) {
      auto coll = db_.CreateCollection(name);
      ASSERT_TRUE(coll.ok());
      for (size_t i = 0; i < docs; ++i) {
        ASSERT_TRUE(
            (*coll)->InsertXml("d" + std::to_string(i), RandomDoc(&rng)).ok());
      }
    };
    load("lhs", 6);
    load("rhs", 5);
  }

  std::string RandomDoc(std::mt19937* rng) {
    static const char* kTags[] = {"paper", "note", "entry"};
    static const char* kLeafTags[] = {"title", "author", "extra"};
    static const char* kTexts[] = {"alpha", "alpha.", "beta", "gamma", "Alph"};
    auto pick = [&](auto& arr) {
      return arr[std::uniform_int_distribution<size_t>(
          0, std::size(arr) - 1)(*rng)];
    };
    std::string xml = "<root>";
    const int blocks = std::uniform_int_distribution<int>(1, 3)(*rng);
    for (int b = 0; b < blocks; ++b) {
      const char* tag = pick(kTags);
      xml += std::string("<") + tag + ">";
      const int leaves = std::uniform_int_distribution<int>(1, 2)(*rng);
      for (int l = 0; l < leaves; ++l) {
        const char* leaf = pick(kLeafTags);
        xml += std::string("<") + leaf + ">" + pick(kTexts) + "</" + leaf +
               ">";
      }
      xml += std::string("</") + tag + ">";
    }
    xml += "</root>";
    return xml;
  }

  /// A random 2-subtree join pattern + selection list. Covers pc and ad
  /// edges, pinned and unpinned roots/heads, cross-side ~ and =, Or
  /// clauses, and root-in-selection-list.
  std::pair<tax::PatternTree, std::vector<int>> RandomPattern(
      std::mt19937* rng) {
    auto chance = [&](double p) {
      return std::uniform_real_distribution<double>(0, 1)(*rng) < p;
    };
    auto edge = [&] {
      return chance(0.5) ? tax::EdgeKind::kPc : tax::EdgeKind::kAd;
    };
    tax::PatternTree pt;
    int root = pt.AddRoot();
    int l1 = pt.AddChild(root, edge());
    int l2 = pt.AddChild(l1, edge());
    int r1 = pt.AddChild(root, edge());
    int r2 = pt.AddChild(r1, edge());

    static const char* kTags[] = {"paper", "note", "entry"};
    static const char* kLeafTags[] = {"title", "author", "extra"};
    auto pick = [&](auto& arr) {
      return arr[std::uniform_int_distribution<size_t>(
          0, std::size(arr) - 1)(*rng)];
    };
    std::vector<std::string> atoms;
    if (chance(0.6)) atoms.push_back("$1.tag = \"tax_prod_root\"");
    auto pin = [&](int label, auto& arr, double p) {
      if (chance(p)) {
        atoms.push_back("$" + std::to_string(label) + ".tag = \"" +
                        pick(arr) + "\"");
      }
    };
    pin(l1, kTags, 0.7);
    pin(l2, kLeafTags, 0.7);
    pin(r1, kTags, 0.7);
    pin(r2, kLeafTags, 0.7);
    if (chance(0.6)) {
      atoms.push_back("$" + std::to_string(l2) + ".content " +
                      (chance(0.5) ? "~ $" : "= $") + std::to_string(r2) +
                      ".content");
    }
    if (chance(0.3)) {
      atoms.push_back("($" + std::to_string(l2) +
                      ".content = \"alpha\" | $" + std::to_string(r2) +
                      ".content = \"beta\")");
    }
    if (atoms.empty()) atoms.push_back("$1.tag = \"tax_prod_root\"");
    std::string cond = atoms[0];
    for (size_t i = 1; i < atoms.size(); ++i) cond += " & " + atoms[i];
    auto parsed = tax::ParseCondition(cond);
    EXPECT_TRUE(parsed.ok()) << cond << ": " << parsed.status();
    pt.SetCondition(std::move(parsed).value());

    std::vector<int> sl;
    if (chance(0.2)) sl.push_back(1);
    for (int label : {l1, r1}) {
      if (chance(0.5)) sl.push_back(label);
    }
    if (sl.empty()) sl = {l1, r1};
    return {std::move(pt), std::move(sl)};
  }

  store::Database db_;
};

TEST_F(TwigPropertyTest, RandomPatternsAgreeAcrossEnginesUnderTax) {
  core::QueryExecutor exec(&db_, nullptr, nullptr);
  std::mt19937 rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    auto [pt, sl] = RandomPattern(&rng);
    core::QueryOptions twig;
    twig.use_twig_join = true;
    core::QueryOptions pairwise;
    pairwise.use_twig_join = false;
    auto a = exec.Join("lhs", "rhs", pt, sl, twig);
    auto b = exec.Join("lhs", "rhs", pt, sl, pairwise);
    ASSERT_EQ(a.ok(), b.ok())
        << "trial " << trial << ": " << a.status() << " vs " << b.status();
    if (a.ok()) {
      EXPECT_EQ(Serialize(*a), Serialize(*b)) << "trial " << trial;
    }
  }
}

TEST_F(TwigPropertyTest, RandomPatternsAgreeAcrossFastPathsAndValueIndex) {
  // Property form of the A/B matrix: random patterns, random docs; the
  // pairwise engine with symbol fast paths off is the reference, every
  // {engine, fast paths, value index} combination must match it.
  core::QueryExecutor exec(&db_, nullptr, nullptr);
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    auto [pt, sl] = RandomPattern(&rng);
    std::optional<std::vector<std::string>> baseline;
    std::optional<Status> baseline_error;
    for (bool twig : {false, true}) {
      for (bool fast : {false, true}) {
        for (bool vindex : {false, true}) {
          FastPathGuard guard(fast);
          core::QueryOptions options;
          options.use_twig_join = twig;
          options.use_join_value_index = vindex;
          auto r = exec.Join("lhs", "rhs", pt, sl, options);
          if (!baseline.has_value() && !baseline_error.has_value()) {
            if (r.ok()) {
              baseline = Serialize(*r);
            } else {
              baseline_error = r.status();
            }
            continue;
          }
          ASSERT_EQ(r.ok(), baseline.has_value())
              << "trial " << trial << " twig=" << twig << " fast=" << fast
              << " vindex=" << vindex << ": " << r.status();
          if (r.ok()) {
            EXPECT_EQ(Serialize(*r), *baseline)
                << "trial " << trial << " twig=" << twig << " fast=" << fast
                << " vindex=" << vindex;
          }
        }
      }
    }
  }
}

TEST_F(TwigPropertyTest, RandomPatternsAgreeAcrossParallelism) {
  // The twig merge fans out per left doc; answers must not depend on the
  // worker count.
  core::QueryExecutor exec(&db_, nullptr, nullptr);
  std::mt19937 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    auto [pt, sl] = RandomPattern(&rng);
    core::QueryOptions seq;
    seq.parallelism = 1;
    core::QueryOptions par;
    par.parallelism = 4;
    auto a = exec.Join("lhs", "rhs", pt, sl, seq);
    auto b = exec.Join("lhs", "rhs", pt, sl, par);
    ASSERT_EQ(a.ok(), b.ok())
        << "trial " << trial << ": " << a.status() << " vs " << b.status();
    if (a.ok()) {
      EXPECT_EQ(Serialize(*a), Serialize(*b)) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Myers bit-parallel Levenshtein (rides along: the similarity fast path the
// twig join's oracle leans on)
// ---------------------------------------------------------------------------

TEST(MyersLevenshteinTest, MatchesTheReferenceDpOnFixedCases) {
  using sim::internal::LevenshteinDp;
  using sim::internal::LevenshteinMyers64;
  const std::pair<const char*, const char*> kCases[] = {
      {"", ""},           {"", "abc"},          {"abc", ""},
      {"abc", "abc"},     {"kitten", "sitting"}, {"flaw", "lawn"},
      {"Views", "Views."}, {"a", "b"},           {"ab", "ba"},
  };
  for (const auto& [a, b] : kCases) {
    EXPECT_EQ(LevenshteinMyers64(a, b), LevenshteinDp(a, b))
        << "\"" << a << "\" vs \"" << b << "\"";
  }
}

TEST(MyersLevenshteinTest, PropertyEqualToDpOnRandomStrings) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> len(0, 64);
  std::uniform_int_distribution<int> chr(0, 5);  // tiny alphabet: collisions
  auto make = [&] {
    std::string s;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) s += static_cast<char>('a' + chr(rng));
    return s;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const std::string a = make();
    const std::string b = make();
    EXPECT_EQ(sim::internal::LevenshteinMyers64(a, b),
              sim::internal::LevenshteinDp(a, b))
        << "\"" << a << "\" vs \"" << b << "\"";
  }
}

TEST(MyersLevenshteinTest, MeasureUsesTheFastPathTransparently) {
  auto measure = sim::MakeMeasure("levenshtein");
  ASSERT_TRUE(measure.ok());
  EXPECT_EQ((*measure)->Distance("kitten", "sitting"), 3.0);
  // 65+ chars takes the blocked bit-parallel path; same answer.
  const std::string long_a(100, 'a');
  std::string long_b = long_a;
  long_b[50] = 'b';
  EXPECT_EQ((*measure)->Distance(long_a, long_b), 1.0);
}

TEST(MyersLevenshteinTest, BlockedMatchesTheReferenceDpOnFixedCases) {
  using sim::internal::LevenshteinDp;
  using sim::internal::LevenshteinMyersBlocked;
  const std::string a64(64, 'x');
  const std::string a65(65, 'x');
  const std::string a128(128, 'x');
  const std::string a129(129, 'x');
  const std::pair<std::string, std::string> kCases[] = {
      {"", ""},
      {"", a129},
      {a65, ""},
      {a65, a65},
      {a64, a65},                       // word-boundary straddle
      {a128, a129},                     // two-word boundary straddle
      {a65 + "abc", a65 + "acb"},
      {a128 + "kitten", a128 + "sitting"},
      {"kitten", "sitting"},            // also valid below the block limit
  };
  for (const auto& [a, b] : kCases) {
    EXPECT_EQ(LevenshteinMyersBlocked(a, b), LevenshteinDp(a, b))
        << a.size() << " vs " << b.size();
  }
}

TEST(MyersLevenshteinTest, PropertyBlockedEqualToDpOnRandomStrings) {
  std::mt19937 rng(4321);
  // Lengths hug the 64/128/192 block boundaries where the carry and
  // shift-chaining bugs live, on a tiny alphabet to force dense matches.
  std::uniform_int_distribution<int> block(0, 2);
  std::uniform_int_distribution<int> jitter(-3, 3);
  std::uniform_int_distribution<int> chr(0, 5);
  auto make = [&] {
    int n = std::max(0, 64 * (block(rng) + 1) + jitter(rng));
    std::string s;
    for (int i = 0; i < n; ++i) s += static_cast<char>('a' + chr(rng));
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = make();
    const std::string b = make();
    EXPECT_EQ(sim::internal::LevenshteinMyersBlocked(a, b),
              sim::internal::LevenshteinDp(a, b))
        << "trial " << trial << ": " << a.size() << " vs " << b.size();
  }
}

}  // namespace
}  // namespace toss
