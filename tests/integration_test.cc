// End-to-end pipeline tests: generate data -> load store -> make ontologies
// -> fuse -> similarity-enhance -> execute TAX and TOSS queries -> audit
// against ground truth. These check the paper's *qualitative* claims at
// small scale; the quantitative reproduction lives in bench/.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "eval/metrics.h"

namespace toss {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr size_t kPapers = 80;

  void SetUp() override {
    data::BibConfig cfg;
    cfg.seed = 2026;
    cfg.num_people = 40;
    cfg.num_papers = kPapers;
    world_ = data::GenerateWorld(cfg);
    ASSERT_TRUE(data::LoadIntoCollection(
                    &db_, "dblp", data::EmitDblp(world_, 0, kPapers, cfg))
                    .ok());

    auto coll = db_.GetCollection("dblp");
    ASSERT_TRUE(coll.ok());
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = data::DblpContentTags();
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok()) << onto.status();
    onto_ = std::move(onto).value();
    types_ = core::MakeBibliographicTypeSystem();

    auto queries = data::MakeSelectionWorkload(world_, 0, kPapers, 6, 77);
    ASSERT_TRUE(queries.ok()) << queries.status();
    queries_ = std::move(queries).value();
  }

  core::Seo BuildSeo(double epsilon) {
    core::SeoBuilder b;
    b.AddInstanceOntology(onto_);
    b.SetMeasure(*sim::MakeMeasure("levenshtein"));
    b.SetEpsilon(epsilon);
    auto seo = b.Build();
    EXPECT_TRUE(seo.ok()) << seo.status();
    return std::move(seo).value();
  }

  data::BibWorld world_;
  store::Database db_;
  ontology::Ontology onto_;
  core::TypeSystem types_;
  std::vector<data::SelectionQuery> queries_;
};

TEST_F(PipelineTest, TaxPrecisionIsAlwaysOne) {
  core::QueryExecutor tax_exec(&db_, nullptr, nullptr);
  for (const auto& q : queries_) {
    auto r = tax_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status();
    auto m = eval::ComputePr(eval::ExtractRootProvenance(*r), q.correct);
    EXPECT_DOUBLE_EQ(m.precision, 1.0) << q.name;
    EXPECT_LE(m.recall, 1.0);
  }
}

TEST_F(PipelineTest, TossBeatsTaxOnRecallAndQuality) {
  core::Seo seo = BuildSeo(3.0);
  core::QueryExecutor tax_exec(&db_, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db_, &seo, &types_);
  double tax_quality = 0, toss_quality = 0;
  double tax_recall = 0, toss_recall = 0;
  for (const auto& q : queries_) {
    auto tr = tax_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    auto sr = toss_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    ASSERT_TRUE(tr.ok()) << q.name;
    ASSERT_TRUE(sr.ok()) << q.name;
    auto tm = eval::ComputePr(eval::ExtractRootProvenance(*tr), q.correct);
    auto sm = eval::ComputePr(eval::ExtractRootProvenance(*sr), q.correct);
    EXPECT_GE(sm.recall, tm.recall) << q.name;
    tax_quality += tm.quality;
    toss_quality += sm.quality;
    tax_recall += tm.recall;
    toss_recall += sm.recall;
  }
  EXPECT_GT(toss_recall, tax_recall);
  EXPECT_GT(toss_quality, tax_quality);
}

TEST_F(PipelineTest, TossAnswersGrowMonotonicallyWithEpsilon) {
  core::Seo seo2 = BuildSeo(2.0);
  core::Seo seo3 = BuildSeo(3.0);
  core::QueryExecutor tax_exec(&db_, nullptr, nullptr);
  core::QueryExecutor exec2(&db_, &seo2, &types_);
  core::QueryExecutor exec3(&db_, &seo3, &types_);
  for (const auto& q : queries_) {
    auto r0 = tax_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    auto r2 = exec2.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    auto r3 = exec3.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_TRUE(r3.ok());
    auto ids0 = eval::ExtractRootProvenance(*r0);
    auto ids2 = eval::ExtractRootProvenance(*r2);
    auto ids3 = eval::ExtractRootProvenance(*r3);
    // TAX answers are contained in TOSS answers; eps=2 in eps=3 (the ~
    // relation only grows with eps for exact-literal queries).
    EXPECT_TRUE(std::includes(ids2.begin(), ids2.end(), ids0.begin(),
                              ids0.end()))
        << q.name;
    EXPECT_TRUE(std::includes(ids3.begin(), ids3.end(), ids2.begin(),
                              ids2.end()))
        << q.name;
  }
}

TEST_F(PipelineTest, PersistenceDoesNotChangeAnswers) {
  core::Seo seo = BuildSeo(3.0);
  core::QueryExecutor exec(&db_, &seo, &types_);
  auto before = exec.Select("dblp", queries_[0].pattern, {1}, core::QueryOptions{});
  ASSERT_TRUE(before.ok());

  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "toss_integration_db";
  fs::remove_all(dir);
  ASSERT_TRUE(db_.Save(dir.string()).ok());
  auto reopened = store::Database::Open(dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  core::QueryExecutor exec2(&*reopened, &seo, &types_);
  auto after = exec2.Select("dblp", queries_[0].pattern, {1}, core::QueryOptions{});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(eval::ExtractRootProvenance(*before),
            eval::ExtractRootProvenance(*after));
  fs::remove_all(dir);
}

TEST_F(PipelineTest, InflatedOntologyPreservesAnswers) {
  // Fig 16(a)'s ontology-size sweep relies on padding being inert.
  core::Seo seo = BuildSeo(3.0);
  ontology::Ontology inflated = onto_;
  data::InflateOntology(&inflated, 150, 99);
  core::SeoBuilder b;
  b.AddInstanceOntology(std::move(inflated));
  b.SetMeasure(*sim::MakeMeasure("levenshtein"));
  b.SetEpsilon(3.0);
  auto big = b.Build();
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_GT(big->TotalNodeCount(), seo.TotalNodeCount());

  core::QueryExecutor small_exec(&db_, &seo, &types_);
  core::QueryExecutor big_exec(&db_, &*big, &types_);
  for (const auto& q : queries_) {
    auto rs = small_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    auto rb = big_exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(eval::ExtractRootProvenance(*rs),
              eval::ExtractRootProvenance(*rb))
        << q.name;
  }
}

TEST_F(PipelineTest, DirectAlgebraMatchesExecutor) {
  // Running tax::Select directly over the loaded trees must agree with the
  // executor's rewrite -> store -> evaluate pipeline (the rewrite is a pure
  // pruning step).
  core::Seo seo = BuildSeo(3.0);
  core::QueryExecutor exec(&db_, &seo, &types_);
  core::SeoSemantics sem(&seo, &types_);
  auto coll = db_.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  tax::TreeCollection all;
  for (store::DocId id : (*coll)->AllDocs()) {
    all.push_back(tax::DataTree::FromXml((*coll)->document(id),
                                         (*coll)->document(id).root()));
  }
  for (const auto& q : queries_) {
    auto direct = tax::Select(all, q.pattern, q.sl, sem);
    auto via_exec = exec.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
    ASSERT_TRUE(direct.ok()) << q.name << direct.status();
    ASSERT_TRUE(via_exec.ok()) << q.name;
    EXPECT_EQ(eval::ExtractRootProvenance(*direct),
              eval::ExtractRootProvenance(*via_exec))
        << q.name;
  }
}

}  // namespace
}  // namespace toss
