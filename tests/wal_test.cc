// Write-ahead log units (src/store/wal.{h,cc}) and the durable mutation
// path layered on it (Database::OpenDurable / DurableInsert / Replace /
// Remove / Checkpoint, plus the TossService mutation front door).
//
// The replay contract under test: every intact record is applied in
// order; a torn FINAL record (an append whose fsync was never
// acknowledged) is discarded with a warning; anything else that is wrong
// -- checksum, sequence, structure -- rejects the whole log, because an
// acknowledged mutation can no longer be trusted. The randomized
// corruption property drives that contract with arbitrary bit flips,
// truncations, and duplicated tails.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "service/toss_service.h"
#include "store/database.h"
#include "store/env.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "xml/xml_writer.h"

namespace toss::store {
namespace {

namespace fs = std::filesystem;

WalRecord Rec(WalOp op, std::string coll, std::string key,
              std::string xml = "") {
  WalRecord r;
  r.op = op;
  r.collection = std::move(coll);
  r.key = std::move(key);
  r.xml = std::move(xml);
  return r;
}

std::string BuildLog(const std::vector<WalRecord>& records,
                     uint64_t start_seq) {
  std::string out;
  uint64_t seq = start_seq;
  for (const WalRecord& r : records) {
    out += FormatWalRecord(seq++, FormatWalPayload(r));
  }
  return out;
}

bool SameRecord(const WalRecord& a, const WalRecord& b) {
  return a.op == b.op && a.collection == b.collection && a.key == b.key &&
         a.xml == b.xml;
}

// --- Record format ---------------------------------------------------------

TEST(WalFormatTest, PayloadRoundTripsHostileBytes) {
  const WalRecord records[] = {
      Rec(WalOp::kInsert, "dblp", "a1", "<x>1</x>"),
      Rec(WalOp::kReplace, "with space", "key\nnewline", "<x>\n\n</x>"),
      Rec(WalOp::kInsert, "pct%25", "% raw %", "<a><b>%\n</b></a>"),
      Rec(WalOp::kRemove, "c\rr", std::string("nul\0key", 7)),
  };
  for (const WalRecord& r : records) {
    auto back = ParseWalPayload(FormatWalPayload(r));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(SameRecord(r, *back));
  }
}

TEST(WalFormatTest, MalformedPayloadsAreRejected) {
  EXPECT_FALSE(ParseWalPayload("").ok());
  EXPECT_FALSE(ParseWalPayload("insert dblp").ok());        // no key line
  EXPECT_FALSE(ParseWalPayload("upsert dblp\nk\n<x/>").ok());  // bad op
  EXPECT_FALSE(ParseWalPayload("insert\nk\n<x/>").ok());    // no space
  EXPECT_FALSE(ParseWalPayload("remove dblp\nk\n<x/>").ok());  // remove+xml
  EXPECT_FALSE(ParseWalPayload("insert db%zz\nk\n<x/>").ok());  // bad escape
}

// --- Log scanning: the torn-vs-corrupt split -------------------------------

TEST(WalParseTest, EmptyLogParsesToNothing) {
  auto parsed = ParseWalLog("", 7);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->records.empty());
  EXPECT_EQ(parsed->next_seq, 7u);
  EXPECT_EQ(parsed->intact_bytes, 0u);
  EXPECT_FALSE(parsed->torn_tail);
}

TEST(WalParseTest, SequentialRecordsRoundTrip) {
  const std::vector<WalRecord> records = {
      Rec(WalOp::kInsert, "dblp", "a1", "<x>1</x>"),
      Rec(WalOp::kReplace, "dblp", "a1", "<x>2</x>"),
      Rec(WalOp::kRemove, "dblp", "a1"),
  };
  const std::string log = BuildLog(records, 5);
  auto parsed = ParseWalLog(log, 5);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(SameRecord(parsed->records[i], records[i])) << i;
  }
  EXPECT_EQ(parsed->next_seq, 8u);
  EXPECT_EQ(parsed->intact_bytes, log.size());
  EXPECT_FALSE(parsed->torn_tail);
}

TEST(WalParseTest, TornFinalRecordIsDiscardedWithWarning) {
  const std::vector<WalRecord> records = {
      Rec(WalOp::kInsert, "dblp", "a1", "<x>1</x>"),
      Rec(WalOp::kInsert, "dblp", "a2", "<x>2</x>"),
  };
  const std::string log = BuildLog(records, 1);
  // Torn mid-header (no newline yet) and torn mid-payload: both tolerate.
  for (const std::string tail : {std::string("rec 3 57"),
                                 std::string("rec 3 57 deadbeef\npartial")}) {
    auto parsed = ParseWalLog(log + tail, 1);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->records.size(), 2u);
    EXPECT_EQ(parsed->intact_bytes, log.size());
    EXPECT_TRUE(parsed->torn_tail);
    EXPECT_FALSE(parsed->torn_reason.empty());
  }
  // A clean truncation mid-record behaves the same.
  auto truncated = ParseWalLog(std::string_view(log).substr(0, log.size() - 3),
                               1);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->records.size(), 1u);
  EXPECT_TRUE(truncated->torn_tail);
}

TEST(WalParseTest, ChecksumMismatchIsCorruption) {
  std::string log = BuildLog({Rec(WalOp::kInsert, "dblp", "a1", "<x>1</x>"),
                              Rec(WalOp::kInsert, "dblp", "a2", "<x>2</x>")},
                             1);
  // Flip one payload byte of the FIRST record: complete record, bad CRC.
  log[log.find('\n') + 1] ^= 0x1;
  auto parsed = ParseWalLog(log, 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsIOError()) << parsed.status();
}

TEST(WalParseTest, SequenceGapsAndWrongStartAreCorruption) {
  const std::string log =
      BuildLog({Rec(WalOp::kInsert, "dblp", "a1", "<x/>")}, 4);
  EXPECT_FALSE(ParseWalLog(log, 3).ok());  // log starts at 4, expected 3
  EXPECT_FALSE(ParseWalLog(log, 5).ok());
  EXPECT_TRUE(ParseWalLog(log, 4).ok());
}

TEST(WalParseTest, DuplicatedTailIsCorruption) {
  const std::string first =
      BuildLog({Rec(WalOp::kInsert, "dblp", "a1", "<x/>")}, 1);
  const std::string second =
      BuildLog({Rec(WalOp::kInsert, "dblp", "a2", "<y/>")}, 2);
  // A re-sent tail (e.g. a buggy retry after a successful append) repeats
  // sequence 2: reject, not silently double-apply.
  auto parsed = ParseWalLog(first + second + second, 1);
  ASSERT_FALSE(parsed.ok());
}

TEST(WalParseTest, GarbageAndMalformedHeadersAreCorruption) {
  const std::string log =
      BuildLog({Rec(WalOp::kInsert, "dblp", "a1", "<x/>")}, 1);
  EXPECT_FALSE(ParseWalLog("not a wal\n" + log, 1).ok());
  EXPECT_FALSE(ParseWalLog("rec one 4 00000000\nabcd\n", 1).ok());
  EXPECT_FALSE(ParseWalLog("rec 1 4 zzzz\nabcd\n", 1).ok());
  EXPECT_FALSE(ParseWalLog("rec 1 4\nabcd\n", 1).ok());
}

TEST(WalParseTest, RandomizedCorruptionNeverYieldsDivergentState) {
  // Property: whatever a single random mutilation (bit flip, truncation,
  // duplicated tail) does to a log, parsing either fails or returns an
  // exact PREFIX of the original records -- never different content, and
  // a short prefix only with the torn flag raised or an error. This is
  // the recovery-side half of the durability argument.
  std::vector<WalRecord> records;
  for (int i = 0; i < 8; ++i) {
    records.push_back(Rec(i % 3 == 2 ? WalOp::kRemove
                          : i % 3 == 1 ? WalOp::kReplace
                                       : WalOp::kInsert,
                          "c" + std::to_string(i % 2), "k" + std::to_string(i),
                          i % 3 == 2 ? "" : "<v>" + std::string(i * 7, 'x') +
                                                "</v>"));
  }
  const std::string base = BuildLog(records, 1);
  Random rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::string log = base;
    switch (rng.Uniform(3)) {
      case 0:  // single bit flip
        log[rng.Uniform(log.size())] ^=
            static_cast<char>(1u << rng.Uniform(8));
        break;
      case 1:  // truncation
        log.resize(rng.Uniform(log.size()));
        break;
      default:  // duplicated tail of random length
        log += log.substr(log.size() - 1 - rng.Uniform(log.size() - 1));
        break;
    }
    auto parsed = ParseWalLog(log, 1);
    if (!parsed.ok()) continue;  // loud rejection is always acceptable
    ASSERT_LE(parsed->records.size(), records.size());
    for (size_t i = 0; i < parsed->records.size(); ++i) {
      EXPECT_TRUE(SameRecord(parsed->records[i], records[i]))
          << "record " << i << " diverged after corruption";
    }
    if (parsed->records.size() < records.size() && !parsed->torn_tail) {
      // Dropping records without the torn flag is legitimate only when
      // the log simply ENDS at a record boundary (a truncation there is
      // indistinguishable from a shorter log).
      EXPECT_EQ(parsed->intact_bytes, log.size())
          << "silently dropped records without raising the torn flag";
    }
    EXPECT_EQ(parsed->next_seq, 1u + parsed->records.size());
  }
}

// --- Group-commit writer ---------------------------------------------------

class WalWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "toss_wal_writer").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/wal-1.log";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  std::string path_;
};

TEST_F(WalWriterTest, AppendsFrameRecordsSequentially) {
  WalWriter writer(Env::Default(), path_, 10);
  for (int i = 0; i < 5; ++i) {
    Status st = writer.Append(
        FormatWalPayload(Rec(WalOp::kInsert, "c", "k" + std::to_string(i),
                             "<x/>")),
        nullptr);
    ASSERT_TRUE(st.ok()) << st;
  }
  EXPECT_EQ(writer.next_seq(), 15u);
  EXPECT_FALSE(writer.poisoned());

  auto text = Env::Default()->ReadFile(path_);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseWalLog(*text, 10);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->records.size(), 5u);
  EXPECT_FALSE(parsed->torn_tail);

  WalWriter::Stats stats = writer.GetStats();
  EXPECT_EQ(stats.appends, 5u);
  EXPECT_EQ(stats.records, 5u);
  EXPECT_GE(stats.batches, 1u);
}

TEST_F(WalWriterTest, ConcurrentAppendsCommitInSequenceOrder) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  WalWriter writer(Env::Default(), path_, 1);

  std::mutex order_mu;
  std::vector<std::string> apply_order;
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        Status st = writer.Append(
            FormatWalPayload(Rec(WalOp::kInsert, "c", key, "<x/>")), [&, key] {
              std::lock_guard<std::mutex> lock(order_mu);
              apply_order.push_back(key);
              return Status::OK();
            });
        if (!st.ok()) results[t] = st;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& st : results) EXPECT_TRUE(st.ok()) << st;

  // Every record durable, exactly once, and the applies ran in log order.
  auto text = Env::Default()->ReadFile(path_);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseWalLog(*text, 1);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  ASSERT_EQ(apply_order.size(), parsed->records.size());
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    EXPECT_EQ(parsed->records[i].key, apply_order[i]) << i;
  }

  WalWriter::Stats stats = writer.GetStats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kThreads * kPerThread));
  // Group commit really grouped (or degenerated to one-per-batch under an
  // unlucky schedule -- but never more batches than records).
  EXPECT_LE(stats.batches, stats.records);
  EXPECT_GE(stats.max_batch, 1u);
}

TEST_F(WalWriterTest, TransientAppendFaultsAreRetriedWithBackoff) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 2;
  FaultInjectionEnv fenv(Env::Default(), opts);
  WalWriter writer(&fenv, path_, 1);
  Status st = writer.Append(
      FormatWalPayload(Rec(WalOp::kInsert, "c", "k", "<x/>")), nullptr);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(fenv.faults_fired(), 2u);
  EXPECT_EQ(fenv.sleep_count(), 2u);
  EXPECT_FALSE(writer.poisoned());

  auto text = Env::Default()->ReadFile(path_);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseWalLog(*text, 1);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->records.size(), 1u);  // retries never duplicated bytes
}

TEST_F(WalWriterTest, HardErrorPoisonsWriterUntilRotate) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kHardError;
  FaultInjectionEnv fenv(Env::Default(), opts);
  WalWriter writer(&fenv, path_, 1);

  Status st = writer.Append(
      FormatWalPayload(Rec(WalOp::kInsert, "c", "k", "<x/>")), nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(writer.poisoned());

  // Poisoned: refused before touching the env at all.
  const size_t ops_before = fenv.op_count();
  Status refused = writer.Append(
      FormatWalPayload(Rec(WalOp::kInsert, "c", "k2", "<x/>")), nullptr);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(fenv.op_count(), ops_before);

  // Rotation (driven by a checkpoint in real life) clears the poison.
  ASSERT_TRUE(writer.Rotate(dir_ + "/wal-2.log").ok());
  EXPECT_FALSE(writer.poisoned());
}

// --- Durable database ------------------------------------------------------

std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    auto coll = db.GetCollection(name);
    EXPECT_TRUE(coll.ok());
    out += "collection " + EscapeKey(name) + "\n";
    for (DocId id : (*coll)->AllDocs()) {
      out += "  key " + EscapeKey((*coll)->key(id)) + "\n";
      out += "  doc " + xml::Write((*coll)->document(id)) + "\n";
    }
  }
  return out;
}

class DurableDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "toss_wal_durable").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WalPathOnDisk() {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (ParseWalFileName(entry.path().filename().string())) {
        return entry.path().string();
      }
    }
    return "";
  }

  std::string dir_;
};

TEST_F(DurableDbTest, MutationsSurviveReopenWithoutCheckpoint) {
  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->durable());
    ASSERT_TRUE(db->DurableInsert("dblp", "a1", "<x>old</x>").ok());
    ASSERT_TRUE(db->DurableInsert("dblp", "a2", "<y/>").ok());
    ASSERT_TRUE(db->DurableReplace("dblp", "a1", "<x>new</x>").ok());
    ASSERT_TRUE(db->DurableRemove("dblp", "a2").ok());
    ASSERT_TRUE(db->DurableInsert("conf", "c1", "<conf/>").ok());
    // No Save, no Checkpoint: durability must come from the log alone.
  }
  RecoveryReport report;
  auto back = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(report.wal.has_value());
  EXPECT_EQ(report.wal->records_replayed, 5u);
  EXPECT_FALSE(report.wal->torn_tail);
  EXPECT_FALSE(report.degraded());

  auto dblp = back->GetCollection("dblp");
  ASSERT_TRUE(dblp.ok());
  EXPECT_EQ((*dblp)->AllDocs().size(), 1u);  // a1 replaced, a2 removed
  auto id = (*dblp)->FindKey("a1");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(xml::Write((*dblp)->document(*id)), "<x>new</x>");
  EXPECT_FALSE((*dblp)->FindKey("a2").ok());
  EXPECT_TRUE(back->GetCollection("conf").ok());
}

TEST_F(DurableDbTest, CheckpointTruncatesLogAndIngestResumes) {
  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->DurableInsert("c", "k" + std::to_string(i), "<v/>").ok());
    }
    const uint64_t seq_before = db->WalNextSeq();
    ASSERT_TRUE(db->Checkpoint().ok());
    // The sequence counter survives the rotation; the old segment is gone.
    EXPECT_EQ(db->WalNextSeq(), seq_before);
    ASSERT_TRUE(db->DurableInsert("c", "post-ckpt", "<v/>").ok());
  }
  RecoveryReport report;
  auto back = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(report.wal.has_value());
  // Only the post-checkpoint mutation replays; the rest live in the
  // snapshot.
  EXPECT_EQ(report.wal->records_replayed, 1u);
  auto coll = back->GetCollection("c");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 11u);

  // At most one wal segment exists after a checkpoint.
  size_t wal_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (ParseWalFileName(entry.path().filename().string())) ++wal_files;
  }
  EXPECT_LE(wal_files, 1u);
}

TEST_F(DurableDbTest, ValidationFailuresReachNeitherLogNorMemory) {
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->DurableInsert("c", "k", "<v/>").ok());
  const uint64_t seq = db->WalNextSeq();

  EXPECT_TRUE(db->DurableInsert("c", "k", "<w/>").IsAlreadyExists());
  EXPECT_TRUE(db->DurableReplace("c", "missing", "<w/>").IsNotFound());
  EXPECT_TRUE(db->DurableRemove("c", "missing").IsNotFound());
  EXPECT_TRUE(db->DurableInsert("c", "k2", "<unclosed").IsParseError());
  EXPECT_TRUE(db->DurableInsert("", "k", "<v/>").IsInvalidArgument());

  // None of the rejects consumed a sequence number or landed on disk.
  EXPECT_EQ(db->WalNextSeq(), seq);
  RecoveryReport report;
  auto back = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(report.wal->records_replayed, 1u);
  EXPECT_EQ(Fingerprint(*back), Fingerprint(*db));
}

TEST_F(DurableDbTest, PlainSaveAndReloadAreRefusedWhileDurable) {
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->Save(dir_).IsInvalidArgument());
  EXPECT_TRUE(db->Reload(dir_).IsInvalidArgument());
  // And durable mutations on a non-durable database are refused too.
  Database plain;
  EXPECT_TRUE(plain.DurableInsert("c", "k", "<v/>").IsInvalidArgument());
  EXPECT_TRUE(plain.Checkpoint().IsInvalidArgument());
}

TEST_F(DurableDbTest, PlainSaveGenerationIsAdoptedByCheckpoint) {
  // A database committed by the snapshot-only path (no wal line) opens
  // durable: OpenDurable checkpoints once to establish the log.
  Database seed;
  auto coll = seed.CreateCollection("dblp");
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->InsertXml("a1", "<x/>").ok());
  ASSERT_TRUE(seed.Save(dir_).ok());

  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DurableInsert("dblp", "a2", "<y/>").ok());
  }
  auto back = Database::Open(dir_);
  ASSERT_TRUE(back.ok()) << back.status();
  auto dblp = back->GetCollection("dblp");
  ASSERT_TRUE(dblp.ok());
  EXPECT_EQ((*dblp)->size(), 2u);
}

TEST_F(DurableDbTest, TornTailIsTruncatedOnDurableReopen) {
  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DurableInsert("c", "k1", "<v/>").ok());
    ASSERT_TRUE(db->DurableInsert("c", "k2", "<v/>").ok());
  }
  // Simulate a torn final append: header landed, payload did not.
  const std::string wal_path = WalPathOnDisk();
  ASSERT_FALSE(wal_path.empty());
  auto text = Env::Default()->ReadFile(wal_path);
  ASSERT_TRUE(text.ok());
  const size_t intact = text->size();
  ASSERT_TRUE(
      Env::Default()->AppendFile(wal_path, "rec 99 400 deadbeef\nxx").ok());

  // Read-only Open tolerates and reports the tear...
  RecoveryReport report;
  auto ro = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(ro.ok()) << ro.status();
  ASSERT_TRUE(report.wal.has_value());
  EXPECT_TRUE(report.wal->torn_tail);
  EXPECT_EQ(report.wal->records_replayed, 2u);
  EXPECT_EQ(report.wal->intact_bytes, intact);

  // ...and the durable reopen truncates it away and keeps ingesting.
  {
    RecoveryReport dreport;
    auto db = Database::OpenDurable(dir_, Env::Default(),
                                    Database::DurableOptions{}, &dreport);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE(dreport.wal->torn_tail);
    ASSERT_TRUE(db->DurableInsert("c", "k3", "<v/>").ok());
  }
  RecoveryReport clean;
  auto back = Database::Open(dir_, Env::Default(), &clean);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_FALSE(clean.wal->torn_tail);
  EXPECT_EQ(clean.wal->records_replayed, 3u);
}

TEST_F(DurableDbTest, MidLogCorruptionFailsOpenLoudly) {
  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DurableInsert("c", "k1", "<v>aaaa</v>").ok());
    ASSERT_TRUE(db->DurableInsert("c", "k2", "<v>bbbb</v>").ok());
  }
  const std::string wal_path = WalPathOnDisk();
  ASSERT_FALSE(wal_path.empty());
  auto text = Env::Default()->ReadFile(wal_path);
  ASSERT_TRUE(text.ok());
  std::string corrupted = *text;
  corrupted[corrupted.find('\n') + 1] ^= 0x1;  // first record's payload
  ASSERT_TRUE(Env::Default()->WriteFile(wal_path, corrupted).ok());

  // An acknowledged record no longer checks out: refuse to open rather
  // than silently resurrect the pre-mutation state.
  auto opened = Database::Open(dir_);
  ASSERT_FALSE(opened.ok());
  auto durable = Database::OpenDurable(dir_, Env::Default());
  ASSERT_FALSE(durable.ok());
}

TEST_F(DurableDbTest, CreateIfMissingGovernsBootstrap) {
  Database::DurableOptions no_create;
  no_create.create_if_missing = false;
  EXPECT_FALSE(Database::OpenDurable(dir_, Env::Default(), no_create).ok());

  // Bootstrap never clobbers a directory that HAS snapshot-shaped content
  // which merely failed to load.
  fs::create_directories(dir_);
  ASSERT_TRUE(
      Env::Default()
          ->WriteFile(dir_ + "/" + kCurrentFileName, "gen-1\n")
          .ok());
  EXPECT_FALSE(Database::OpenDurable(dir_, Env::Default()).ok());
}

TEST_F(DurableDbTest, ConcurrentDistinctInsertsAllCommitOnce) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    std::vector<std::thread> threads;
    std::vector<Status> results(kThreads, Status::OK());
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Status st = db->DurableInsert(
              "c", "t" + std::to_string(t) + "-" + std::to_string(i), "<v/>");
          if (!st.ok()) results[t] = st;
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const Status& st : results) ASSERT_TRUE(st.ok()) << st;
  }
  RecoveryReport report;
  auto back = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(report.wal->records_replayed,
            static_cast<uint64_t>(kThreads * kPerThread));
  auto coll = back->GetCollection("c");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(DurableDbTest, RacingSameKeyInsertsCommitExactlyOne) {
  // Two threads race to insert the SAME key: exactly one may win, and --
  // critically -- the loser must lose BEFORE its record reaches the log,
  // or replay would reject the log as corrupt. 20 rounds of the race.
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  for (int round = 0; round < 20; ++round) {
    const std::string key = "contended-" + std::to_string(round);
    Status s1, s2;
    std::thread t1([&] { s1 = db->DurableInsert("c", key, "<one/>"); });
    std::thread t2([&] { s2 = db->DurableInsert("c", key, "<two/>"); });
    t1.join();
    t2.join();
    EXPECT_NE(s1.ok(), s2.ok()) << "round " << round << ": " << s1 << " / "
                                << s2;
    EXPECT_TRUE(s1.IsAlreadyExists() || s2.IsAlreadyExists());
  }
  // The log both replays cleanly and reproduces the in-memory state.
  RecoveryReport report;
  auto back = Database::Open(dir_, Env::Default(), &report);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(report.wal->records_replayed, 20u);
  EXPECT_EQ(Fingerprint(*back), Fingerprint(*db));
}

// --- Service mutation path -------------------------------------------------

TEST_F(DurableDbTest, ServiceRunRoutesMutationsToTheDurablePath) {
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  service::TossService svc(&*db, nullptr, nullptr);

  EXPECT_TRUE(svc.Run(service::QueryRequest::Insert("dblp", "a1",
                                                    "<x>old</x>"))
                  .ok());
  EXPECT_TRUE(svc.Run(service::QueryRequest::Insert("dblp", "a2", "<y/>"))
                  .ok());
  EXPECT_TRUE(svc.Run(service::QueryRequest::Replace("dblp", "a1",
                                                     "<x>new</x>"))
                  .ok());
  EXPECT_TRUE(svc.Run(service::QueryRequest::Remove("dblp", "a2")).ok());

  // Validation errors surface through the response status.
  EXPECT_TRUE(svc.Run(service::QueryRequest::Remove("dblp", "a2"))
                  .status.IsNotFound());
  EXPECT_TRUE(svc.Run(service::QueryRequest::Insert("dblp", "a1", "<dup/>"))
                  .status.IsAlreadyExists());

  // Acked through the service == durable: a fresh process sees it all.
  auto back = Database::Open(dir_);
  ASSERT_TRUE(back.ok()) << back.status();
  auto dblp = back->GetCollection("dblp");
  ASSERT_TRUE(dblp.ok());
  EXPECT_EQ((*dblp)->AllDocs().size(), 1u);  // a1 replaced, a2 removed
  auto id = (*dblp)->FindKey("a1");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(xml::Write((*dblp)->document(*id)), "<x>new</x>");
}

TEST_F(DurableDbTest, ReadOnlyServiceRefusesMutations) {
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  const Database* ro = &*db;
  service::TossService svc(ro, nullptr, nullptr);
  auto resp = svc.Run(service::QueryRequest::Insert("c", "k", "<v/>"));
  EXPECT_TRUE(resp.status.IsInvalidArgument()) << resp.status;
}

TEST_F(DurableDbTest, ServiceMutationHonorsCancellationBeforeTheLog) {
  auto db = Database::OpenDurable(dir_, Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();
  service::TossService svc(&*db, nullptr, nullptr);
  CancelToken cancelled;
  cancelled.Cancel();
  service::QueryRequest req = service::QueryRequest::Insert("c", "k", "<v/>");
  req.cancel = &cancelled;
  auto resp = svc.Run(req);
  EXPECT_TRUE(resp.status.IsCancelled()) << resp.status;
  // Cancelled before logging: nothing became durable.
  auto back = Database::Open(dir_);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->GetCollection("c").ok());
}

}  // namespace
}  // namespace toss::store
