#include <gtest/gtest.h>

#include <filesystem>

#include "data/bulk_loader.h"

namespace toss::data {
namespace {

namespace fs = std::filesystem;

TEST(BulkLoaderTest, SplitsDumpIntoDocuments) {
  store::Database db;
  auto stats = BulkLoadXml(&db, "dblp", R"(
    <dblp>
      <inproceedings key="conf/sigmod/Ullman99">
        <author>Jeffrey Ullman</author><title>A</title>
      </inproceedings>
      <inproceedings key="conf/vldb/Widom00">
        <author>Jennifer Widom</author><title>B</title>
      </inproceedings>
      <article><author>X</author></article>
    </dblp>)");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records, 3u);
  EXPECT_EQ(stats->root_tag, "dblp");
  auto coll = db.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 3u);
  // DBLP-style keys are preserved.
  EXPECT_TRUE((*coll)->FindKey("conf/sigmod/Ullman99").ok());
  EXPECT_TRUE((*coll)->FindKey("conf/vldb/Widom00").ok());
  // Keyless records get ordinal keys.
  EXPECT_TRUE((*coll)->FindKey("rec-2").ok());
  // Content is queryable.
  auto m = (*coll)->QueryText("//author[. = 'Jennifer Widom']");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 1u);
}

TEST(BulkLoaderTest, DuplicateKeysDisambiguated) {
  store::Database db;
  auto stats = BulkLoadXml(&db, "c",
                           "<dump><r key=\"same\"/><r key=\"same\"/></dump>");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records, 2u);
  auto coll = db.GetCollection("c");
  ASSERT_TRUE(coll.ok());
  EXPECT_TRUE((*coll)->FindKey("same").ok());
  EXPECT_TRUE((*coll)->FindKey("same#1").ok());
}

TEST(BulkLoaderTest, MalformedDumpRejected) {
  store::Database db;
  EXPECT_TRUE(BulkLoadXml(&db, "c", "<dump><r></dump>").status()
                  .IsParseError());
  // Collection name collisions surface too.
  ASSERT_TRUE(BulkLoadXml(&db, "c", "<dump/>").ok());
  EXPECT_TRUE(
      BulkLoadXml(&db, "c", "<dump/>").status().IsAlreadyExists());
}

TEST(BulkLoaderTest, GeneratorDumpRoundTrip) {
  BibConfig cfg;
  cfg.seed = 11;
  cfg.num_papers = 25;
  BibWorld world = GenerateWorld(cfg);
  auto docs = EmitDblp(world, 0, 25, cfg);

  std::string dump = FormatAsDump(docs);
  store::Database db;
  auto stats = BulkLoadXml(&db, "dblp", dump);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records, 25u);
  // gtid-derived keys.
  auto coll = db.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_TRUE((*coll)->FindKey("rec-10000").ok());
}

TEST(BulkLoaderTest, FileRoundTrip) {
  fs::path path = fs::temp_directory_path() / "toss_bulk_test.xml";
  BibConfig cfg;
  cfg.seed = 12;
  cfg.num_papers = 10;
  BibWorld world = GenerateWorld(cfg);
  ASSERT_TRUE(WriteDumpFile(EmitDblp(world, 0, 10, cfg), path.string()).ok());

  store::Database db;
  auto stats = BulkLoadFile(&db, "dblp", path.string());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records, 10u);
  fs::remove(path);
  EXPECT_TRUE(
      BulkLoadFile(&db, "other", path.string()).status().IsIOError());
}

}  // namespace
}  // namespace toss::data
