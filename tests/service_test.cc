// The service front door (DESIGN.md §11): one Run() entry point that must
// (a) answer exactly like the legacy per-operator wrappers, including under
// concurrent mixed load; (b) shed with ResourceExhausted when saturated;
// (c) honor deadlines and cancellation mid-query; and (d) reuse phase (i)
// rewrites through the prepared-query cache until SwapSeo invalidates them.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "service/toss_service.h"

namespace toss::service {
namespace {

void ExpectSameTrees(const tax::TreeCollection& a,
                     const tax::TreeCollection& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i])) << what << " tree " << i << " differs";
  }
}

// --- AdmissionController in isolation --------------------------------------

TEST(AdmissionControllerTest, ShedsWhenInflightAndQueueAreFull) {
  AdmissionController ac(/*max_inflight=*/1, /*max_queue=*/0);
  ASSERT_TRUE(ac.Acquire(nullptr).ok());
  EXPECT_EQ(ac.inflight(), 1u);

  Status s = ac.Acquire(nullptr);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;

  ac.Release();
  EXPECT_EQ(ac.inflight(), 0u);
  ASSERT_TRUE(ac.Acquire(nullptr).ok());
  ac.Release();
}

TEST(AdmissionControllerTest, QueuedWaiterIsAdmittedOnRelease) {
  AdmissionController ac(1, 1);
  ASSERT_TRUE(ac.Acquire(nullptr).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Status s = ac.Acquire(nullptr);
    EXPECT_TRUE(s.ok()) << s;
    admitted.store(true);
    ac.Release();
  });
  while (ac.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  ac.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ac.inflight(), 0u);
}

TEST(AdmissionControllerTest, QueuedWaiterHonorsDeadline) {
  AdmissionController ac(1, 1);
  ASSERT_TRUE(ac.Acquire(nullptr).ok());
  CancelToken deadline = CancelToken::AfterMillis(30);
  Status s = ac.Acquire(&deadline);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  EXPECT_EQ(ac.queued(), 0u) << "expired waiter must leave the queue";
  ac.Release();
}

TEST(AdmissionControllerTest, QueuedWaiterHonorsExternalCancel) {
  AdmissionController ac(1, 1);
  ASSERT_TRUE(ac.Acquire(nullptr).ok());
  CancelToken token;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    Status s = ac.Acquire(&token);
    EXPECT_TRUE(s.IsCancelled()) << s;
    done.store(true);
  });
  while (ac.queued() == 0) std::this_thread::yield();
  token.Cancel();
  waiter.join();
  EXPECT_TRUE(done.load());
  ac.Release();
}

// --- Service over a generated bibliographic fixture ------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::BibConfig cfg;
    cfg.seed = 314;
    cfg.num_papers = 120;
    cfg.num_people = 30;
    world_ = data::GenerateWorld(cfg);
    ASSERT_TRUE(data::LoadIntoCollection(
                    &db_, "dblp", data::EmitDblp(world_, 0, 120, cfg))
                    .ok());
    // A small slice for self-joins (quadratic in its size).
    ASSERT_TRUE(data::LoadIntoCollection(&db_, "mini",
                                         data::EmitDblp(world_, 0, 15, cfg))
                    .ok());
    seo_ = BuildSeoAt(3.0);
    types_ = core::MakeBibliographicTypeSystem();

    auto queries = data::MakeSelectionWorkload(world_, 0, 120, 5, 7);
    ASSERT_TRUE(queries.ok());
    queries_ = std::move(queries).value();
  }

  core::Seo BuildSeoAt(double epsilon) {
    auto coll = db_.GetCollection("dblp");
    EXPECT_TRUE(coll.ok());
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = data::DblpContentTags();
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    EXPECT_TRUE(onto.ok());
    core::SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    b.SetEpsilon(epsilon);
    auto seo = b.Build();
    EXPECT_TRUE(seo.ok()) << seo.status();
    return std::move(seo).value();
  }

  static tax::PatternTree YearSelfJoinPattern() {
    tax::PatternTree pt;
    int root = pt.AddRoot();
    int left = pt.AddChild(root, tax::EdgeKind::kPc);
    pt.AddChild(left, tax::EdgeKind::kPc);
    int right_sub = pt.AddChild(root, tax::EdgeKind::kPc);
    pt.AddChild(right_sub, tax::EdgeKind::kPc);
    pt.SetCondition(
        tax::ParseCondition("$1.tag = \"tax_prod_root\" & "
                            "$2.tag = \"inproceedings\" & $3.tag = \"year\" & "
                            "$4.tag = \"inproceedings\" & $5.tag = \"year\" & "
                            "$3.content = $5.content")
            .value());
    return pt;
  }

  data::BibWorld world_;
  store::Database db_;
  core::Seo seo_;
  core::TypeSystem types_;
  std::vector<data::SelectionQuery> queries_;
};

// The retained golden test for the retired per-operator wrappers: the
// service path must still produce exactly the answers a bare executor run
// through the QueryOptions path produces, operator by operator.
TEST_F(ServiceTest, RunMatchesDirectExecutorGolden) {
  TossService svc(&db_, &seo_, &types_);
  core::QueryExecutor direct(&db_, &seo_, &types_);
  const core::QueryOptions opts;

  for (const auto& q : queries_) {
    QueryResponse resp =
        svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
    auto want = direct.Select("dblp", q.pattern, q.sl, opts);
    ASSERT_TRUE(resp.ok()) << resp.status;
    ASSERT_TRUE(want.ok()) << want.status();
    ExpectSameTrees(*want, resp.trees, "select/" + q.name);
    EXPECT_EQ(resp.stats.result_trees, resp.trees.size());
  }

  std::vector<tax::ProjectItem> pl{{1, true}};
  QueryResponse proj =
      svc.Run(QueryRequest::Project("dblp", queries_[0].pattern, pl));
  auto want_proj = direct.Project("dblp", queries_[0].pattern, pl, opts);
  ASSERT_TRUE(proj.ok()) << proj.status;
  ASSERT_TRUE(want_proj.ok()) << want_proj.status();
  ExpectSameTrees(*want_proj, proj.trees, "project");

  tax::PatternTree by_year;
  int root = by_year.AddRoot();
  by_year.AddChild(root, tax::EdgeKind::kPc);
  by_year.SetCondition(tax::ParseCondition(
                           "$1.tag = \"inproceedings\" & $2.tag = \"year\"")
                           .value());
  QueryResponse grouped =
      svc.Run(QueryRequest::GroupBy("dblp", by_year, 2, {1}));
  auto want_grouped = direct.GroupBy("dblp", by_year, 2, {1}, opts);
  ASSERT_TRUE(grouped.ok()) << grouped.status;
  ASSERT_TRUE(want_grouped.ok()) << want_grouped.status();
  ExpectSameTrees(*want_grouped, grouped.trees, "groupby");

  tax::PatternTree join_pt = YearSelfJoinPattern();
  QueryResponse joined =
      svc.Run(QueryRequest::Join("mini", "mini", join_pt, {2, 4}));
  auto want_joined = direct.Join("mini", "mini", join_pt, {2, 4}, opts);
  ASSERT_TRUE(joined.ok()) << joined.status;
  ASSERT_TRUE(want_joined.ok()) << want_joined.status();
  EXPECT_GT(joined.trees.size(), 0u);
  ExpectSameTrees(*want_joined, joined.trees, "join");
}

TEST_F(ServiceTest, ConcurrentMixedStressMatchesSequential) {
  // Expected answers, computed sequentially on a private executor.
  core::QueryExecutor reference(&db_, &seo_, &types_);
  std::vector<tax::TreeCollection> want_select;
  for (const auto& q : queries_) {
    auto r = reference.Select("dblp", q.pattern, q.sl,
                              core::QueryOptions{});
    ASSERT_TRUE(r.ok()) << r.status();
    want_select.push_back(std::move(r).value());
  }
  tax::PatternTree join_pt = YearSelfJoinPattern();
  auto want_join =
      reference.Join("mini", "mini", join_pt, {2, 4}, core::QueryOptions{});
  ASSERT_TRUE(want_join.ok()) << want_join.status();

  TossService svc(&db_, &seo_, &types_);
  constexpr size_t kThreads = 4;
  constexpr size_t kIterations = 3;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t it = 0; it < kIterations; ++it) {
        for (size_t qi = 0; qi < queries_.size(); ++qi) {
          const auto& q = queries_[qi];
          QueryRequest req = QueryRequest::Select("dblp", q.pattern, q.sl);
          // Odd clients also exercise the traced and parallel paths.
          req.collect_trace = (t % 2) == 1;
          req.parallelism = (t % 2) == 1 ? 4 : 0;
          QueryResponse resp = svc.Run(req);
          const tax::TreeCollection& want = want_select[qi];
          if (!resp.ok() || resp.trees.size() != want.size()) {
            failures.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < want.size(); ++i) {
            if (!resp.trees[i].Equals(want[i])) failures.fetch_add(1);
          }
        }
        QueryResponse joined =
            svc.Run(QueryRequest::Join("mini", "mini", join_pt, {2, 4}));
        if (!joined.ok() || joined.trees.size() != want_join->size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < want_join->size(); ++i) {
          if (!joined.trees[i].Equals((*want_join)[i])) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0u)
      << "concurrent answers diverged from sequential";
  EXPECT_EQ(svc.inflight(), 0u);
}

TEST_F(ServiceTest, SaturatedServiceShedsWithResourceExhausted) {
  ServiceOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;
  TossService svc(&db_, &seo_, &types_, options);

  tax::PatternTree join_pt = YearSelfJoinPattern();
  std::atomic<bool> shed_seen{false};
  std::thread holder([&] {
    // Keep the only slot busy until a shed has been observed (bounded).
    // With a fast join, the selects below can win the slot race and shed
    // THIS thread instead -- that is equally a saturation observation.
    for (int i = 0; i < 200 && !shed_seen.load(); ++i) {
      QueryResponse r = svc.Run(QueryRequest::Join("dblp", "dblp", join_pt,
                                                   {2, 4}));
      if (r.status.IsResourceExhausted()) {
        shed_seen.store(true);
        break;
      }
      ASSERT_TRUE(r.ok()) << r.status;
    }
  });
  const auto& q = queries_[0];
  for (int i = 0; i < 20000 && !shed_seen.load(); ++i) {
    QueryResponse r = svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
    if (r.status.IsResourceExhausted()) shed_seen.store(true);
  }
  holder.join();
  EXPECT_TRUE(shed_seen.load());
}

TEST_F(ServiceTest, ExpiredTokenFailsSelectBeforeWork) {
  // Executor level: a pre-expired token is deterministic -- phase (i) never
  // starts, and the error is DeadlineExceeded, not a partial answer.
  core::QueryExecutor exec(&db_, &seo_, &types_);
  CancelToken expired = CancelToken::AfterMillis(0);
  core::QueryOptions opts;
  opts.cancel = &expired;
  core::ExecStats stats;
  auto r = exec.Select("dblp", queries_[0].pattern, queries_[0].sl, opts,
                       &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  EXPECT_EQ(stats.result_trees, 0u);
}

TEST_F(ServiceTest, DeadlineFiresMidQueryWithPartialStats) {
  TossService svc(&db_, &seo_, &types_);
  // The 120-doc self-join takes far longer than 1 ms on any machine this
  // test runs on; the deadline fires in an eval or store loop.
  QueryRequest req =
      QueryRequest::Join("dblp", "dblp", YearSelfJoinPattern(), {2, 4});
  req.deadline_ms = 1;
  QueryResponse resp = svc.Run(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status.IsDeadlineExceeded()) << resp.status;
  EXPECT_EQ(resp.trees.size(), 0u);
}

TEST_F(ServiceTest, ExternalCancelTokenIsHonored) {
  TossService svc(&db_, &seo_, &types_);
  CancelToken token;
  token.Cancel();
  QueryRequest req = QueryRequest::Select("dblp", queries_[0].pattern,
                                          queries_[0].sl);
  req.cancel = &token;
  QueryResponse resp = svc.Run(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status.IsCancelled()) << resp.status;
}

TEST_F(ServiceTest, PreparedCacheHitsOnRepeatAndInvalidatesOnSwap) {
  TossService svc(&db_, &seo_, &types_);
  const auto& q = queries_[0];

  QueryResponse first = svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
  ASSERT_TRUE(first.ok()) << first.status;
  EXPECT_FALSE(first.prepared_cache_hit);

  QueryResponse second =
      svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
  ASSERT_TRUE(second.ok()) << second.status;
  EXPECT_TRUE(second.prepared_cache_hit);
  ExpectSameTrees(first.trees, second.trees, "cached rewrite");
  EXPECT_EQ(first.stats.expanded_terms, second.stats.expanded_terms)
      << "memoized rewrites must report identical stats";
  EXPECT_EQ(first.stats.xpath_queries, second.stats.xpath_queries);
  EXPECT_GE(svc.PreparedCacheStats().hits, 1u);

  // A swapped SEO changes what phase (i) may expand to: the cache must be
  // dropped, and answers must match a fresh executor over the new SEO.
  core::Seo tighter = BuildSeoAt(2.0);
  ASSERT_TRUE(svc.SwapSeo(&tighter).ok());
  EXPECT_EQ(svc.PreparedCacheStats().entries, 0u);

  QueryResponse after = svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
  ASSERT_TRUE(after.ok()) << after.status;
  EXPECT_FALSE(after.prepared_cache_hit);
  core::QueryExecutor fresh(&db_, &tighter, &types_);
  auto want = fresh.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectSameTrees(*want, after.trees, "post-swap answers");
}

TEST_F(ServiceTest, TracedRunReturnsSameTreesPlusTrace) {
  TossService svc(&db_, &seo_, &types_);
  const auto& q = queries_[1];
  QueryResponse plain = svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
  QueryRequest traced_req = QueryRequest::Select("dblp", q.pattern, q.sl);
  traced_req.collect_trace = true;
  QueryResponse traced = svc.Run(traced_req);
  ASSERT_TRUE(plain.ok()) << plain.status;
  ASSERT_TRUE(traced.ok()) << traced.status;
  ASSERT_NE(traced.trace, nullptr);
  EXPECT_EQ(plain.trace, nullptr);
  ExpectSameTrees(plain.trees, traced.trees, "traced run");
  EXPECT_GT(traced.trace->CoverageFraction(), 0.5);
}

TEST_F(ServiceTest, SwapSeoToNullServesTaxBaseline) {
  TossService svc(&db_, &seo_, &types_);
  const auto& q = queries_[0];
  ASSERT_TRUE(svc.SwapSeo(nullptr).ok());
  QueryResponse resp = svc.Run(QueryRequest::Select("dblp", q.pattern, q.sl));
  ASSERT_TRUE(resp.ok()) << resp.status;
  core::QueryExecutor tax(&db_, nullptr, nullptr);
  auto want = tax.Select("dblp", q.pattern, q.sl, core::QueryOptions{});
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectSameTrees(*want, resp.trees, "tax baseline after swap");
}

}  // namespace
}  // namespace toss::service
