#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xml/xpath.h"

namespace toss::xml {
namespace {

XmlDocument Doc() {
  auto r = Parse(R"(
    <dblp>
      <inproceedings>
        <author>Jeffrey Ullman</author>
        <author>Jennifer Widom</author>
        <title>Views</title>
        <booktitle>SIGMOD Conference</booktitle>
        <year>1999</year>
      </inproceedings>
      <inproceedings>
        <author>Serge Abiteboul</author>
        <title>Trees about Microsoft products</title>
        <booktitle>VLDB</booktitle>
        <year>2000</year>
      </inproceedings>
      <article>
        <author>Jeffrey Ullman</author>
        <journal>TODS</journal>
      </article>
    </dblp>)");
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

size_t Count(const XmlDocument& doc, const std::string& expr) {
  auto r = EvaluateXPath(doc, expr);
  EXPECT_TRUE(r.ok()) << expr << ": " << r.status();
  return r.ok() ? r->size() : 0;
}

TEST(XPathTest, RootStep) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "/dblp"), 1u);
  EXPECT_EQ(Count(doc, "/nothere"), 0u);
}

TEST(XPathTest, ChildAndDescendantAxes) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "/dblp/inproceedings"), 2u);
  EXPECT_EQ(Count(doc, "//author"), 4u);
  EXPECT_EQ(Count(doc, "/dblp/inproceedings/author"), 3u);
  EXPECT_EQ(Count(doc, "//inproceedings//author"), 3u);
}

TEST(XPathTest, Wildcard) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "/dblp/*"), 3u);
  EXPECT_EQ(Count(doc, "//inproceedings/*"), 9u);
}

TEST(XPathTest, EqualityPredicate) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//inproceedings[booktitle='VLDB']"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[author='Jeffrey Ullman']"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[booktitle='ICDE']"), 0u);
}

TEST(XPathTest, SelfPredicate) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//booktitle[. = 'VLDB']"), 1u);
  EXPECT_EQ(Count(doc, "//year[.='1999']"), 1u);
}

TEST(XPathTest, ExistencePredicate) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//inproceedings[booktitle]"), 2u);
  EXPECT_EQ(Count(doc, "//*[journal]"), 1u);
}

TEST(XPathTest, ContainsPredicate) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//title[contains(., 'Microsoft')]"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[contains(title, 'Microsoft')]"),
            1u);
}

TEST(XPathTest, OrderingPredicates) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//inproceedings[year >= '1999']"), 2u);
  EXPECT_EQ(Count(doc, "//inproceedings[year > '1999']"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[year <= '1999']"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[year < '1999']"), 0u);
  EXPECT_EQ(Count(doc, "//year[. >= '1999']"), 2u);
  // Mixed representations are incomparable (false), not lexicographic.
  EXPECT_EQ(Count(doc, "//inproceedings[author >= '1000']"), 0u);
  // Two strings compare lexicographically.
  EXPECT_EQ(Count(doc, "//author[. >= 'S']"), 1u);  // Serge
}

TEST(XPathTest, OrderingHintsProduceRanges) {
  auto xp = XPath::Compile(
      "//inproceedings[year >= '1998'][year <= '2000']");
  ASSERT_TRUE(xp.ok());
  auto hints = xp->Hints();
  ASSERT_EQ(hints.ranges.size(), 2u);
  EXPECT_EQ(hints.ranges[0].tag, "year");
  ASSERT_TRUE(hints.ranges[0].lo.has_value());
  EXPECT_EQ(*hints.ranges[0].lo, "1998");
  EXPECT_FALSE(hints.ranges[0].hi.has_value());
  ASSERT_TRUE(hints.ranges[1].hi.has_value());
  EXPECT_EQ(*hints.ranges[1].hi, "2000");

  // Self comparison on a named step yields the step tag.
  auto self = XPath::Compile("//year[. > '1998']");
  ASSERT_TRUE(self.ok());
  auto self_hints = self->Hints();
  ASSERT_EQ(self_hints.ranges.size(), 1u);
  EXPECT_EQ(self_hints.ranges[0].tag, "year");
  EXPECT_EQ(*self_hints.ranges[0].lo, "1998");  // strict relaxed

  // Wildcard step: self comparison gives no range (no tag to anchor on).
  auto wild = XPath::Compile("//*[. > '1998']");
  ASSERT_TRUE(wild.ok());
  EXPECT_TRUE(wild->Hints().ranges.empty());

  // Disjunctive context: no range facts.
  auto disj = XPath::Compile("//a[year > '1998' or year < '1990']");
  ASSERT_TRUE(disj.ok());
  EXPECT_TRUE(disj->Hints().ranges.empty());
}

TEST(XPathTest, StartsWithPredicate) {
  auto doc = Doc();
  EXPECT_EQ(Count(doc, "//title[starts-with(., 'Trees')]"), 1u);
  EXPECT_EQ(Count(doc, "//title[starts-with(., 'rees')]"), 0u);
  EXPECT_EQ(Count(doc, "//inproceedings[starts-with(author, 'Jeff')]"),
            1u);
  // Hint extraction drops the possibly-partial final token.
  auto xp = XPath::Compile("//title[starts-with(., 'Trees about Mic')]");
  ASSERT_TRUE(xp.ok());
  auto hints = xp->Hints();
  ASSERT_EQ(hints.required_terms.size(), 2u);
  EXPECT_EQ(hints.required_terms[0], "trees");
  EXPECT_EQ(hints.required_terms[1], "about");
}

TEST(XPathTest, BooleanConnectives) {
  auto doc = Doc();
  EXPECT_EQ(
      Count(doc,
            "//inproceedings[booktitle='VLDB' or booktitle='SIGMOD "
            "Conference']"),
      2u);
  EXPECT_EQ(Count(doc,
                  "//inproceedings[booktitle='VLDB' and year='2000']"),
            1u);
  EXPECT_EQ(Count(doc,
                  "//inproceedings[booktitle='VLDB' and year='1999']"),
            0u);
  EXPECT_EQ(Count(doc, "//inproceedings[not(booktitle='VLDB')]"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[(booktitle='VLDB')]"), 1u);
}

TEST(XPathTest, NotEqualsUsesExistentialSemantics) {
  auto doc = Doc();
  // Both inproceedings have some author != 'Serge Abiteboul'?
  // First: yes (two others). Second: its only author IS Serge -> false.
  EXPECT_EQ(Count(doc, "//inproceedings[author!='Serge Abiteboul']"), 1u);
}

TEST(XPathTest, NestedRelativePath) {
  auto r = Parse("<a><b><c>v</c></b><b><c>w</c></b></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Count(*r, "//a[b/c='v']"), 1u);
  EXPECT_EQ(Count(*r, "//a[b/c='z']"), 0u);
}

TEST(XPathTest, AttributePredicate) {
  auto r = Parse("<a><b k=\"1\"/><b/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Count(*r, "//b[@k]"), 1u);
  EXPECT_EQ(Count(*r, "//b[@k='1']"), 1u);
  EXPECT_EQ(Count(*r, "//b[@k='2']"), 0u);
}

TEST(XPathTest, ResultsInDocumentOrderNoDuplicates) {
  auto doc = Doc();
  auto r = EvaluateXPath(doc, "//author");
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_LT((*r)[i - 1], (*r)[i]);
  }
}

TEST(XPathTest, PositionalPredicates) {
  auto doc = Doc();
  // First / second inproceedings per dblp context.
  auto first = EvaluateXPath(doc, "/dblp/inproceedings[1]");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 1u);
  auto second = EvaluateXPath(doc, "/dblp/inproceedings[2]");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_NE((*first)[0], (*second)[0]);
  EXPECT_LT((*first)[0], (*second)[0]);
  // Out of range: empty.
  EXPECT_EQ(Count(doc, "/dblp/inproceedings[9]"), 0u);
  // Per-context positions: first author of EACH inproceedings -> 2 nodes.
  EXPECT_EQ(Count(doc, "/dblp/inproceedings/author[1]"), 2u);
  EXPECT_EQ(Count(doc, "/dblp/inproceedings/author[2]"), 1u);
}

TEST(XPathTest, PositionalAndBooleanPredicatesInterleave) {
  auto r = Parse("<a><b k='1'>x</b><b>y</b><b k='1'>z</b></a>");
  ASSERT_TRUE(r.ok());
  // [@k][2]: second among k-attributed b's -> 'z'.
  auto filtered_then_pos = EvaluateXPath(*r, "/a/b[@k][2]");
  ASSERT_TRUE(filtered_then_pos.ok());
  ASSERT_EQ(filtered_then_pos->size(), 1u);
  EXPECT_EQ(r->TextContent((*filtered_then_pos)[0]), "z");
  // [2][@k]: second b is 'y' which has no @k -> empty.
  EXPECT_EQ(Count(*r, "/a/b[2][@k]"), 0u);
}

TEST(XPathTest, PositionZeroRejected) {
  EXPECT_FALSE(XPath::Compile("//a[0]").ok());
}

TEST(XPathTest, CompileErrors) {
  EXPECT_FALSE(XPath::Compile("author").ok());       // no leading slash
  EXPECT_FALSE(XPath::Compile("//a[b='x'").ok());    // missing ']'
  EXPECT_FALSE(XPath::Compile("//a[b=x]").ok());     // unquoted literal
  EXPECT_FALSE(XPath::Compile("//a[contains(b)]").ok());
  EXPECT_FALSE(XPath::Compile("//").ok());
  EXPECT_FALSE(XPath::Compile("").ok());
}

TEST(XPathTest, KeywordPrefixedTagNames) {
  // Tags beginning with operator keywords must not confuse the parser.
  auto r = Parse("<a><order>x</order><notes>y</notes><andx>z</andx></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Count(*r, "//a[order='x' and notes='y']"), 1u);
  EXPECT_EQ(Count(*r, "//a[andx='z']"), 1u);
}

// ---------------------------------------------------------------------------
// Planner hints
// ---------------------------------------------------------------------------

TEST(XPathHintsTest, CollectsTagsValuesAndTerms) {
  auto xp = XPath::Compile(
      "//inproceedings[booktitle='VLDB'][contains(title, 'Query Plans')]");
  ASSERT_TRUE(xp.ok());
  PlanHints h = xp->Hints();
  ASSERT_EQ(h.required_tags.size(), 3u);  // inproceedings, booktitle, title
  ASSERT_EQ(h.required_values.size(), 1u);
  EXPECT_EQ(h.required_values[0].first, "booktitle");
  EXPECT_EQ(h.required_values[0].second, "VLDB");
  // "Query Plans" tokenizes into two required terms.
  ASSERT_EQ(h.required_terms.size(), 2u);
  EXPECT_EQ(h.required_terms[0], "query");
}

TEST(XPathHintsTest, DisjunctionProducesNoMustFacts) {
  auto xp =
      XPath::Compile("//a[b='x' or c='y']");
  ASSERT_TRUE(xp.ok());
  PlanHints h = xp->Hints();
  EXPECT_EQ(h.required_tags.size(), 1u);  // only the step tag 'a'
  EXPECT_TRUE(h.required_values.empty());
}

TEST(XPathHintsTest, NegationProducesNoMustFacts) {
  auto xp = XPath::Compile("//a[not(b='x')]");
  ASSERT_TRUE(xp.ok());
  EXPECT_TRUE(xp->Hints().required_values.empty());
}

TEST(XPathHintsTest, WildcardStepContributesNoTag) {
  auto xp = XPath::Compile("//*[b='x']");
  ASSERT_TRUE(xp.ok());
  PlanHints h = xp->Hints();
  ASSERT_EQ(h.required_tags.size(), 1u);  // just 'b' from the predicate
  EXPECT_EQ(h.required_tags[0], "b");
}

TEST(XPathHintsTest, SelfEqualityYieldsTerms) {
  auto xp = XPath::Compile("//author[. = 'Jeffrey Ullman']");
  ASSERT_TRUE(xp.ok());
  PlanHints h = xp->Hints();
  ASSERT_EQ(h.required_terms.size(), 2u);
  EXPECT_EQ(h.required_terms[0], "jeffrey");
  EXPECT_EQ(h.required_terms[1], "ullman");
}

}  // namespace
}  // namespace toss::xml
