#include <gtest/gtest.h>

#include <filesystem>

#include "obs/metrics.h"
#include "store/database.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::store {
namespace {

Collection MakeSmallCollection() {
  Collection coll("papers");
  EXPECT_TRUE(coll.InsertXml("p1",
                             "<inproceedings><author>Jeffrey Ullman</author>"
                             "<booktitle>SIGMOD Conference</booktitle>"
                             "<year>1999</year></inproceedings>")
                  .ok());
  EXPECT_TRUE(coll.InsertXml("p2",
                             "<inproceedings><author>Serge Abiteboul</author>"
                             "<booktitle>VLDB</booktitle>"
                             "<year>2000</year></inproceedings>")
                  .ok());
  EXPECT_TRUE(coll.InsertXml("p3",
                             "<article><author>Jeffrey Ullman</author>"
                             "<journal>TODS</journal></article>")
                  .ok());
  return coll;
}

TEST(CollectionTest, InsertAndLookup) {
  Collection coll = MakeSmallCollection();
  EXPECT_EQ(coll.size(), 3u);
  auto id = coll.FindKey("p2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(coll.key(*id), "p2");
  EXPECT_TRUE(coll.FindKey("nope").status().IsNotFound());
}

TEST(CollectionTest, DuplicateKeyRejected) {
  Collection coll("c");
  ASSERT_TRUE(coll.InsertXml("k", "<a/>").ok());
  EXPECT_TRUE(coll.InsertXml("k", "<b/>").status().IsAlreadyExists());
}

TEST(CollectionTest, MalformedXmlRejected) {
  Collection coll("c");
  EXPECT_TRUE(coll.InsertXml("k", "<a><b></a>").status().IsParseError());
  EXPECT_EQ(coll.size(), 0u);
}

TEST(CollectionTest, QueryAcrossDocuments) {
  Collection coll = MakeSmallCollection();
  auto r = coll.QueryText("//author[. = 'Jeffrey Ullman']");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);  // p1 and p3
  auto r2 = coll.QueryText("//inproceedings[booktitle='VLDB']");
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), 1u);
  EXPECT_EQ(coll.key((*r2)[0].doc), "p2");
}

TEST(CollectionTest, IndexPruningStats) {
  Collection coll = MakeSmallCollection();
  QueryStats with_idx, without_idx;
  auto r1 = coll.QueryText("//inproceedings[booktitle='VLDB']", true,
                           &with_idx);
  auto r2 = coll.QueryText("//inproceedings[booktitle='VLDB']", false,
                           &without_idx);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->size(), r2->size());  // same answers either way
  EXPECT_TRUE(with_idx.used_indexes);
  EXPECT_FALSE(without_idx.used_indexes);
  EXPECT_LT(with_idx.scanned_docs, without_idx.scanned_docs);
  EXPECT_EQ(without_idx.scanned_docs, 3u);
  EXPECT_EQ(with_idx.scanned_docs, 1u);  // value index pinpoints p2
}

TEST(CollectionTest, TermIndexPrunesContains) {
  Collection coll = MakeSmallCollection();
  QueryStats stats;
  auto r = coll.QueryText("//author[contains(., 'Abiteboul')]", true,
                          &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(stats.scanned_docs, 1u);
}

TEST(CollectionTest, MissingTagShortCircuits) {
  Collection coll = MakeSmallCollection();
  QueryStats stats;
  auto r = coll.QueryText("//phdthesis", true, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(stats.scanned_docs, 0u);
}

TEST(CollectionTest, RemoveHidesDocument) {
  Collection coll = MakeSmallCollection();
  ASSERT_TRUE(coll.Remove("p1").ok());
  EXPECT_TRUE(coll.Remove("p1").IsNotFound());
  auto r = coll.QueryText("//author[. = 'Jeffrey Ullman']");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // only p3 remains
  EXPECT_EQ(coll.AllDocs().size(), 2u);
}

TEST(CollectionTest, DocsWithValueInRange) {
  Collection coll("papers");
  for (int year = 1995; year <= 2003; ++year) {
    ASSERT_TRUE(coll.InsertXml("p" + std::to_string(year),
                               "<p><year>" + std::to_string(year) +
                                   "</year><name>n" +
                                   std::to_string(year) + "</name></p>")
                    .ok());
  }
  // Closed numeric range.
  auto r = coll.DocsWithValueInRange("year", std::string("1998"),
                                     std::string("2000"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 3u);
  // One-sided ranges.
  auto ge = coll.DocsWithValueInRange("year", std::string("2001"),
                                      std::nullopt);
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->size(), 3u);
  auto le = coll.DocsWithValueInRange("year", std::nullopt,
                                      std::string("1996"));
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->size(), 2u);
  // Lexicographic range over a string field.
  auto lex = coll.DocsWithValueInRange("name", std::string("n1999"),
                                       std::string("n2001"));
  ASSERT_TRUE(lex.ok());
  EXPECT_EQ(lex->size(), 3u);
  // Unknown tag: empty.
  auto none = coll.DocsWithValueInRange("ghost", std::string("a"),
                                        std::string("z"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Non-integer numeric bounds are unsupported.
  EXPECT_TRUE(coll.DocsWithValueInRange("year", std::string("3.5"),
                                        std::nullopt)
                  .status()
                  .IsUnsupported());
}

TEST(CollectionTest, NumericRangeHandlesWidthsAndNegatives) {
  Collection coll("vals");
  for (const char* v : {"-20", "-3", "0", "7", "42", "999", "1000", "007"}) {
    std::string key = std::string("k") + v;
    ASSERT_TRUE(
        coll.InsertXml(key, "<r><v>" + std::string(v) + "</v></r>").ok());
  }
  auto r = coll.DocsWithValueInRange("v", std::string("-5"),
                                     std::string("50"));
  ASSERT_TRUE(r.ok());
  // -3, 0, 7, 42, and "007" (numeric 7) are in [-5, 50].
  EXPECT_EQ(r->size(), 5u);
  auto all = coll.DocsWithValueInRange("v", std::string("-100"),
                                       std::string("2000"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 8u);
}

TEST(CollectionTest, RangePredicatePrunesViaIndex) {
  Collection coll("papers");
  for (int year = 1990; year <= 2009; ++year) {
    ASSERT_TRUE(coll.InsertXml("p" + std::to_string(year),
                               "<p><year>" + std::to_string(year) +
                                   "</year></p>")
                    .ok());
  }
  QueryStats stats;
  auto matches = coll.QueryText("//p[year >= '2000'][year <= '2002']",
                                true, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->size(), 3u);
  EXPECT_TRUE(stats.used_indexes);
  EXPECT_EQ(stats.scanned_docs, 3u);  // range scan pinpoints candidates
  // Same answers without indexes.
  auto scan = coll.QueryText("//p[year >= '2000'][year <= '2002']", false);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), matches->size());
}

TEST(CollectionTest, ReplaceSwapsContentAndReindexes) {
  Collection coll = MakeSmallCollection();
  auto id = coll.Replace("p1",
                         std::move(*xml::Parse("<inproceedings>"
                                               "<author>New Author</author>"
                                               "</inproceedings>")));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(coll.AllDocs().size(), 3u);
  // Old content is gone from the indexes; new content is queryable.
  auto old_match = coll.QueryText("//author[. = 'Jeffrey Ullman']");
  ASSERT_TRUE(old_match.ok());
  EXPECT_EQ(old_match->size(), 1u);  // only p3 now
  auto new_match = coll.QueryText("//author[. = 'New Author']");
  ASSERT_TRUE(new_match.ok());
  ASSERT_EQ(new_match->size(), 1u);
  EXPECT_EQ(coll.key((*new_match)[0].doc), "p1");
  EXPECT_TRUE(coll.Replace("ghost", xml::XmlDocument()).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      coll.Replace("ghost", std::move(*xml::Parse("<x/>"))).status()
          .IsNotFound());
}

TEST(CollectionTest, ApproxByteSizePositive) {
  Collection coll = MakeSmallCollection();
  size_t full = coll.ApproxByteSize();
  EXPECT_GT(full, 100u);
  ASSERT_TRUE(coll.Remove("p1").ok());
  EXPECT_LT(coll.ApproxByteSize(), full);
}

TEST(CollectionTest, ApproxByteSizeMatchesSerialization) {
  // Sizes are recorded at Insert/Replace; the sum must equal what a full
  // re-serialization would report.
  Collection coll = MakeSmallCollection();
  size_t expected = 0;
  for (DocId id : coll.AllDocs()) {
    expected += xml::Write(coll.document(id)).size();
  }
  EXPECT_EQ(coll.ApproxByteSize(), expected);
  ASSERT_TRUE(
      coll.Replace("p1", std::move(*xml::Parse("<a><b>tiny</b></a>"))).ok());
  expected = 0;
  for (DocId id : coll.AllDocs()) {
    expected += xml::Write(coll.document(id)).size();
  }
  EXPECT_EQ(coll.ApproxByteSize(), expected);
}

TEST(CollectionTest, DecodedTreeCacheReturnsCorrectTrees) {
  Collection coll = MakeSmallCollection();
  auto id = coll.FindKey("p1");
  ASSERT_TRUE(id.ok());
  auto tree = coll.DecodedTree(*id);
  ASSERT_NE(tree, nullptr);
  tax::DataTree fresh =
      tax::DataTree::FromXml(coll.document(*id), coll.document(*id).root());
  EXPECT_TRUE(tree->Equals(fresh));
  EXPECT_TRUE(tree->has_tag_index());
  // Second access is a hit on the same instance.
  auto again = coll.DecodedTree(*id);
  EXPECT_EQ(tree.get(), again.get());
  auto stats = coll.GetTreeCacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CollectionTest, DecodedTreeCacheInvalidatedOnReplaceAndRemove) {
  Collection coll = MakeSmallCollection();
  auto id = coll.FindKey("p2");
  ASSERT_TRUE(id.ok());
  auto before = coll.DecodedTree(*id);
  EXPECT_EQ(coll.GetTreeCacheStats().entries, 1u);
  auto new_id = coll.Replace(
      "p2", std::move(*xml::Parse("<inproceedings><booktitle>ICDE"
                                  "</booktitle></inproceedings>")));
  ASSERT_TRUE(new_id.ok());
  EXPECT_NE(*new_id, *id);
  // The dead DocId's entry is gone; the new id decodes the new content.
  EXPECT_EQ(coll.GetTreeCacheStats().entries, 0u);
  auto after = coll.DecodedTree(*new_id);
  ASSERT_EQ(after->size(), 2u);
  EXPECT_EQ(after->node(1).content, "ICDE");
  // The old shared_ptr stays valid for readers that grabbed it pre-replace.
  EXPECT_EQ(before->node(0).tag, "inproceedings");
  ASSERT_TRUE(coll.Remove("p2").ok());
  EXPECT_EQ(coll.GetTreeCacheStats().entries, 0u);
}

TEST(CollectionTest, DecodedTreeCacheEvictsLeastRecentlyUsed) {
  Collection coll = MakeSmallCollection();
  coll.SetTreeCacheCapacity(2);
  auto p1 = coll.FindKey("p1");
  auto p2 = coll.FindKey("p2");
  auto p3 = coll.FindKey("p3");
  (void)coll.DecodedTree(*p1);
  (void)coll.DecodedTree(*p2);
  (void)coll.DecodedTree(*p1);  // p1 now most recent
  (void)coll.DecodedTree(*p3);  // evicts p2
  auto stats = coll.GetTreeCacheStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.misses, 3u);
  (void)coll.DecodedTree(*p1);  // still cached
  EXPECT_EQ(coll.GetTreeCacheStats().hits, 2u);
  (void)coll.DecodedTree(*p2);  // was evicted: a fresh miss
  EXPECT_EQ(coll.GetTreeCacheStats().misses, 4u);
}

TEST(CollectionTest, TreeCacheStatsResetMoveAndRegistryMirror) {
  obs::Counter& reg_hits = obs::Metrics().GetCounter("store.tree_cache.hits");
  obs::Counter& reg_misses =
      obs::Metrics().GetCounter("store.tree_cache.misses");
  const uint64_t hits_before = reg_hits.Value();
  const uint64_t misses_before = reg_misses.Value();

  Collection coll = MakeSmallCollection();
  auto id = coll.FindKey("p1");
  ASSERT_TRUE(id.ok());
  (void)coll.DecodedTree(*id);  // miss
  (void)coll.DecodedTree(*id);  // hit
  EXPECT_EQ(coll.GetTreeCacheStats().hits, 1u);
  EXPECT_EQ(coll.GetTreeCacheStats().misses, 1u);
  // The registry mirrors every hit/miss, cumulatively.
  EXPECT_EQ(reg_hits.Value(), hits_before + 1);
  EXPECT_EQ(reg_misses.Value(), misses_before + 1);

  // Explicit reset zeroes the per-collection view but keeps the cached
  // entries; the registry counters stay cumulative.
  coll.ResetTreeCacheStats();
  auto stats = coll.GetTreeCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(reg_hits.Value(), hits_before + 1);

  // Moves transfer the counters and zero the source -- the stale-stats gap
  // around Database::Reload, where new collections replace old ones.
  (void)coll.DecodedTree(*id);  // hit on the surviving entry
  Collection moved = std::move(coll);
  EXPECT_EQ(moved.GetTreeCacheStats().hits, 1u);
  EXPECT_EQ(coll.GetTreeCacheStats().hits, 0u);  // NOLINT: moved-from probe
}

TEST(CollectionTest, StatsTrackIndexes) {
  Collection coll = MakeSmallCollection();
  auto stats = coll.GetStats();
  EXPECT_EQ(stats.live_docs, 3u);
  EXPECT_GT(stats.tag_index_entries, 3u);
  EXPECT_GT(stats.term_index_entries, 5u);
  EXPECT_GT(stats.value_index_keys, 5u);
  EXPECT_GE(stats.numeric_index_keys, 2u);  // the two year values
  EXPECT_GT(stats.approx_bytes, 100u);
  ASSERT_TRUE(coll.Remove("p1").ok());
  auto after = coll.GetStats();
  EXPECT_EQ(after.live_docs, 2u);
  EXPECT_LT(after.value_index_keys, stats.value_index_keys);
}

TEST(DatabaseTest, CollectionLifecycle) {
  Database db;
  auto c1 = db.CreateCollection("dblp");
  ASSERT_TRUE(c1.ok());
  EXPECT_TRUE(db.CreateCollection("dblp").status().IsAlreadyExists());
  EXPECT_TRUE(db.CreateCollection("").status().IsInvalidArgument());
  ASSERT_TRUE(db.CreateCollection("sigmod").ok());
  EXPECT_EQ(db.CollectionNames().size(), 2u);
  ASSERT_TRUE(db.GetCollection("dblp").ok());
  EXPECT_TRUE(db.GetCollection("none").status().IsNotFound());
  ASSERT_TRUE(db.DropCollection("dblp").ok());
  EXPECT_TRUE(db.DropCollection("dblp").IsNotFound());
  EXPECT_EQ(db.collection_count(), 1u);
}

TEST(DatabaseTest, SaveOpenRoundTrip) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "toss_store_test";
  fs::remove_all(dir);

  Database db;
  auto coll = db.CreateCollection("dblp");
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)
                  ->InsertXml("p1",
                              "<inproceedings gtid=\"10001\">"
                              "<author>A &amp; B</author>"
                              "</inproceedings>")
                  .ok());
  ASSERT_TRUE((*coll)->InsertXml("weird key / with : chars", "<x/>").ok());
  auto coll2 = db.CreateCollection("sigmod");
  ASSERT_TRUE(coll2.ok());
  ASSERT_TRUE((*coll2)->InsertXml("page", "<proceedingsPage/>").ok());

  ASSERT_TRUE(db.Save(dir.string()).ok());

  auto reopened = Database::Open(dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->CollectionNames(), db.CollectionNames());
  auto rc = reopened->GetCollection("dblp");
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ((*rc)->size(), 2u);
  ASSERT_TRUE((*rc)->FindKey("weird key / with : chars").ok());
  // Content and attributes survived.
  auto matches = (*rc)->QueryText("//inproceedings[@gtid='10001']");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
  auto authors = (*rc)->QueryText("//author[. = 'A & B']");
  ASSERT_TRUE(authors.ok());
  EXPECT_EQ(authors->size(), 1u);

  fs::remove_all(dir);
}

TEST(DatabaseTest, SaveOpenRoundTripHostileKeys) {
  // Regression for the pre-generational _keys.txt format, which stored
  // keys one-per-line unescaped: a key containing a newline silently split
  // into two, and path separators had to be special-cased. The manifest
  // escapes keys, so arbitrary bytes round-trip.
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "toss_store_hostile_keys";
  fs::remove_all(dir);

  Database db;
  auto coll = db.CreateCollection("k");
  ASSERT_TRUE(coll.ok());
  const std::string keys[] = {
      "two\nlines",
      "../escape/../../attempt",
      "C:\\windows\\style",
      "percent%00%0Atricks",
      "trailing space ",
  };
  for (const std::string& key : keys) {
    ASSERT_TRUE((*coll)->InsertXml(key, "<doc/>").ok()) << key;
  }
  ASSERT_TRUE(db.Save(dir.string()).ok());

  auto reopened = Database::Open(dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto rc = reopened->GetCollection("k");
  ASSERT_TRUE(rc.ok());
  ASSERT_EQ((*rc)->size(), 5u);
  for (const std::string& key : keys) {
    EXPECT_TRUE((*rc)->FindKey(key).ok()) << key;
  }
  // Insertion order survived, so DocIds line up too.
  size_t i = 0;
  for (DocId id : (*rc)->AllDocs()) {
    EXPECT_EQ((*rc)->key(id), keys[i++]);
  }

  fs::remove_all(dir);
}

TEST(DatabaseTest, OpenMissingDirectoryFails) {
  auto r = Database::Open("/nonexistent/toss/db/dir");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

}  // namespace
}  // namespace toss::store
