#include <gtest/gtest.h>

#include "common/random.h"
#include "ontology/hierarchy.h"

namespace toss::ontology {
namespace {

TEST(HierarchyTest, NodesAndTermIndex) {
  Hierarchy h;
  HNodeId a = h.AddNode({"author", "writer"});
  HNodeId b = h.AddNode({"article"});
  EXPECT_EQ(h.node_count(), 2u);
  EXPECT_EQ(h.FindTerm("writer"), a);
  EXPECT_EQ(h.FindTerm("article"), b);
  EXPECT_EQ(h.FindTerm("nothing"), kInvalidHNode);
  EXPECT_EQ(h.NodeLabel(a), "{author, writer}");
}

TEST(HierarchyTest, AddNodeDeduplicatesTerms) {
  Hierarchy h;
  HNodeId a = h.AddNode({"x", "y", "x"});
  EXPECT_EQ(h.terms(a).size(), 2u);
}

TEST(HierarchyTest, EnsureTermReusesExisting) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("t");
  EXPECT_EQ(h.EnsureTerm("t"), a);
  EXPECT_EQ(h.node_count(), 1u);
}

TEST(HierarchyTest, AddTermToNode) {
  Hierarchy h;
  HNodeId a = h.AddNode({"SIGMOD Conference"});
  ASSERT_TRUE(h.AddTermToNode(a, "sigmod conference").ok());
  ASSERT_TRUE(h.AddTermToNode(a, "sigmod conference").ok());  // idempotent
  EXPECT_EQ(h.terms(a).size(), 2u);
  EXPECT_EQ(h.FindTerm("sigmod conference"), a);
  EXPECT_TRUE(h.AddTermToNode(99, "x").IsInvalidArgument());
}

TEST(HierarchyTest, EdgesAndLeq) {
  // Example 7 of the paper: author <= article, title <= article (partof).
  Hierarchy h;
  HNodeId article = h.AddNode({"article"});
  HNodeId author = h.AddNode({"author"});
  HNodeId title = h.AddNode({"title"});
  ASSERT_TRUE(h.AddEdge(author, article).ok());
  ASSERT_TRUE(h.AddEdge(title, article).ok());
  EXPECT_TRUE(h.Leq(author, article));
  EXPECT_TRUE(h.Leq(title, article));
  EXPECT_TRUE(h.Leq(article, article));  // reflexive
  EXPECT_FALSE(h.Leq(article, author));
  EXPECT_FALSE(h.Leq(author, title));
  EXPECT_TRUE(h.LeqTerms("author", "article"));
  EXPECT_FALSE(h.LeqTerms("article", "author"));
}

TEST(HierarchyTest, LeqIsTransitive) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  HNodeId c = h.EnsureTerm("c");
  HNodeId d = h.EnsureTerm("d");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  ASSERT_TRUE(h.AddEdge(c, d).ok());
  EXPECT_TRUE(h.Leq(a, d));
  EXPECT_FALSE(h.Leq(d, a));
}

TEST(HierarchyTest, SelfEdgeRejectedDuplicateIgnored) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  EXPECT_TRUE(h.AddEdge(a, a).IsInvalidArgument());
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  EXPECT_EQ(h.edge_count(), 1u);
  EXPECT_TRUE(h.AddEdge(a, 57).IsInvalidArgument());
}

TEST(HierarchyTest, AboveBelowClosures) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  HNodeId c = h.EnsureTerm("c");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  auto above = h.Above(a);
  EXPECT_EQ(above.size(), 3u);  // a, b, c
  auto below = h.Below(c);
  EXPECT_EQ(below.size(), 3u);
  EXPECT_EQ(h.Above(c).size(), 1u);
  EXPECT_EQ(h.Below(a).size(), 1u);
}

TEST(HierarchyTest, CycleDetection) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  HNodeId c = h.EnsureTerm("c");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  EXPECT_TRUE(h.IsAcyclic());
  ASSERT_TRUE(h.AddEdge(c, a).ok());
  EXPECT_FALSE(h.IsAcyclic());
  // Leq remains well-defined on the cyclic graph (fixed-point closure).
  EXPECT_TRUE(h.Leq(a, c));
  EXPECT_TRUE(h.Leq(c, a));
  EXPECT_TRUE(h.TransitiveReduction().IsInconsistent());
}

TEST(HierarchyTest, TransitiveReductionRemovesImpliedEdges) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  HNodeId c = h.EnsureTerm("c");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  ASSERT_TRUE(h.AddEdge(a, c).ok());  // implied by a->b->c
  EXPECT_FALSE(h.IsTransitivelyReduced());
  ASSERT_TRUE(h.TransitiveReduction().ok());
  EXPECT_TRUE(h.IsTransitivelyReduced());
  EXPECT_EQ(h.edge_count(), 2u);
  // Reachability is preserved.
  EXPECT_TRUE(h.Leq(a, c));
}

TEST(HierarchyTest, ReductionPreservesReachabilityRandomized) {
  Random rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    Hierarchy h;
    const int n = 12;
    for (int i = 0; i < n; ++i) h.EnsureTerm("t" + std::to_string(i));
    // Random DAG: edges only from lower to higher index.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.25)) {
          ASSERT_TRUE(h.AddEdge(i, j).ok());
        }
      }
    }
    // Record reachability, reduce, compare.
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) reach[i][j] = h.Leq(i, j);
    }
    ASSERT_TRUE(h.TransitiveReduction().ok());
    EXPECT_TRUE(h.IsTransitivelyReduced());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(h.Leq(i, j), reach[i][j]) << i << "->" << j;
      }
    }
  }
}

TEST(HierarchyTest, AllTermsSorted) {
  Hierarchy h;
  h.EnsureTerm("b");
  h.EnsureTerm("a");
  h.AddNode({"c", "d"});
  auto terms = h.AllTerms();
  std::vector<std::string> expect{"a", "b", "c", "d"};
  EXPECT_EQ(terms, expect);
}

TEST(HierarchyTest, EquivalentToDetectsIsomorphism) {
  Hierarchy h1, h2;
  // Same structure, different insertion order.
  HNodeId a1 = h1.AddNode({"x"});
  HNodeId b1 = h1.AddNode({"y", "z"});
  ASSERT_TRUE(h1.AddEdge(a1, b1).ok());

  HNodeId b2 = h2.AddNode({"z", "y"});
  HNodeId a2 = h2.AddNode({"x"});
  ASSERT_TRUE(h2.AddEdge(a2, b2).ok());

  EXPECT_TRUE(h1.EquivalentTo(h2));

  Hierarchy h3;
  h3.AddNode({"x"});
  h3.AddNode({"y", "z"});
  EXPECT_FALSE(h1.EquivalentTo(h3));  // missing edge
}

TEST(HierarchyTest, OverlappingNodesShareTerms) {
  // Def. 8 allows a term in several nodes; the index must return all.
  Hierarchy h;
  HNodeId n1 = h.AddNode({"a", "b"});
  HNodeId n2 = h.AddNode({"a", "c"});
  auto ids = h.NodesContaining("a");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], n1);
  EXPECT_EQ(ids[1], n2);
}

}  // namespace
}  // namespace toss::ontology
