#include <gtest/gtest.h>

#include <algorithm>

#include "lexicon/lexicon.h"

namespace toss::lexicon {
namespace {

TEST(LexiconTest, SynsetsAndLookup) {
  Lexicon lex;
  SynsetId s = lex.AddSynset({"Paper", "Article"});
  EXPECT_EQ(lex.synset(s).terms[0], "paper");  // lowercased
  EXPECT_TRUE(lex.Knows("paper"));
  EXPECT_TRUE(lex.Knows("ARTICLE"));
  EXPECT_FALSE(lex.Knows("thesis"));
  auto syns = lex.Synonyms("paper");
  ASSERT_EQ(syns.size(), 1u);
  EXPECT_EQ(syns[0], "article");
}

TEST(LexiconTest, IsaAndPartOfEdges) {
  Lexicon lex;
  lex.AddIsaTerms("inproceedings", "paper");
  lex.AddIsaTerms("paper", "publication");
  lex.AddPartOfTerms("author", "paper");

  auto hyp = lex.Hypernyms("inproceedings");
  ASSERT_EQ(hyp.size(), 1u);
  EXPECT_EQ(hyp[0], "paper");
  auto hol = lex.Holonyms("author");
  ASSERT_EQ(hol.size(), 1u);
  EXPECT_EQ(hol[0], "paper");
  EXPECT_TRUE(lex.Hypernyms("publication").empty());
}

TEST(LexiconTest, HypernymClosureIsTransitiveNearestFirst) {
  Lexicon lex;
  lex.AddIsaTerms("a", "b");
  lex.AddIsaTerms("b", "c");
  lex.AddIsaTerms("c", "d");
  auto closure = lex.HypernymClosure("a");
  std::vector<std::string> expect{"b", "c", "d"};
  EXPECT_EQ(closure, expect);
}

TEST(LexiconTest, BadSynsetIdsRejected) {
  Lexicon lex;
  SynsetId s = lex.AddSynset({"x"});
  EXPECT_TRUE(lex.AddIsa(s, 999).IsInvalidArgument());
  EXPECT_TRUE(lex.AddPartOf(999, s).IsInvalidArgument());
}

TEST(BuiltinLexiconTest, CoversPaperExamples) {
  const Lexicon& lex = BuiltinBibliographicLexicon();
  // Introduction: "US Census Bureau" partof "US government" (transitively).
  auto hol = lex.Holonyms("us census bureau");
  ASSERT_FALSE(hol.empty());
  // Introduction: Google isa web search company isa computer company.
  auto hyp = lex.HypernymClosure("google");
  EXPECT_NE(std::find(hyp.begin(), hyp.end(), "web search company"),
            hyp.end());
  EXPECT_NE(std::find(hyp.begin(), hyp.end(), "computer company"),
            hyp.end());
  EXPECT_NE(std::find(hyp.begin(), hyp.end(), "company"), hyp.end());
}

TEST(BuiltinLexiconTest, VenueShortAndFullNamesAreSynonyms) {
  const Lexicon& lex = BuiltinBibliographicLexicon();
  auto syns = lex.Synonyms("SIGMOD Conference");
  ASSERT_EQ(syns.size(), 1u);
  EXPECT_EQ(syns[0],
            "acm sigmod international conference on management of data");
  // And the synset links to the venue taxonomy.
  auto hyp = lex.Hypernyms("sigmod conference");
  ASSERT_EQ(hyp.size(), 1u);
  EXPECT_EQ(hyp[0], "database conference");
  // The full name shares those hypernyms (same synset).
  EXPECT_EQ(lex.Hypernyms(
                "acm sigmod international conference on management of data"),
            hyp);
}

TEST(BuiltinLexiconTest, BibliographicStructureFacts) {
  const Lexicon& lex = BuiltinBibliographicLexicon();
  auto hol = lex.Holonyms("author");
  EXPECT_NE(std::find(hol.begin(), hol.end(), "paper"), hol.end());
  auto hyp = lex.HypernymClosure("inproceedings");
  EXPECT_NE(std::find(hyp.begin(), hyp.end(), "publication"), hyp.end());
}

}  // namespace
}  // namespace toss::lexicon
