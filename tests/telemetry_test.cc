// The always-on telemetry layer (DESIGN.md §15): the flight recorder must
// capture EVERY TossService::Run -- ok, failed, shed, deadline-expired,
// and mutations -- without torn records under concurrent writers; the
// windowed time-series must turn cumulative registry values into interval
// deltas and interpolated percentiles; the slow-query log must capture
// slow and failed requests WITH a rendered trace through a pluggable,
// fault-injectable sink; and TelemetryDump() must round-trip through the
// in-repo JSON parser (it is what tools/tosstop.py consumes).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/json.h"
#include "core/toss.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "service/toss_service.h"
#include "store/database.h"
#include "store/env.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TOSS_TELEMETRY_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TOSS_TELEMETRY_SANITIZED 1
#endif
#endif

namespace toss {
namespace {

namespace fs = std::filesystem;

using obs::FlightRecorder;
using obs::JoinEngine;
using obs::RequestOp;
using obs::RequestRecord;
using obs::SlowQueryLog;
using obs::TimeSeries;

// --- RequestRecord ---------------------------------------------------------

RequestRecord MakeRecord(uint64_t id) {
  RequestRecord rec;
  rec.id = id;
  rec.start_unix_micros = 1700000000000000ull + id;
  rec.queue_wait_ms = 0.25f;
  rec.exec_ms = static_cast<float>(id) * 0.5f;
  rec.candidate_docs = static_cast<uint32_t>(id * 3);
  rec.result_trees = static_cast<uint32_t>(id * 5);
  rec.expanded_terms = static_cast<uint32_t>(id * 7);
  rec.status = static_cast<uint32_t>(id % 14);
  rec.op = static_cast<uint8_t>(RequestOp::kSelect);
  rec.engine = static_cast<uint8_t>(JoinEngine::kNone);
  rec.flags = RequestRecord::kPreparedCacheHit;
  return rec;
}

TEST(RequestRecordTest, JsonIsParseableAndCarriesFields) {
  RequestRecord rec = MakeRecord(42);
  rec.op = static_cast<uint8_t>(RequestOp::kJoin);
  rec.engine = static_cast<uint8_t>(JoinEngine::kTwig);
  rec.flags = RequestRecord::kShed | RequestRecord::kTraceSampled;

  auto doc = common::JsonValue::Parse(rec.Json());
  ASSERT_TRUE(doc.ok()) << doc.status() << " in " << rec.Json();
  EXPECT_EQ(doc->Get("id")->AsDouble(), 42.0);
  EXPECT_EQ(doc->Get("op")->AsString(), "join");
  EXPECT_EQ(doc->Get("engine")->AsString(), "twig");
  EXPECT_EQ(doc->Get("status_code")->AsDouble(), 0.0);
  EXPECT_EQ(doc->Get("candidate_docs")->AsDouble(), 126.0);
  ASSERT_NE(doc->Get("shed"), nullptr);
  EXPECT_TRUE(doc->Get("shed")->AsBool());
  EXPECT_TRUE(doc->Get("trace_sampled")->AsBool());
  EXPECT_FALSE(doc->Get("mutation")->AsBool());
}

// --- FlightRecorder units --------------------------------------------------

TEST(FlightRecorderTest, MintIdIsMonotonicFromOne) {
  FlightRecorder rec;
  uint64_t first = rec.MintId();
  EXPECT_EQ(first, 1u);
  for (uint64_t i = 1; i < 100; ++i) {
    EXPECT_EQ(rec.MintId(), first + i);
  }
}

TEST(FlightRecorderTest, RecordRoundTripsAllFields) {
  FlightRecorder rec;
  RequestRecord in = MakeRecord(rec.MintId());
  rec.Record(in);

  std::vector<RequestRecord> got = rec.SnapshotRecords();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, in.id);
  EXPECT_EQ(got[0].start_unix_micros, in.start_unix_micros);
  EXPECT_FLOAT_EQ(got[0].queue_wait_ms, in.queue_wait_ms);
  EXPECT_FLOAT_EQ(got[0].exec_ms, in.exec_ms);
  EXPECT_EQ(got[0].candidate_docs, in.candidate_docs);
  EXPECT_EQ(got[0].result_trees, in.result_trees);
  EXPECT_EQ(got[0].expanded_terms, in.expanded_terms);
  EXPECT_EQ(got[0].status, in.status);
  EXPECT_EQ(got[0].op, in.op);
  EXPECT_EQ(got[0].engine, in.engine);
  EXPECT_EQ(got[0].flags, in.flags);
  EXPECT_EQ(rec.TotalRecorded(), 1u);
}

TEST(FlightRecorderTest, WrapKeepsNewestAndStaysSorted) {
  FlightRecorder rec;
  const size_t total = FlightRecorder::kCapacity + 257;
  for (size_t i = 0; i < total; ++i) {
    rec.Record(MakeRecord(rec.MintId()));
  }
  EXPECT_EQ(rec.TotalRecorded(), total);

  // A single-threaded writer hashes to ONE shard (the shard index is
  // per-thread), so exactly that shard's slots survive: the newest
  // kSlotsPerShard records, sorted ascending.
  std::vector<RequestRecord> got = rec.SnapshotRecords();
  ASSERT_EQ(got.size(), FlightRecorder::kSlotsPerShard);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].id, got[i].id);
  }
  EXPECT_EQ(got.back().id, static_cast<uint64_t>(total));
  EXPECT_EQ(got.front().id, total - FlightRecorder::kSlotsPerShard + 1);
}

TEST(FlightRecorderTest, SnapshotCapDropsOldest) {
  FlightRecorder rec;
  for (int i = 0; i < 100; ++i) rec.Record(MakeRecord(rec.MintId()));
  std::vector<RequestRecord> got = rec.SnapshotRecords(/*max_records=*/10);
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front().id, 91u);
  EXPECT_EQ(got.back().id, 100u);
}

TEST(FlightRecorderTest, TraceRingEvictsOldest) {
  FlightRecorder rec;
  const size_t total = FlightRecorder::kSampledTraceCapacity + 5;
  for (size_t i = 1; i <= total; ++i) {
    rec.RetainTrace(i, "{\"trace\":" + std::to_string(i) + "}");
  }
  std::vector<obs::SampledTrace> traces = rec.SnapshotTraces();
  ASSERT_EQ(traces.size(), FlightRecorder::kSampledTraceCapacity);
  EXPECT_EQ(traces.front().id, 6u) << "oldest five must have been evicted";
  EXPECT_EQ(traces.back().id, total);
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_LT(traces[i - 1].id, traces[i].id);
  }
}

TEST(FlightRecorderTest, ResetForgetsRecordsButNotIds) {
  FlightRecorder rec;
  rec.Record(MakeRecord(rec.MintId()));
  rec.RetainTrace(1, "{}");
  uint64_t last = rec.MintId();
  rec.Reset();
  EXPECT_TRUE(rec.SnapshotRecords().empty());
  EXPECT_TRUE(rec.SnapshotTraces().empty());
  EXPECT_EQ(rec.TotalRecorded(), 0u);
  EXPECT_GT(rec.MintId(), last) << "ids must keep increasing across Reset";
}

TEST(FlightRecorderTest, JsonRoundTripsThroughParser) {
  FlightRecorder rec;
  for (int i = 0; i < 5; ++i) rec.Record(MakeRecord(rec.MintId()));
  rec.RetainTrace(3, "{\"name\":\"root\"}");

  auto doc = common::JsonValue::Parse(rec.Json());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Get("total_recorded")->AsDouble(), 5.0);
  ASSERT_NE(doc->Get("records"), nullptr);
  EXPECT_EQ(doc->Get("records")->size(), 5u);
  const common::JsonValue* traces = doc->Get("sampled_traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_EQ(traces->size(), 1u);
  EXPECT_EQ(traces->At(0)->Get("id")->AsDouble(), 3.0);
  EXPECT_EQ(traces->At(0)->Get("trace")->Get("name")->AsString(), "root");
}

// Concurrent writers against a spinning reader. Every snapshotted record
// must satisfy the writer's field invariants (fields derived from id):
// a torn slot read would surface as a mismatched derived field. Runs
// under ThreadSanitizer via the service_smoke label.
TEST(FlightRecorderTest, ConcurrentWritersNeverTearRecords) {
  FlightRecorder rec;
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const RequestRecord& r : rec.SnapshotRecords()) {
        if (r.candidate_docs != static_cast<uint32_t>(r.id * 3) ||
            r.result_trees != static_cast<uint32_t>(r.id * 5) ||
            r.expanded_terms != static_cast<uint32_t>(r.id * 7) ||
            r.status != static_cast<uint32_t>(r.id % 14)) {
          inconsistent.fetch_add(1);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        rec.Record(MakeRecord(rec.MintId()));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(inconsistent.load(), 0u) << "seqlock let a torn record through";
  EXPECT_EQ(rec.TotalRecorded(), kWriters * kPerWriter);
  // Threads *probably* spread over distinct shards, but the per-thread
  // hash may collide; at least one full shard's worth must survive.
  std::vector<RequestRecord> final_snap = rec.SnapshotRecords();
  EXPECT_GE(final_snap.size(), FlightRecorder::kSlotsPerShard);
  for (size_t i = 1; i < final_snap.size(); ++i) {
    EXPECT_LT(final_snap[i - 1].id, final_snap[i].id);
  }
}

// --- TimeSeries ------------------------------------------------------------

TEST(TimeSeriesTest, FirstTickOnlyEstablishesBaseline) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, /*capacity=*/8);
  reg.GetCounter("a").Add(10);
  ts.Tick();
  EXPECT_TRUE(ts.GetWindows().empty());

  reg.GetCounter("a").Add(5);
  ts.Tick();
  std::vector<TimeSeries::Window> w = ts.GetWindows();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].seq, 1u);
  ASSERT_EQ(w[0].counter_deltas.count("a"), 1u);
  EXPECT_EQ(w[0].counter_deltas.at("a"), 5u)
      << "the window must carry the delta, not the cumulative value";
}

TEST(TimeSeriesTest, WindowsCarryGaugesAndHistogramDeltas) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, 8);
  ts.Tick();

  reg.GetCounter("reqs").Add(20);
  reg.GetGauge("depth").Set(42);
  reg.GetHistogram("lat_ns").Record(700000);  // bucket 12: (512us, 1.05ms]
  reg.GetHistogram("lat_ns").Record(900000);
  ts.Tick();

  std::vector<TimeSeries::Window> w = ts.GetWindows();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].gauges.at("depth"), 42);
  ASSERT_EQ(w[0].histogram_deltas.count("lat_ns"), 1u);
  const obs::Histogram::Snapshot& h = w[0].histogram_deltas.at("lat_ns");
  EXPECT_EQ(h.count, 2u);
  double p50 = h.PercentileMillis(0.5);
  EXPECT_GT(p50, 0.512);
  EXPECT_LE(p50, 1.049);
  EXPECT_GT(w[0].RatePerSecond("reqs"), 0.0);
  EXPECT_GT(w[0].duration_ms, 0u);

  // Zero-delta instruments are omitted from later windows.
  ts.Tick();
  w = ts.GetWindows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1].counter_deltas.count("reqs"), 0u);
  EXPECT_EQ(w[1].histogram_deltas.count("lat_ns"), 0u);
}

TEST(TimeSeriesTest, RegistryResetDegradesToEmptyWindow) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, 8);
  reg.GetCounter("a").Add(100);
  reg.GetHistogram("h").Record(1000);
  ts.Tick();
  reg.Reset();
  reg.GetCounter("a").Add(1);
  ts.Tick();  // cumulative value went 100 -> 1: clamp, don't underflow

  std::vector<TimeSeries::Window> w = ts.GetWindows();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].counter_deltas.count("a"), 0u)
      << "clamped-to-zero delta must be omitted, not wrapped";
  EXPECT_EQ(w[0].histogram_deltas.count("h"), 0u);
}

TEST(TimeSeriesTest, CapacityEvictsOldestWindows) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, /*capacity=*/3);
  ts.Tick();
  for (int i = 0; i < 5; ++i) {
    reg.GetCounter("a").Increment();
    ts.Tick();
  }
  std::vector<TimeSeries::Window> w = ts.GetWindows();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].seq, 3u);
  EXPECT_EQ(w[2].seq, 5u);

  std::vector<TimeSeries::Window> newest = ts.GetWindows(/*max_windows=*/1);
  ASSERT_EQ(newest.size(), 1u);
  EXPECT_EQ(newest[0].seq, 5u);
}

TEST(TimeSeriesTest, WindowedPercentileMergesRecentWindows) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, 8);
  ts.Tick();
  // Window 1: 95 fast samples. Window 2: 5 slow ones. Merged across both
  // windows the p99 must land in the slow bucket (8.39ms, 16.78ms].
  for (int i = 0; i < 95; ++i) reg.GetHistogram("h").Record(700000);
  ts.Tick();
  for (int i = 0; i < 5; ++i) reg.GetHistogram("h").Record(10000000);
  ts.Tick();

  double p99 = ts.WindowedPercentileMillis("h", 0.99, /*last_n_windows=*/2);
  EXPECT_GT(p99, 8.388);
  EXPECT_LE(p99, 16.778);
  // Only the newest window: all five samples are slow, so p50 is slow too.
  double p50_newest = ts.WindowedPercentileMillis("h", 0.5, 1);
  EXPECT_GT(p50_newest, 8.388);
  EXPECT_EQ(ts.WindowedPercentileMillis("absent", 0.99, 2), 0.0);
}

TEST(TimeSeriesTest, JsonRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, 8);
  ts.Tick();
  reg.GetCounter("a").Add(3);
  reg.GetHistogram("h").Record(700000);
  ts.Tick();

  auto doc = common::JsonValue::Parse(ts.Json());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_GT(doc->Get("interval_ms")->AsDouble(), 0.0);
  const common::JsonValue* windows = doc->Get("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->size(), 1u);
  const common::JsonValue* w0 = windows->At(0);
  EXPECT_EQ(w0->Get("counters")->Get("a")->Get("delta")->AsDouble(), 3.0);
  const common::JsonValue* h = w0->Get("histograms")->Get("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Get("count")->AsDouble(), 1.0);
  EXPECT_EQ(h->Get("buckets")->size(), obs::Histogram::kBuckets);
}

// Background ticker vs. manual ticks vs. readers; runs under TSan via the
// service_smoke label. Start/Stop are also checked for idempotence.
TEST(TimeSeriesTest, TickerRunsAndSurvivesConcurrentReaders) {
  obs::MetricsRegistry reg;
  TimeSeries ts(&reg, 64);
  ts.Start(std::chrono::milliseconds(1));
  ts.Start(std::chrono::milliseconds(1));  // idempotent
  EXPECT_TRUE(ts.running());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) {
      reg.GetCounter("ticker.reqs").Increment();
      reg.GetHistogram("ticker.lat").Record(500000);
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      ts.GetWindows(4);
      ts.WindowedPercentileMillis("ticker.lat", 0.99, 4);
      ts.Json(2);
      std::this_thread::yield();
    }
  });

  // Wait (bounded) until the ticker has produced a few windows.
  for (int i = 0; i < 2000 && ts.GetWindows().size() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ts.GetWindows().size(), 3u);
  stop.store(true);
  mutator.join();
  reader.join();
  ts.Stop();
  ts.Stop();  // idempotent
  EXPECT_FALSE(ts.running());
  EXPECT_GE(ts.GetWindows().size(), 3u) << "windows must survive Stop";
}

// --- SlowQueryLog ----------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdAndErrorPolicy) {
  std::vector<std::string> lines;
  SlowQueryLog::Options opts;
  opts.slow_threshold_ms = 10.0;
  opts.log_errors = true;
  SlowQueryLog log([&](const std::string& l) { lines.push_back(l); return true; },
                   opts);

  RequestRecord fast_ok = MakeRecord(1);
  fast_ok.exec_ms = 5.0f;
  fast_ok.status = 0;
  EXPECT_FALSE(log.ShouldLog(fast_ok));

  RequestRecord slow_ok = MakeRecord(2);
  slow_ok.exec_ms = 15.0f;
  slow_ok.status = 0;
  EXPECT_TRUE(log.ShouldLog(slow_ok));

  RequestRecord fast_failed = MakeRecord(3);
  fast_failed.exec_ms = 0.1f;
  fast_failed.status = static_cast<uint32_t>(StatusCode::kNotFound);
  EXPECT_TRUE(log.ShouldLog(fast_failed));

  SlowQueryLog::Options quiet = opts;
  quiet.log_errors = false;
  SlowQueryLog no_errors([&](const std::string&) { return true; }, quiet);
  EXPECT_FALSE(no_errors.ShouldLog(fast_failed));

  SlowQueryLog::Options all = opts;
  all.slow_threshold_ms = 0.0;  // <= 0 logs everything
  SlowQueryLog log_all([&](const std::string&) { return true; }, all);
  EXPECT_TRUE(log_all.ShouldLog(fast_ok));
}

TEST(SlowQueryLogTest, LogRendersParseableLineWithTraceAndStats) {
  std::vector<std::string> lines;
  SlowQueryLog log([&](const std::string& l) { lines.push_back(l); return true; },
                   {});
  RequestRecord rec = MakeRecord(7);
  rec.status = static_cast<uint32_t>(StatusCode::kNotFound);
  log.Log(rec, "NotFound: no such collection \"x\"",
          "{\"name\":\"select\",\"children\":[]}");
  log.Log(rec, "NotFound", "");  // no trace -> null

  ASSERT_EQ(lines.size(), 2u);
  auto doc = common::JsonValue::Parse(lines[0]);
  ASSERT_TRUE(doc.ok()) << doc.status() << " in " << lines[0];
  EXPECT_EQ(doc->Get("record")->Get("id")->AsDouble(), 7.0);
  EXPECT_EQ(doc->Get("status")->AsString(),
            "NotFound: no such collection \"x\"");
  EXPECT_EQ(doc->Get("trace")->Get("name")->AsString(), "select");

  auto doc2 = common::JsonValue::Parse(lines[1]);
  ASSERT_TRUE(doc2.ok()) << doc2.status();
  EXPECT_TRUE(doc2->Get("trace")->is_null());

  SlowQueryLog::Stats stats = log.GetStats();
  EXPECT_EQ(stats.written, 2u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(SlowQueryLogTest, SinkFailureCountsAsDropped) {
  int calls = 0;
  SlowQueryLog log([&](const std::string&) { return ++calls > 1; }, {});
  log.Log(MakeRecord(1), "ok", "");  // first write fails
  log.Log(MakeRecord(2), "ok", "");
  SlowQueryLog::Stats stats = log.GetStats();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.written, 1u);
}

TEST(SlowQueryLogTest, EnvAppendLineSinkWritesAndSurvivesFaults) {
  std::string path =
      (fs::temp_directory_path() / "toss_slow_log_sink.jsonl").string();
  fs::remove(path);
  obs::LineSink sink = service::EnvAppendLineSink(store::Env::Default(), path);
  ASSERT_TRUE(sink("{\"a\":1}"));
  ASSERT_TRUE(sink("{\"b\":2}"));
  auto text = store::Env::Default()->ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "{\"a\":1}\n{\"b\":2}\n");
  fs::remove(path);

  // Through a fault-injected Env the sink reports failure (and the log
  // counts a drop) instead of surfacing an error into the request path.
  store::FaultInjectionEnv::Options fopts;
  fopts.fail_at_op = 0;
  fopts.kind = store::FaultInjectionEnv::FaultKind::kNoSpace;
  store::FaultInjectionEnv fenv(store::Env::Default(), fopts);
  SlowQueryLog log(service::EnvAppendLineSink(&fenv, path), {});
  log.Log(MakeRecord(1), "ok", "");
  EXPECT_EQ(log.GetStats().dropped, 1u);
  EXPECT_EQ(log.GetStats().written, 0u);
  fs::remove(path);
}

// --- Service integration ---------------------------------------------------

class TelemetryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto lib = db_.CreateCollection("lib");
    ASSERT_TRUE(lib.ok()) << lib.status();
    for (int i = 0; i < 8; ++i) {
      std::string xml = "<book><title>t" + std::to_string(i) +
                        "</title><year>199" + std::to_string(i % 3) +
                        "</year></book>";
      auto id = (*lib)->InsertXml("k" + std::to_string(i), xml);
      ASSERT_TRUE(id.ok()) << id.status();
    }
  }

  static tax::PatternTree TitlePattern() {
    tax::PatternTree pt;
    int root = pt.AddRoot();
    pt.AddChild(root, tax::EdgeKind::kPc);
    pt.SetCondition(
        tax::ParseCondition("$1.tag = \"book\" & $2.tag = \"title\"").value());
    return pt;
  }

  static const RequestRecord* FindByStatus(
      const std::vector<RequestRecord>& records, StatusCode code) {
    for (const RequestRecord& r : records) {
      if (r.status == static_cast<uint32_t>(code)) return &r;
    }
    return nullptr;
  }

  store::Database db_;
};

TEST_F(TelemetryServiceTest, EveryRunOutcomeLandsInTheRecorder) {
  auto recorder = std::make_unique<FlightRecorder>();
  service::ServiceOptions opts;
  opts.flight_recorder = recorder.get();
  opts.trace_sample_every = 1;  // retain a trace for every request
  service::TossService svc(&db_, nullptr, nullptr, opts);

  // ok
  service::QueryResponse ok_resp =
      svc.Run(service::QueryRequest::Select("lib", TitlePattern(), {1}));
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.status;
  EXPECT_GT(ok_resp.trees.size(), 0u);
  // failed: collection does not exist
  service::QueryResponse nf_resp =
      svc.Run(service::QueryRequest::Select("nope", TitlePattern(), {1}));
  EXPECT_TRUE(nf_resp.status.IsNotFound()) << nf_resp.status;
  // deadline: an already-expired token fails before any work
  CancelToken expired = CancelToken::AfterMillis(0);
  service::QueryRequest dl_req =
      service::QueryRequest::Select("lib", TitlePattern(), {1});
  dl_req.cancel = &expired;
  EXPECT_TRUE(svc.Run(dl_req).status.IsDeadlineExceeded());
  // cancelled
  CancelToken cancelled;
  cancelled.Cancel();
  service::QueryRequest c_req =
      service::QueryRequest::Select("lib", TitlePattern(), {1});
  c_req.cancel = &cancelled;
  EXPECT_TRUE(svc.Run(c_req).status.IsCancelled());

  std::vector<RequestRecord> records = recorder->SnapshotRecords();
  ASSERT_EQ(records.size(), 4u) << "every Run must append exactly one record";
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].id, records[i].id);
  }
  for (const RequestRecord& r : records) {
    EXPECT_EQ(r.op, static_cast<uint8_t>(RequestOp::kSelect));
    EXPECT_GT(r.start_unix_micros, 0u);
    EXPECT_FALSE(r.HasFlag(RequestRecord::kMutation));
  }
  const RequestRecord* ok_rec = FindByStatus(records, StatusCode::kOk);
  ASSERT_NE(ok_rec, nullptr);
  EXPECT_EQ(ok_rec->result_trees, ok_resp.trees.size());
  EXPECT_NE(FindByStatus(records, StatusCode::kNotFound), nullptr);
  EXPECT_NE(FindByStatus(records, StatusCode::kDeadlineExceeded), nullptr);
  EXPECT_NE(FindByStatus(records, StatusCode::kCancelled), nullptr);

  // trace_sample_every=1: the successful request retained a full trace even
  // though the caller never set collect_trace...
  std::vector<obs::SampledTrace> traces = recorder->SnapshotTraces();
  ASSERT_GE(traces.size(), 1u);
  bool found = false;
  for (const obs::SampledTrace& t : traces) {
    if (t.id != ok_rec->id) continue;
    found = true;
    auto doc = common::JsonValue::Parse(t.trace_json);
    EXPECT_TRUE(doc.ok()) << doc.status();
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(ok_rec->HasFlag(RequestRecord::kTraceSampled));
  // ...and the response itself was NOT burdened with the telemetry trace.
  EXPECT_EQ(ok_resp.trace, nullptr);
}

TEST_F(TelemetryServiceTest, ShedRequestsAreRecordedWithTheShedFlag) {
  auto recorder = std::make_unique<FlightRecorder>();
  service::ServiceOptions opts;
  opts.flight_recorder = recorder.get();
  opts.max_inflight = 1;
  opts.max_queue = 0;
  service::TossService svc(&db_, nullptr, nullptr, opts);

  // Two clients race for one slot with no queue: any overlap sheds the
  // loser. Loop (bounded) until one shed has been observed.
  std::atomic<bool> shed_seen{false};
  auto client = [&] {
    for (int i = 0; i < 20000 && !shed_seen.load(); ++i) {
      service::QueryResponse r =
          svc.Run(service::QueryRequest::Select("lib", TitlePattern(), {1}));
      if (r.status.IsResourceExhausted()) shed_seen.store(true);
    }
  };
  std::thread a(client), b(client);
  a.join();
  b.join();
  ASSERT_TRUE(shed_seen.load());

  std::vector<RequestRecord> records = recorder->SnapshotRecords();
  const RequestRecord* shed =
      FindByStatus(records, StatusCode::kResourceExhausted);
  ASSERT_NE(shed, nullptr) << "shed requests must still be recorded";
  EXPECT_TRUE(shed->HasFlag(RequestRecord::kShed));
  EXPECT_EQ(shed->exec_ms, 0.0f) << "a shed request never executed";
}

TEST_F(TelemetryServiceTest, MutationsAreRecordedWithTheMutationFlag) {
  std::string dir = (fs::temp_directory_path() / "toss_telemetry_mut").string();
  fs::remove_all(dir);
  auto db = store::Database::OpenDurable(dir, store::Env::Default());
  ASSERT_TRUE(db.ok()) << db.status();

  auto recorder = std::make_unique<FlightRecorder>();
  service::ServiceOptions opts;
  opts.flight_recorder = recorder.get();
  service::TossService svc(&*db, nullptr, nullptr, opts);

  ASSERT_TRUE(
      svc.Run(service::QueryRequest::Insert("lib", "a", "<b><t>x</t></b>"))
          .ok());
  ASSERT_TRUE(
      svc.Run(service::QueryRequest::Replace("lib", "a", "<b><t>y</t></b>"))
          .ok());
  ASSERT_TRUE(svc.Run(service::QueryRequest::Remove("lib", "a")).ok());
  // Failed mutation: replacing a key that no longer exists.
  EXPECT_TRUE(svc.Run(service::QueryRequest::Replace("lib", "a", "<b/>"))
                  .status.IsNotFound());

  std::vector<RequestRecord> records = recorder->SnapshotRecords();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].op, static_cast<uint8_t>(RequestOp::kInsert));
  EXPECT_EQ(records[1].op, static_cast<uint8_t>(RequestOp::kReplace));
  EXPECT_EQ(records[2].op, static_cast<uint8_t>(RequestOp::kRemove));
  EXPECT_EQ(records[3].op, static_cast<uint8_t>(RequestOp::kReplace));
  for (const RequestRecord& r : records) {
    EXPECT_TRUE(r.HasFlag(RequestRecord::kMutation));
  }
  EXPECT_EQ(records[3].status, static_cast<uint32_t>(StatusCode::kNotFound));
  fs::remove_all(dir);
}

TEST_F(TelemetryServiceTest, SlowAndFailedRequestsLandInSlowLogWithTrace) {
  std::vector<std::string> lines;
  SlowQueryLog::Options log_opts;
  log_opts.slow_threshold_ms = 0.0;  // every request is "slow": exercise the
                                     // write path without a slow fixture
  SlowQueryLog slow_log(
      [&](const std::string& l) { lines.push_back(l); return true; },
      log_opts);

  auto recorder = std::make_unique<FlightRecorder>();
  service::ServiceOptions opts;
  opts.flight_recorder = recorder.get();
  opts.trace_sample_every = 0;  // traces below come from the slow log alone
  opts.slow_log = &slow_log;
  service::TossService svc(&db_, nullptr, nullptr, opts);

  service::QueryResponse ok_resp =
      svc.Run(service::QueryRequest::Select("lib", TitlePattern(), {1}));
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.status;
  service::QueryResponse failed =
      svc.Run(service::QueryRequest::Select("nope", TitlePattern(), {1}));
  ASSERT_TRUE(failed.status.IsNotFound());

  ASSERT_EQ(lines.size(), 2u);
  // The slow (ok) request: record + rendered trace, parseable.
  auto slow_doc = common::JsonValue::Parse(lines[0]);
  ASSERT_TRUE(slow_doc.ok()) << slow_doc.status() << " in " << lines[0];
  const common::JsonValue* rec0 = slow_doc->Get("record");
  ASSERT_NE(rec0, nullptr);
  EXPECT_EQ(rec0->Get("status_code")->AsDouble(), 0.0);
  EXPECT_EQ(rec0->Get("op")->AsString(), "select");
  const common::JsonValue* trace0 = slow_doc->Get("trace");
  ASSERT_NE(trace0, nullptr);
  EXPECT_FALSE(trace0->is_null())
      << "slow-log entries must carry a rendered trace";
  EXPECT_TRUE(trace0->is_object());
  // The failed request: error status text plus its own trace.
  auto fail_doc = common::JsonValue::Parse(lines[1]);
  ASSERT_TRUE(fail_doc.ok()) << fail_doc.status() << " in " << lines[1];
  EXPECT_EQ(fail_doc->Get("record")->Get("status_code")->AsDouble(),
            static_cast<double>(StatusCode::kNotFound));
  EXPECT_NE(fail_doc->Get("status")->AsString().find("NotFound"),
            std::string::npos)
      << fail_doc->Get("status")->AsString();

  EXPECT_EQ(slow_log.GetStats().written, 2u);
  // The telemetry trace never leaks into the response.
  EXPECT_EQ(ok_resp.trace, nullptr);

  // A high threshold with log_errors stops logging ok requests but keeps
  // logging failures.
  lines.clear();
  SlowQueryLog quiet_log(
      [&](const std::string& l) { lines.push_back(l); return true; },
      {/*slow_threshold_ms=*/1e9, /*log_errors=*/true});
  service::ServiceOptions opts2 = opts;
  opts2.slow_log = &quiet_log;
  service::TossService svc2(&db_, nullptr, nullptr, opts2);
  ASSERT_TRUE(
      svc2.Run(service::QueryRequest::Select("lib", TitlePattern(), {1})).ok());
  EXPECT_TRUE(svc2.Run(service::QueryRequest::Select("nope", TitlePattern(),
                                                     {1}))
                  .status.IsNotFound());
  ASSERT_EQ(lines.size(), 1u) << "only the failure should be logged";
  auto only = common::JsonValue::Parse(lines[0]);
  ASSERT_TRUE(only.ok());
  EXPECT_EQ(only->Get("record")->Get("status_code")->AsDouble(),
            static_cast<double>(StatusCode::kNotFound));
}

TEST_F(TelemetryServiceTest, CollectTraceStillReachesTheCaller) {
  // The telemetry plumbing (sampling + slow log) must not break the
  // explicit EXPLAIN ANALYZE path: collect_trace still returns the trace.
  SlowQueryLog slow_log([](const std::string&) { return true; }, {});
  auto recorder = std::make_unique<FlightRecorder>();
  service::ServiceOptions opts;
  opts.flight_recorder = recorder.get();
  opts.trace_sample_every = 1;
  opts.slow_log = &slow_log;
  service::TossService svc(&db_, nullptr, nullptr, opts);

  service::QueryRequest req =
      service::QueryRequest::Select("lib", TitlePattern(), {1});
  req.collect_trace = true;
  service::QueryResponse resp = svc.Run(req);
  ASSERT_TRUE(resp.ok()) << resp.status;
  ASSERT_NE(resp.trace, nullptr);
}

// --- TelemetryDump ---------------------------------------------------------

TEST(TelemetryDumpTest, DumpRoundTripsThroughParser) {
  obs::Telemetry& tel = obs::Telemetry::Global();
  // Give the dump something to show: registry activity bracketed by two
  // manual ticks (no background ticker needed), plus one recorded request.
  tel.series().Tick();
  obs::Metrics().GetCounter("telemetry_test.reqs").Add(9);
  obs::Metrics().GetHistogram("telemetry_test.lat").Record(700000);
  tel.series().Tick();
  RequestRecord rec = MakeRecord(tel.recorder().MintId());
  tel.recorder().Record(rec);

  std::string dump = obs::TelemetryDump();
  auto doc = common::JsonValue::Parse(dump);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_GT(doc->Get("ts_unix_ms")->AsDouble(), 0.0);
  ASSERT_NE(doc->Get("build"), nullptr);
  EXPECT_FALSE(doc->Get("build")->Get("project")->AsString().empty());

  // Cumulative metrics are present with raw buckets (what tosstop diffs).
  const common::JsonValue* metrics = doc->Get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->Get("counters")->Get("telemetry_test.reqs")->AsDouble(),
            9.0);
  const common::JsonValue* hist =
      metrics->Get("histograms")->Get("telemetry_test.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Get("buckets")->size(), obs::Histogram::kBuckets);

  // The windowed series recovered the interval delta.
  const common::JsonValue* windows = doc->Get("timeseries")->Get("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_GE(windows->size(), 1u);
  bool delta_seen = false;
  for (size_t i = 0; i < windows->size(); ++i) {
    const common::JsonValue* c =
        windows->At(i)->Get("counters")->Get("telemetry_test.reqs");
    if (c != nullptr && c->Get("delta")->AsDouble() == 9.0) delta_seen = true;
  }
  EXPECT_TRUE(delta_seen);

  // The flight recorder's recent records ride along.
  const common::JsonValue* fr = doc->Get("flight_recorder");
  ASSERT_NE(fr, nullptr);
  ASSERT_GE(fr->Get("records")->size(), 1u);
  bool rec_seen = false;
  for (size_t i = 0; i < fr->Get("records")->size(); ++i) {
    if (fr->Get("records")->At(i)->Get("id")->AsDouble() ==
        static_cast<double>(rec.id)) {
      rec_seen = true;
    }
  }
  EXPECT_TRUE(rec_seen);
}

TEST(TelemetryDumpTest, WriteDumpProducesReadableFile) {
  std::string path =
      (fs::temp_directory_path() / "toss_telemetry_dump.json").string();
  fs::remove(path);
  ASSERT_TRUE(obs::Telemetry::Global().WriteDump(path));
  auto text = store::Env::Default()->ReadFile(path);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->back(), '\n');
  auto doc = common::JsonValue::Parse(*text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_NE(doc->Get("metrics"), nullptr);
  fs::remove(path);
  EXPECT_FALSE(obs::Telemetry::Global().WriteDump("/nonexistent-dir/x.json"));
}

// A fatal signal spills a best-effort dump before the process dies. Runs in
// a forked child so the death is contained; skipped under sanitizers, whose
// own signal handlers and allocator interceptors own this territory.
#if !defined(TOSS_TELEMETRY_SANITIZED)
TEST(TelemetryDumpTest, CrashHandlerWritesDumpOnFatalSignal) {
  std::string path =
      (fs::temp_directory_path() / "toss_crash_dump.json").string();
  fs::remove(path);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record some state, install the handler, die on SIGSEGV.
    obs::Metrics().GetCounter("crash_test.marker").Add(123);
    obs::FlightRecorder::Global().Record(
        MakeRecord(obs::FlightRecorder::Global().MintId()));
    if (!obs::InstallCrashDump(path)) _exit(10);
    raise(SIGSEGV);
    _exit(11);  // unreachable
  }

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child must die from the re-raised signal, not exit cleanly";
  EXPECT_EQ(WTERMSIG(wstatus), SIGSEGV);

  auto text = store::Env::Default()->ReadFile(path);
  ASSERT_TRUE(text.ok()) << "crash handler left no dump: " << text.status();
  auto doc = common::JsonValue::Parse(*text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(
      doc->Get("metrics")->Get("counters")->Get("crash_test.marker")
          ->AsDouble(),
      123.0);
  fs::remove(path);
}
#endif  // !TOSS_TELEMETRY_SANITIZED

}  // namespace
}  // namespace toss
