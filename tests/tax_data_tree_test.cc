#include <gtest/gtest.h>

#include "tax/data_tree.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::tax {
namespace {

DataTree SamplePaper() {
  DataTree t;
  NodeId root = t.CreateRoot("inproceedings");
  t.AppendChild(root, "author", "Jeffrey Ullman");
  t.AppendChild(root, "title", "A Paper");
  t.AppendChild(root, "year", "1999");
  return t;
}

TEST(DataTreeTest, BuildAndInspect) {
  DataTree t = SamplePaper();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.node(t.root()).tag, "inproceedings");
  EXPECT_EQ(t.node(1).content, "Jeffrey Ullman");
  EXPECT_EQ(t.node(1).parent, t.root());
  EXPECT_EQ(t.node(t.root()).children.size(), 3u);
  EXPECT_TRUE(t.IsAncestor(t.root(), 2));
  EXPECT_FALSE(t.IsAncestor(2, t.root()));
  EXPECT_EQ(t.node(0).tag_type, kStringType);
}

TEST(DataTreeTest, DescendantsPreorder) {
  DataTree t;
  NodeId root = t.CreateRoot("a");
  NodeId b = t.AppendChild(root, "b");
  NodeId c = t.AppendChild(b, "c");
  NodeId d = t.AppendChild(root, "d");
  auto desc = t.Descendants(root);
  ASSERT_EQ(desc.size(), 3u);
  EXPECT_EQ(desc[0], b);
  EXPECT_EQ(desc[1], c);
  EXPECT_EQ(desc[2], d);
  EXPECT_TRUE(t.Descendants(c).empty());
}

TEST(DataTreeTest, CopySubtreeCarriesTypesAndProvenance) {
  DataTree src = SamplePaper();
  src.node(1).provenance = 1001;
  src.node(1).content_type = "person";
  DataTree dst;
  dst.CopySubtree(src, src.root(), kInvalidNode);
  EXPECT_TRUE(dst.Equals(src));
  EXPECT_EQ(dst.node(1).provenance, 1001u);
  EXPECT_EQ(dst.node(1).content_type, "person");
}

TEST(DataTreeTest, XmlRoundTrip) {
  auto parsed = xml::Parse(
      "<inproceedings gtid=\"10007\">"
      "<author gtid=\"1003\">J. Ullman</author>"
      "<title>Mixed <i>inline</i> text</title>"
      "</inproceedings>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  DataTree t = DataTree::FromXml(*parsed, parsed->root());
  EXPECT_EQ(t.node(t.root()).provenance, 10007u);
  EXPECT_EQ(t.node(1).tag, "author");
  EXPECT_EQ(t.node(1).provenance, 1003u);
  EXPECT_EQ(t.node(1).content, "J. Ullman");
  // Element children under <title> become child nodes; direct text stays
  // as content.
  NodeId title = 2;
  EXPECT_EQ(t.node(title).tag, "title");
  EXPECT_EQ(t.node(title).content, "Mixed  text");
  ASSERT_EQ(t.node(title).children.size(), 1u);
  EXPECT_EQ(t.node(t.node(title).children[0]).tag, "i");

  // Back to XML: provenance becomes gtid again.
  xml::XmlDocument out = t.ToXml();
  EXPECT_EQ(out.Attribute(out.root(), "gtid"), "10007");
  DataTree again = DataTree::FromXml(out, out.root());
  EXPECT_TRUE(again.Equals(t));
}

TEST(DataTreeTest, EqualsIsOrderSensitive) {
  DataTree a, b;
  NodeId ra = a.CreateRoot("r");
  a.AppendChild(ra, "x", "1");
  a.AppendChild(ra, "y", "2");
  NodeId rb = b.CreateRoot("r");
  b.AppendChild(rb, "y", "2");
  b.AppendChild(rb, "x", "1");
  EXPECT_FALSE(a.Equals(b));  // sibling order matters (ordered trees)
}

TEST(DataTreeTest, EqualsComparesContentAndTypes) {
  DataTree a = SamplePaper();
  DataTree b = SamplePaper();
  EXPECT_TRUE(a.Equals(b));
  b.node(3).content = "2000";
  EXPECT_FALSE(a.Equals(b));
  DataTree c = SamplePaper();
  c.node(3).content_type = "year";
  EXPECT_FALSE(a.Equals(c));  // value-based atoms see types
}

TEST(DataTreeTest, CanonicalKeyInjective) {
  // The classic collision shapes: nesting vs siblings, and field bleed.
  DataTree a, b;
  NodeId ra = a.CreateRoot("r");
  NodeId x = a.AppendChild(ra, "x");
  a.AppendChild(x, "y");
  NodeId rb = b.CreateRoot("r");
  b.AppendChild(rb, "x");
  b.AppendChild(rb, "y");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());

  DataTree c, d;
  c.CreateRoot("ab", "c");
  d.CreateRoot("a", "bc");
  EXPECT_NE(c.CanonicalKey(), d.CanonicalKey());
}

TEST(DataTreeTest, TotalNodes) {
  TreeCollection coll;
  coll.push_back(SamplePaper());
  coll.push_back(SamplePaper());
  EXPECT_EQ(TotalNodes(coll), 8u);
  EXPECT_EQ(TotalNodes({}), 0u);
}

}  // namespace
}  // namespace toss::tax
