#include <gtest/gtest.h>

#include "core/query_language.h"
#include "core/toss.h"
#include "eval/metrics.h"

namespace toss::core {
namespace {

class QueryLanguageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dblp = db_.CreateCollection("dblp");
    ASSERT_TRUE(dblp.ok());
    ASSERT_TRUE((*dblp)
                    ->InsertXml("p1",
                                "<inproceedings gtid=\"10001\">"
                                "<author>Jeffrey Ullman</author>"
                                "<title>Views</title>"
                                "<booktitle>SIGMOD Conference</booktitle>"
                                "</inproceedings>")
                    .ok());
    ASSERT_TRUE((*dblp)
                    ->InsertXml("p2",
                                "<inproceedings gtid=\"10002\">"
                                "<author>Jeffrey D. Ullman</author>"
                                "<title>Views.</title>"
                                "<booktitle>VLDB</booktitle>"
                                "</inproceedings>")
                    .ok());
    auto sigmod = db_.CreateCollection("sigmod");
    ASSERT_TRUE(sigmod.ok());
    ASSERT_TRUE((*sigmod)
                    ->InsertXml("page",
                                "<proceedingsPage><articles>"
                                "<article gtid=\"10001\"><title>Views</title>"
                                "</article></articles></proceedingsPage>")
                    .ok());

    ontology::OntologyMakerOptions opts;
    opts.content_tags = {"author", "booktitle"};
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*dblp)->AllDocs()) {
      docs.push_back(&(*dblp)->document(id));
    }
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok());
    SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("levenshtein"));
    b.SetEpsilon(3.0);
    auto seo = b.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = MakeBibliographicTypeSystem();
    exec_ = std::make_unique<QueryExecutor>(&db_, &seo_, &types_);
  }

  store::Database db_;
  Seo seo_;
  TypeSystem types_;
  std::unique_ptr<QueryExecutor> exec_;
};

TEST_F(QueryLanguageTest, ParseSelect) {
  auto q = ParseQuery(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE $1.tag = \"inproceedings\" & "
      "$2.tag = \"author\"");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kSelect);
  EXPECT_EQ(q->collection, "dblp");
  EXPECT_EQ(q->sl, std::vector<int>{1});
  EXPECT_EQ(q->pattern.node_count(), 2u);
}

TEST_F(QueryLanguageTest, ParseProjectWithSubtreeMarker) {
  auto q = ParseQuery(
      "PROJECT $2*, $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"author\"");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kProject);
  ASSERT_EQ(q->pl.size(), 2u);
  EXPECT_TRUE(q->pl[0].keep_subtree);
  EXPECT_FALSE(q->pl[1].keep_subtree);
}

TEST_F(QueryLanguageTest, ParseJoin) {
  auto q = ParseQuery(
      "JOIN dblp, sigmod MATCH $1/$2, $2/$3, $1//$4, $4/$5 "
      "WHERE $1.tag = \"tax_prod_root\" & $2.tag = \"inproceedings\" & "
      "$3.tag = \"title\" & $4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content SELECT $2, $4");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kJoin);
  EXPECT_EQ(q->collection, "dblp");
  EXPECT_EQ(q->right_collection, "sigmod");
  EXPECT_EQ(q->sl, (std::vector<int>{2, 4}));
  EXPECT_EQ(q->pattern.node_count(), 5u);
}

TEST_F(QueryLanguageTest, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery(
      "select $1 from dblp match $1/$2 where $1.tag = \"inproceedings\" & "
      "$2.tag = \"author\"");
  EXPECT_TRUE(q.ok()) << q.status();
}

TEST_F(QueryLanguageTest, SelectInsideLiteralDoesNotEndWhere) {
  auto q = ParseQuery(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE $1.tag = \"inproceedings\" & "
      "$2.content = \"SELECT title\"");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST_F(QueryLanguageTest, ParseErrors) {
  // Missing FROM.
  EXPECT_FALSE(ParseQuery("SELECT $1 dblp MATCH $1/$2 WHERE true").ok());
  // Out-of-order labels.
  EXPECT_FALSE(
      ParseQuery("SELECT $1 FROM d MATCH $1/$3 WHERE true").ok());
  // Edge from undeclared parent.
  EXPECT_FALSE(
      ParseQuery("SELECT $1 FROM d MATCH $5/$2 WHERE true").ok());
  // SL label not in pattern.
  EXPECT_FALSE(
      ParseQuery("SELECT $9 FROM d MATCH $1/$2 WHERE true").ok());
  // Join without trailing SELECT.
  EXPECT_FALSE(
      ParseQuery("JOIN a, b MATCH $1/$2, $1/$3 WHERE true").ok());
  // Join with single root subtree.
  EXPECT_FALSE(
      ParseQuery("JOIN a, b MATCH $1/$2 WHERE true SELECT $1").ok());
  // Bad condition.
  EXPECT_FALSE(
      ParseQuery("SELECT $1 FROM d MATCH $1/$2 WHERE $1.tag =").ok());
  // Trailing junk.
  EXPECT_FALSE(
      ParseQuery("SELECT $1 FROM d MATCH $1/$2 WHERE true garbage$").ok());
  // Empty.
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST_F(QueryLanguageTest, ExecuteSelect) {
  auto r = RunQuery(
      *exec_,
      "SELECT $1 FROM dblp MATCH $1/$2, $1/$3 "
      "WHERE $1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$3.tag = \"booktitle\" & $2.content ~ \"Jeffrey Ullman\" & "
      "$3.content isa \"database conference\"");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(eval::ExtractRootProvenance(*r),
            (std::set<uint64_t>{10001, 10002}));
}

TEST_F(QueryLanguageTest, ExecuteProject) {
  auto r = RunQuery(*exec_,
                    "PROJECT $2 FROM dblp MATCH $1/$2 WHERE "
                    "$1.tag = \"inproceedings\" & $2.tag = \"author\"");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].node(0).tag, "author");
}

TEST_F(QueryLanguageTest, ExecuteJoinWithStats) {
  ExecStats stats;
  auto r = RunQuery(
      *exec_,
      "JOIN dblp, sigmod MATCH $1/$2, $2/$3, $1//$4, $4/$5 "
      "WHERE $1.tag = \"tax_prod_root\" & $2.tag = \"inproceedings\" & "
      "$3.tag = \"title\" & $4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content SELECT $2, $4",
      &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  // Both dblp titles are within eps=3 of "Views".
  EXPECT_EQ(eval::ExtractProvenance(*r, "inproceedings"),
            (std::set<uint64_t>{10001, 10002}));
  EXPECT_GT(stats.xpath_queries, 0u);
}

TEST_F(QueryLanguageTest, ParseAndExecuteGroupBy) {
  auto q = ParseQuery(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" GROUP BY $2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, ParsedQuery::Kind::kGroupBy);
  EXPECT_EQ(q->group_label, 2);

  auto r = ExecuteQuery(*exec_, *q, nullptr);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 2u);  // two distinct booktitle strings
  EXPECT_EQ((*r)[0].node(0).tag, tax::kGroupRootTag);
  EXPECT_EQ((*r)[0].node(0).provenance, 1u);
}

TEST_F(QueryLanguageTest, GroupByErrors) {
  // GROUP without BY.
  EXPECT_FALSE(ParseQuery("SELECT $1 FROM d MATCH $1/$2 WHERE true GROUP $2")
                   .ok());
  // Unknown grouping label.
  EXPECT_FALSE(
      ParseQuery("SELECT $1 FROM d MATCH $1/$2 WHERE true GROUP BY $7")
          .ok());
  // 'group' inside a literal must not terminate WHERE.
  auto ok = ParseQuery(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE $2.content = \"GROUP BY x\" & "
      "$1.tag = \"inproceedings\"");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(QueryLanguageTest, CompoundSetOperations) {
  const std::string ullman =
      "(SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$2.content ~ \"Jeffrey Ullman\")";
  const std::string sigmod_papers =
      "(SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" & "
      "$2.content isa \"SIGMOD Conference\")";
  // Ullman (10001, 10002) UNION sigmod (10001) = both.
  auto u = RunQuery(*exec_, ullman + " UNION " + sigmod_papers);
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(::toss::eval::ExtractRootProvenance(*u),
            (std::set<uint64_t>{10001, 10002}));
  // INTERSECT = just the SIGMOD Ullman paper.
  auto i = RunQuery(*exec_, ullman + " intersect " + sigmod_papers);
  ASSERT_TRUE(i.ok()) << i.status();
  EXPECT_EQ(::toss::eval::ExtractRootProvenance(*i),
            std::set<uint64_t>{10001});
  // EXCEPT = the VLDB Ullman paper.
  auto e = RunQuery(*exec_, ullman + " EXCEPT " + sigmod_papers);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(::toss::eval::ExtractRootProvenance(*e),
            std::set<uint64_t>{10002});
  // Three-way chain, left-associative.
  auto chain = RunQuery(
      *exec_, ullman + " UNION " + sigmod_papers + " EXCEPT " + ullman);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_TRUE(::toss::eval::ExtractRootProvenance(*chain).empty());
}

TEST_F(QueryLanguageTest, CompoundParseErrors) {
  EXPECT_FALSE(ParseCompoundQuery("(SELECT $1 FROM d MATCH $1/$2 "
                                  "WHERE true")
                   .ok());  // unbalanced
  EXPECT_FALSE(ParseCompoundQuery("(SELECT $1 FROM d MATCH $1/$2 WHERE "
                                  "true) FROB (SELECT $1 FROM d MATCH "
                                  "$1/$2 WHERE true)")
                   .ok());  // bad set op
  EXPECT_FALSE(
      ParseCompoundQuery("(SELECT $1 FROM d MATCH $1/$2 WHERE true) UNION")
          .ok());  // dangling op
  // Parentheses inside literals do not confuse the splitter.
  auto ok = ParseCompoundQuery(
      "(SELECT $1 FROM dblp MATCH $1/$2 WHERE $2.content = \"a ) b\" & "
      "$1.tag = \"inproceedings\")");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(QueryLanguageTest, UnknownCollectionSurfacesAtExecution) {
  auto r = RunQuery(*exec_,
                    "SELECT $1 FROM nope MATCH $1/$2 WHERE "
                    "$1.tag = \"x\" & $2.tag = \"y\"");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

}  // namespace
}  // namespace toss::core
