#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"

namespace toss::eval {
namespace {

TEST(MetricsTest, PerfectAnswer) {
  PrMetrics m = ComputePr({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.quality, 1.0);
  EXPECT_EQ(m.hits, 3u);
}

TEST(MetricsTest, PartialOverlap) {
  // returned = {1,2,3,4}, correct = {3,4,5,6,7,8}: p=0.5, r=1/3.
  PrMetrics m = ComputePr({1, 2, 3, 4}, {3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.quality, std::sqrt(0.5 / 3.0), 1e-12);
}

TEST(MetricsTest, EmptyReturnedHasFullPrecision) {
  // The paper's convention: TAX "always gets 100% precision", including
  // on queries it answers with the empty set.
  PrMetrics m = ComputePr({}, {1, 2});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.quality, 0.0);
}

TEST(MetricsTest, EmptyCorrectHasFullRecall) {
  PrMetrics m = ComputePr({1}, {});
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

TEST(MetricsTest, AllWrong) {
  PrMetrics m = ComputePr({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.quality, 0.0);
}

TEST(MetricsTest, ExtractProvenanceByTag) {
  tax::TreeCollection trees;
  tax::DataTree t;
  auto root = t.CreateRoot("inproceedings");
  t.node(root).provenance = 10001;
  auto author = t.AppendChild(root, "author", "X");
  t.node(author).provenance = 1001;
  t.AppendChild(root, "title", "T");  // no provenance
  trees.push_back(t);

  EXPECT_EQ(ExtractProvenance(trees, "inproceedings"),
            std::set<uint64_t>{10001});
  EXPECT_EQ(ExtractProvenance(trees, "author"), std::set<uint64_t>{1001});
  EXPECT_TRUE(ExtractProvenance(trees, "title").empty());
  EXPECT_EQ(ExtractRootProvenance(trees), std::set<uint64_t>{10001});
}

TEST(MetricsTest, ExtractSkipsUntracked) {
  tax::TreeCollection trees;
  tax::DataTree t;
  t.CreateRoot("x");
  trees.push_back(t);
  EXPECT_TRUE(ExtractRootProvenance(trees).empty());
}

}  // namespace
}  // namespace toss::eval
