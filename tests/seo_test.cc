#include <gtest/gtest.h>

#include <algorithm>

#include "core/seo.h"
#include "lexicon/lexicon.h"
#include "ontology/ontology_maker.h"
#include "sim/measure_registry.h"
#include "xml/xml_parser.h"

namespace toss::core {
namespace {

ontology::Ontology MakeDblpOntology() {
  auto doc = xml::Parse(
      "<dblp>"
      "<inproceedings>"
      "<author>Jeffrey Ullman</author>"
      "<author>Jeffrey D. Ullman</author>"
      "<author>Marco Ferrari</author>"
      "<booktitle>SIGMOD Conference</booktitle>"
      "</inproceedings>"
      "<inproceedings>"
      "<author>Mauro Ferrari</author>"
      "<booktitle>ACM SIGMOD International Conference on Management of "
      "Data</booktitle>"
      "</inproceedings>"
      "</dblp>");
  EXPECT_TRUE(doc.ok());
  ontology::OntologyMakerOptions opts;
  opts.content_tags = {"author", "booktitle"};
  auto onto = ontology::MakeOntology(
      *doc, lexicon::BuiltinBibliographicLexicon(), opts);
  EXPECT_TRUE(onto.ok()) << onto.status();
  return std::move(onto).value();
}

Seo BuildSeo(double epsilon) {
  SeoBuilder b;
  b.AddInstanceOntology(MakeDblpOntology());
  b.SetMeasure(*sim::MakeMeasure("levenshtein"));
  b.SetEpsilon(epsilon);
  auto seo = b.Build();
  EXPECT_TRUE(seo.ok()) << seo.status();
  return std::move(seo).value();
}

TEST(SeoBuilderTest, RequiresInputs) {
  SeoBuilder empty;
  EXPECT_TRUE(empty.Build().status().IsInvalidArgument());
  SeoBuilder no_measure;
  no_measure.AddInstanceOntology(MakeDblpOntology());
  EXPECT_TRUE(no_measure.Build().status().IsInvalidArgument());
  SeoBuilder negative;
  negative.AddInstanceOntology(MakeDblpOntology());
  negative.SetMeasure(*sim::MakeMeasure("levenshtein"));
  negative.SetEpsilon(-2);
  EXPECT_TRUE(negative.Build().status().IsInvalidArgument());
}

TEST(SeoTest, EnhancedHierarchiesExistPerRelation) {
  Seo seo = BuildSeo(2.0);
  EXPECT_NE(seo.EnhancedHierarchy(ontology::kIsa), nullptr);
  EXPECT_NE(seo.EnhancedHierarchy(ontology::kPartOf), nullptr);
  EXPECT_EQ(seo.EnhancedHierarchy("nosuch"), nullptr);
  EXPECT_NE(seo.Enhancement(ontology::kIsa), nullptr);
  EXPECT_GT(seo.TotalNodeCount(), 0u);
  EXPECT_DOUBLE_EQ(seo.epsilon(), 2.0);
}

TEST(SeoTest, SimilarGroupsCloseOntologyTerms) {
  Seo seo = BuildSeo(2.0);
  // d(Marco Ferrari, Mauro Ferrari) = 2: similar at eps=2.
  EXPECT_TRUE(seo.Similar("Marco Ferrari", "Mauro Ferrari"));
  // d(Jeffrey Ullman, Jeffrey D. Ullman) = 3: not at eps=2.
  EXPECT_FALSE(seo.Similar("Jeffrey Ullman", "Jeffrey D. Ullman"));
  EXPECT_TRUE(seo.Similar("Jeffrey Ullman", "Jeffrey Ullman"));

  Seo seo3 = BuildSeo(3.0);
  EXPECT_TRUE(seo3.Similar("Jeffrey Ullman", "Jeffrey D. Ullman"));
}

TEST(SeoTest, SimilarFallsBackToMeasureForUnknownTerms) {
  Seo seo = BuildSeo(2.0);
  // Neither string is an ontology term.
  EXPECT_TRUE(seo.Similar("zzzz", "zzzx"));
  EXPECT_FALSE(seo.Similar("zzzz", "aaaa"));
}

TEST(SeoTest, LeqFollowsEnhancedHierarchy) {
  Seo seo = BuildSeo(2.0);
  EXPECT_TRUE(
      seo.Leq(ontology::kIsa, "SIGMOD Conference", "database conference"));
  EXPECT_TRUE(seo.Leq(ontology::kIsa, "inproceedings", "publication"));
  EXPECT_FALSE(
      seo.Leq(ontology::kIsa, "database conference", "SIGMOD Conference"));
  EXPECT_FALSE(seo.Leq("nosuch", "a", "b"));
  // partof from document structure.
  EXPECT_TRUE(seo.Leq(ontology::kPartOf, "author", "inproceedings"));
}

TEST(SeoTest, VenueSurfaceFormsAreInterchangeable) {
  Seo seo = BuildSeo(2.0);
  // The full venue name shares a node with the short one (lexicon synonym
  // merging), so both sit below the category.
  EXPECT_TRUE(seo.Leq(
      ontology::kIsa,
      "ACM SIGMOD International Conference on Management of Data",
      "database conference"));
  auto below = seo.TermsBelow(ontology::kIsa, "SIGMOD Conference");
  EXPECT_NE(std::find(below.begin(), below.end(),
                      "ACM SIGMOD International Conference on Management "
                      "of Data"),
            below.end());
}

TEST(SeoTest, SimilarTermsExpandsThroughSharedNodes) {
  Seo seo = BuildSeo(2.0);
  auto terms = seo.SimilarTerms("Marco Ferrari");
  EXPECT_NE(std::find(terms.begin(), terms.end(), "Mauro Ferrari"),
            terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "Marco Ferrari"),
            terms.end());
  // Unknown literal: fallback full scan against ontology terms.
  auto fallback = seo.SimilarTerms("Mxrco Ferrari");
  EXPECT_NE(std::find(fallback.begin(), fallback.end(), "Marco Ferrari"),
            fallback.end());
}

TEST(SeoTest, TermsBelowCollectsCategorySubtree) {
  Seo seo = BuildSeo(2.0);
  auto below = seo.TermsBelow(ontology::kIsa, "database conference");
  EXPECT_NE(std::find(below.begin(), below.end(), "SIGMOD Conference"),
            below.end());
  // The category term itself is included.
  EXPECT_NE(std::find(below.begin(), below.end(), "database conference"),
            below.end());
}

TEST(SeoBuilderTest, MultiInstanceFusionWithConstraints) {
  auto doc2 = xml::Parse(
      "<proceedingsPage>"
      "<conference>ACM SIGMOD International Conference on Management of "
      "Data</conference>"
      "<articles><article><authors><author>J. Ullman</author></authors>"
      "</article></articles>"
      "</proceedingsPage>");
  ASSERT_TRUE(doc2.ok());
  ontology::OntologyMakerOptions opts;
  opts.content_tags = {"author", "conference"};
  auto onto2 = ontology::MakeOntology(
      *doc2, lexicon::BuiltinBibliographicLexicon(), opts);
  ASSERT_TRUE(onto2.ok());

  SeoBuilder b;
  b.AddInstanceOntology(MakeDblpOntology());
  b.AddInstanceOntology(std::move(onto2).value());
  b.AddConstraints(ontology::kPartOf,
                   ontology::Eq("booktitle", 0, "conference", 1));
  b.SetMeasure(*sim::MakeMeasure("levenshtein"));
  b.SetEpsilon(2.0);
  auto seo = b.Build();
  ASSERT_TRUE(seo.ok()) << seo.status();
  // Fused partof: booktitle and conference merged.
  const auto* partof = seo->EnhancedHierarchy(ontology::kPartOf);
  ASSERT_NE(partof, nullptr);
  EXPECT_EQ(partof->FindTerm("booktitle"), partof->FindTerm("conference"));
}

}  // namespace
}  // namespace toss::core
