#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace toss::ontology {
namespace {

using sim::LevenshteinMeasure;

/// The paper's Example 11: an isa hierarchy where "relation"/"relational"
/// and "model"/"models" sit under a common structure.
Hierarchy Example11Hierarchy() {
  Hierarchy h;
  (void)h.AddTermEdge("relation", "concept");
  (void)h.AddTermEdge("relational", "concept");
  (void)h.AddTermEdge("model", "concept");
  (void)h.AddTermEdge("models", "concept");
  (void)h.AddTermEdge("tuple", "relation");
  (void)h.AddTermEdge("tuple", "relational");
  return h;
}

TEST(SeaTest, PaperExample11MergesCloseTerms) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& enhanced = r->enhanced;

  // d(relation, relational) = 2 and d(model, models) = 1: merged.
  HNodeId rel = enhanced.FindTerm("relation");
  ASSERT_NE(rel, kInvalidHNode);
  EXPECT_EQ(rel, enhanced.FindTerm("relational"));
  HNodeId model = enhanced.FindTerm("model");
  ASSERT_NE(model, kInvalidHNode);
  EXPECT_EQ(model, enhanced.FindTerm("models"));
  // Unrelated terms stay separate.
  EXPECT_NE(enhanced.FindTerm("tuple"), enhanced.FindTerm("concept"));
  // 6 original nodes -> 4 enhanced (two merges).
  EXPECT_EQ(enhanced.node_count(), 4u);
  // Order preserved through the merge: tuple <= merged-relation <= concept.
  EXPECT_TRUE(enhanced.LeqTerms("tuple", "relational"));
  EXPECT_TRUE(enhanced.LeqTerms("model", "concept"));
  EXPECT_TRUE(enhanced.IsAcyclic());
  EXPECT_TRUE(enhanced.IsTransitivelyReduced());
}

TEST(SeaTest, ZeroEpsilonIsIdentityGrouping) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->enhanced.node_count(), h.node_count());
  EXPECT_TRUE(r->enhanced.EquivalentTo(h));
}

TEST(SeaTest, MuCoversEveryOriginalNode) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->mu.size(), h.node_count());
  for (HNodeId v = 0; v < h.node_count(); ++v) {
    EXPECT_FALSE(r->mu[v].empty()) << h.NodeLabel(v);
  }
}

TEST(SeaTest, OverlappingCliquesKeepQueryReachability) {
  // The header's A-B-C example: d(A,B)<=eps, d(A,C)<=eps, d(B,C)>eps
  // must yield two overlapping nodes {A,B} and {A,C}.
  Hierarchy h;
  h.AddNode({"abcd"});    // A
  h.AddNode({"abcdxx"});  // B: d(A,B)=2
  h.AddNode({"abyy"});    // C: d(A,C)=2, d(B,C)=4
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->enhanced.node_count(), 2u);
  auto a_nodes = r->enhanced.NodesContaining("abcd");
  EXPECT_EQ(a_nodes.size(), 2u);  // A belongs to both nodes
  EXPECT_EQ(r->mu[0].size(), 2u);
  EXPECT_EQ(r->mu[1].size(), 1u);
  EXPECT_EQ(r->mu[2].size(), 1u);
}

TEST(SeaTest, SimilarityInconsistencyDetected) {
  // Ordered chain a < b where a and b are within epsilon of a common
  // middle term c, with c both above a and below b in conflicting ways:
  // merging a-c and c-b collapses the strict order into a cycle.
  Hierarchy h;
  HNodeId a = h.AddNode({"term1"});
  HNodeId b = h.AddNode({"term2"});  // d(term1, term2) = 1
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  HNodeId c = h.AddNode({"unrelated"});
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  HNodeId d = h.AddNode({"unrelatex"});  // close to "unrelated"
  ASSERT_TRUE(h.AddEdge(d, a).ok());
  // Now: d <= a <= b <= c, with {a,b} merging and {c,d} merging under
  // eps=1 -- the merged pair {c,d} must be both above and below {a,b}.
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
  EXPECT_FALSE(IsSimilarityConsistent(h, lev, 1.0));
  EXPECT_TRUE(IsSimilarityConsistent(h, lev, 0.0));
}

TEST(SeaTest, NegativeEpsilonRejected) {
  Hierarchy h;
  h.EnsureTerm("x");
  LevenshteinMeasure lev;
  EXPECT_TRUE(SimilarityEnhance(h, lev, -1.0).status().IsInvalidArgument());
}

TEST(SeaTest, CyclicInputRejected) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, a).ok());
  LevenshteinMeasure lev;
  EXPECT_TRUE(SimilarityEnhance(h, lev, 1.0).status().IsInconsistent());
}

TEST(SeaTest, VerifyEnhancementAcceptsSeaOutput) {
  // Theorem 2: SEA output satisfies Def. 8 (when no inconsistency).
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  for (double eps : {0.0, 1.0, 2.0, 3.0}) {
    auto r = SimilarityEnhance(h, lev, eps);
    ASSERT_TRUE(r.ok()) << "eps=" << eps << ": " << r.status();
    Status v = VerifyEnhancement(h, lev, eps, *r);
    EXPECT_TRUE(v.ok()) << "eps=" << eps << ": " << v;
  }
}

TEST(SeaTest, VerifyEnhancementOnRandomFlatHierarchies) {
  // Flat hierarchies (no order) can never be similarity inconsistent, so
  // SEA must succeed and verify for any epsilon.
  Random rng(37);
  LevenshteinMeasure lev;
  for (int trial = 0; trial < 10; ++trial) {
    Hierarchy h;
    for (int i = 0; i < 12; ++i) {
      h.AddNode({rng.AlphaString(3 + rng.Uniform(4))});
    }
    for (double eps : {1.0, 2.0, 4.0}) {
      auto r = SimilarityEnhance(h, lev, eps);
      ASSERT_TRUE(r.ok()) << r.status();
      Status v = VerifyEnhancement(h, lev, eps, *r);
      EXPECT_TRUE(v.ok()) << v;
    }
  }
}

TEST(SeaTest, DeterministicAcrossRuns) {
  // Theorem 1: enhancements are unique up to isomorphism; our construction
  // is exactly deterministic.
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r1 = SimilarityEnhance(h, lev, 2.0);
  auto r2 = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->enhanced.EquivalentTo(r2->enhanced));
}

TEST(SeaTest, StrictModeRejectsPartiallyBackedOrders) {
  // Nodes: a < c; b unordered. With b merging into {a,b}, the enhanced
  // edge {a,b} <= {c} is backed only by a. Paper-mode accepts (acyclic);
  // strict mode rejects.
  Hierarchy h;
  HNodeId a = h.AddNode({"aaaa"});
  HNodeId b = h.AddNode({"aaab"});  // d(a,b)=1, unordered vs c
  HNodeId c = h.AddNode({"zzzz"});
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  (void)b;
  LevenshteinMeasure lev;
  auto lax = SimilarityEnhance(h, lev, 1.0);
  EXPECT_TRUE(lax.ok()) << lax.status();
  SeaOptions strict;
  strict.strict = true;
  auto r = SimilarityEnhance(h, lev, 1.0, strict);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
}

TEST(SeaTest, PreimageMatchesMu) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok());
  for (HNodeId e = 0; e < r->enhanced.node_count(); ++e) {
    for (HNodeId v : r->Preimage(e)) {
      EXPECT_NE(std::find(r->mu[v].begin(), r->mu[v].end(), e),
                r->mu[v].end());
    }
  }
}

TEST(SeaTest, LargerEpsilonNeverIncreasesNodeCountOnFlatHierarchy) {
  // On a flat hierarchy, growing epsilon only merges more -- the enhanced
  // node count is monotonically non-increasing... except overlap can add
  // nodes; so we check the weaker, always-true property: every term stays
  // findable.
  Hierarchy h;
  h.AddNode({"alpha"});
  h.AddNode({"alphb"});
  h.AddNode({"alphc"});
  h.AddNode({"omega"});
  LevenshteinMeasure lev;
  for (double eps : {0.0, 1.0, 2.0, 8.0}) {
    auto r = SimilarityEnhance(h, lev, eps);
    ASSERT_TRUE(r.ok());
    for (const char* term : {"alpha", "alphb", "alphc", "omega"}) {
      EXPECT_NE(r->enhanced.FindTerm(term), kInvalidHNode)
          << term << " lost at eps=" << eps;
    }
  }
}

/// Random hierarchy with near-duplicate clusters and an acyclic order
/// (edges only point from later nodes to earlier ones).
Hierarchy RandomHierarchy(Random& rng, size_t n) {
  Hierarchy h;
  std::string prev = "seedling";
  for (size_t i = 0; i < n; ++i) {
    std::string term;
    if (i % 3 == 2) {
      term = prev;
      term[rng.Uniform(term.size())] = 'z';
    } else {
      term = rng.AlphaString(5 + rng.Uniform(6));
    }
    h.AddNode({term});
    prev = term;
    if (i > 0 && rng.Bernoulli(0.4)) {
      (void)h.AddEdge(static_cast<HNodeId>(i),
                      static_cast<HNodeId>(rng.Uniform(i)));
    }
  }
  return h;
}

/// Asserts that two SEA outcomes (possibly failures) are identical:
/// same status, and on success the same (H', mu) pair.
void ExpectSameOutcome(const Result<SimilarityEnhancement>& a,
                       const Result<SimilarityEnhancement>& b,
                       const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context << ": " << a.status() << " vs "
                            << b.status();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << context;
    return;
  }
  EXPECT_EQ(a->mu, b->mu) << context;
  EXPECT_EQ(a->enhanced.node_count(), b->enhanced.node_count()) << context;
  EXPECT_EQ(a->enhanced.edge_count(), b->enhanced.edge_count()) << context;
  EXPECT_TRUE(a->enhanced.EquivalentTo(b->enhanced)) << context;
}

TEST(SimilaritySweepTest, MatchesIndependentEnhanceAcrossEpsilons) {
  const double kMax = 4.0;
  const std::vector<double> epsilons = {0.0, 0.5, 1.0, 1.5, 2.0,
                                        2.5, 3.0, 3.5, 4.0};
  LevenshteinMeasure lev;
  Random rng(511);
  std::vector<Hierarchy> hierarchies;
  hierarchies.push_back(Example11Hierarchy());
  for (int trial = 0; trial < 4; ++trial) {
    hierarchies.push_back(RandomHierarchy(rng, 20 + trial * 7));
  }
  for (size_t hi = 0; hi < hierarchies.size(); ++hi) {
    const Hierarchy& h = hierarchies[hi];
    auto sweep = SimilaritySweep::Create(h, lev, kMax);
    ASSERT_TRUE(sweep.ok()) << sweep.status();
    for (double eps : epsilons) {
      ExpectSameOutcome(sweep->Enhance(eps), SimilarityEnhance(h, lev, eps),
                        "hierarchy " + std::to_string(hi) + " eps=" +
                            std::to_string(eps));
    }
  }
}

TEST(SimilaritySweepTest, RejectsExactlyWhereIndependentEnhanceDoes) {
  // The SimilarityInconsistencyDetected chain: eps=1 collapses the strict
  // order into a cycle, eps=0 does not. The sweep must reproduce both.
  Hierarchy h;
  HNodeId a = h.AddNode({"term1"});
  HNodeId b = h.AddNode({"term2"});
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  HNodeId c = h.AddNode({"unrelated"});
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  HNodeId d = h.AddNode({"unrelatex"});
  ASSERT_TRUE(h.AddEdge(d, a).ok());
  LevenshteinMeasure lev;
  auto sweep = SimilaritySweep::Create(h, lev, 2.0);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  for (double eps : {0.0, 0.5, 1.0, 2.0}) {
    ExpectSameOutcome(sweep->Enhance(eps), SimilarityEnhance(h, lev, eps),
                      "eps=" + std::to_string(eps));
  }
  EXPECT_TRUE(sweep->Enhance(1.0).status().IsInconsistent());
  EXPECT_TRUE(sweep->Enhance(0.0).ok());
}

TEST(SimilaritySweepTest, EpsilonOutsideSweepBoundRejected) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto sweep = SimilaritySweep::Create(h, lev, 2.0);
  ASSERT_TRUE(sweep.ok());
  EXPECT_TRUE(sweep->Enhance(2.5).status().IsInvalidArgument());
  EXPECT_TRUE(sweep->Enhance(-0.5).status().IsInvalidArgument());
  EXPECT_TRUE(SimilaritySweep::Create(h, lev, -1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(SeaTest, FilterAndParallelOptionsDoNotChangeResults) {
  LevenshteinMeasure lev;
  Random rng(613);
  for (int trial = 0; trial < 4; ++trial) {
    Hierarchy h = RandomHierarchy(rng, 25);
    for (double eps : {0.0, 1.0, 2.0}) {
      auto reference = SimilarityEnhance(h, lev, eps);
      for (bool filters : {false, true}) {
        for (bool parallel : {false, true}) {
          SeaOptions opts;
          opts.use_filters = filters;
          opts.parallel = parallel;
          ExpectSameOutcome(SimilarityEnhance(h, lev, eps, opts), reference,
                            "filters=" + std::to_string(filters) +
                                " parallel=" + std::to_string(parallel) +
                                " eps=" + std::to_string(eps));
        }
      }
    }
  }
}

TEST(SeaTest, VerifyEnhancementWithSharedMatrixMatchesDirect) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto sweep = SimilaritySweep::Create(h, lev, 3.0);
  ASSERT_TRUE(sweep.ok());
  for (double eps : {0.0, 1.0, 2.0, 3.0}) {
    auto r = sweep->Enhance(eps);
    ASSERT_TRUE(r.ok()) << r.status();
    Status direct = VerifyEnhancement(h, lev, eps, *r);
    Status shared = VerifyEnhancement(h, lev, eps, *r, &sweep->distances());
    EXPECT_TRUE(direct.ok()) << direct;
    EXPECT_TRUE(shared.ok()) << shared;
  }
  // A corrupted enhancement must fail identically through both paths.
  auto r = sweep->Enhance(2.0);
  ASSERT_TRUE(r.ok());
  SimilarityEnhancement broken = *r;
  ASSERT_FALSE(broken.mu.empty());
  broken.mu[0].clear();
  Status direct = VerifyEnhancement(h, lev, 2.0, broken);
  Status shared = VerifyEnhancement(h, lev, 2.0, broken, &sweep->distances());
  EXPECT_FALSE(direct.ok());
  EXPECT_FALSE(shared.ok());
  EXPECT_EQ(direct.code(), shared.code());
}

}  // namespace
}  // namespace toss::ontology
