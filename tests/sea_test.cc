#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace toss::ontology {
namespace {

using sim::LevenshteinMeasure;

/// The paper's Example 11: an isa hierarchy where "relation"/"relational"
/// and "model"/"models" sit under a common structure.
Hierarchy Example11Hierarchy() {
  Hierarchy h;
  (void)h.AddTermEdge("relation", "concept");
  (void)h.AddTermEdge("relational", "concept");
  (void)h.AddTermEdge("model", "concept");
  (void)h.AddTermEdge("models", "concept");
  (void)h.AddTermEdge("tuple", "relation");
  (void)h.AddTermEdge("tuple", "relational");
  return h;
}

TEST(SeaTest, PaperExample11MergesCloseTerms) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok()) << r.status();
  const Hierarchy& enhanced = r->enhanced;

  // d(relation, relational) = 2 and d(model, models) = 1: merged.
  HNodeId rel = enhanced.FindTerm("relation");
  ASSERT_NE(rel, kInvalidHNode);
  EXPECT_EQ(rel, enhanced.FindTerm("relational"));
  HNodeId model = enhanced.FindTerm("model");
  ASSERT_NE(model, kInvalidHNode);
  EXPECT_EQ(model, enhanced.FindTerm("models"));
  // Unrelated terms stay separate.
  EXPECT_NE(enhanced.FindTerm("tuple"), enhanced.FindTerm("concept"));
  // 6 original nodes -> 4 enhanced (two merges).
  EXPECT_EQ(enhanced.node_count(), 4u);
  // Order preserved through the merge: tuple <= merged-relation <= concept.
  EXPECT_TRUE(enhanced.LeqTerms("tuple", "relational"));
  EXPECT_TRUE(enhanced.LeqTerms("model", "concept"));
  EXPECT_TRUE(enhanced.IsAcyclic());
  EXPECT_TRUE(enhanced.IsTransitivelyReduced());
}

TEST(SeaTest, ZeroEpsilonIsIdentityGrouping) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->enhanced.node_count(), h.node_count());
  EXPECT_TRUE(r->enhanced.EquivalentTo(h));
}

TEST(SeaTest, MuCoversEveryOriginalNode) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->mu.size(), h.node_count());
  for (HNodeId v = 0; v < h.node_count(); ++v) {
    EXPECT_FALSE(r->mu[v].empty()) << h.NodeLabel(v);
  }
}

TEST(SeaTest, OverlappingCliquesKeepQueryReachability) {
  // The header's A-B-C example: d(A,B)<=eps, d(A,C)<=eps, d(B,C)>eps
  // must yield two overlapping nodes {A,B} and {A,C}.
  Hierarchy h;
  h.AddNode({"abcd"});    // A
  h.AddNode({"abcdxx"});  // B: d(A,B)=2
  h.AddNode({"abyy"});    // C: d(A,C)=2, d(B,C)=4
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->enhanced.node_count(), 2u);
  auto a_nodes = r->enhanced.NodesContaining("abcd");
  EXPECT_EQ(a_nodes.size(), 2u);  // A belongs to both nodes
  EXPECT_EQ(r->mu[0].size(), 2u);
  EXPECT_EQ(r->mu[1].size(), 1u);
  EXPECT_EQ(r->mu[2].size(), 1u);
}

TEST(SeaTest, SimilarityInconsistencyDetected) {
  // Ordered chain a < b where a and b are within epsilon of a common
  // middle term c, with c both above a and below b in conflicting ways:
  // merging a-c and c-b collapses the strict order into a cycle.
  Hierarchy h;
  HNodeId a = h.AddNode({"term1"});
  HNodeId b = h.AddNode({"term2"});  // d(term1, term2) = 1
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  HNodeId c = h.AddNode({"unrelated"});
  ASSERT_TRUE(h.AddEdge(b, c).ok());
  HNodeId d = h.AddNode({"unrelatex"});  // close to "unrelated"
  ASSERT_TRUE(h.AddEdge(d, a).ok());
  // Now: d <= a <= b <= c, with {a,b} merging and {c,d} merging under
  // eps=1 -- the merged pair {c,d} must be both above and below {a,b}.
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
  EXPECT_FALSE(IsSimilarityConsistent(h, lev, 1.0));
  EXPECT_TRUE(IsSimilarityConsistent(h, lev, 0.0));
}

TEST(SeaTest, NegativeEpsilonRejected) {
  Hierarchy h;
  h.EnsureTerm("x");
  LevenshteinMeasure lev;
  EXPECT_TRUE(SimilarityEnhance(h, lev, -1.0).status().IsInvalidArgument());
}

TEST(SeaTest, CyclicInputRejected) {
  Hierarchy h;
  HNodeId a = h.EnsureTerm("a");
  HNodeId b = h.EnsureTerm("b");
  ASSERT_TRUE(h.AddEdge(a, b).ok());
  ASSERT_TRUE(h.AddEdge(b, a).ok());
  LevenshteinMeasure lev;
  EXPECT_TRUE(SimilarityEnhance(h, lev, 1.0).status().IsInconsistent());
}

TEST(SeaTest, VerifyEnhancementAcceptsSeaOutput) {
  // Theorem 2: SEA output satisfies Def. 8 (when no inconsistency).
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  for (double eps : {0.0, 1.0, 2.0, 3.0}) {
    auto r = SimilarityEnhance(h, lev, eps);
    ASSERT_TRUE(r.ok()) << "eps=" << eps << ": " << r.status();
    Status v = VerifyEnhancement(h, lev, eps, *r);
    EXPECT_TRUE(v.ok()) << "eps=" << eps << ": " << v;
  }
}

TEST(SeaTest, VerifyEnhancementOnRandomFlatHierarchies) {
  // Flat hierarchies (no order) can never be similarity inconsistent, so
  // SEA must succeed and verify for any epsilon.
  Random rng(37);
  LevenshteinMeasure lev;
  for (int trial = 0; trial < 10; ++trial) {
    Hierarchy h;
    for (int i = 0; i < 12; ++i) {
      h.AddNode({rng.AlphaString(3 + rng.Uniform(4))});
    }
    for (double eps : {1.0, 2.0, 4.0}) {
      auto r = SimilarityEnhance(h, lev, eps);
      ASSERT_TRUE(r.ok()) << r.status();
      Status v = VerifyEnhancement(h, lev, eps, *r);
      EXPECT_TRUE(v.ok()) << v;
    }
  }
}

TEST(SeaTest, DeterministicAcrossRuns) {
  // Theorem 1: enhancements are unique up to isomorphism; our construction
  // is exactly deterministic.
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r1 = SimilarityEnhance(h, lev, 2.0);
  auto r2 = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->enhanced.EquivalentTo(r2->enhanced));
}

TEST(SeaTest, StrictModeRejectsPartiallyBackedOrders) {
  // Nodes: a < c; b unordered. With b merging into {a,b}, the enhanced
  // edge {a,b} <= {c} is backed only by a. Paper-mode accepts (acyclic);
  // strict mode rejects.
  Hierarchy h;
  HNodeId a = h.AddNode({"aaaa"});
  HNodeId b = h.AddNode({"aaab"});  // d(a,b)=1, unordered vs c
  HNodeId c = h.AddNode({"zzzz"});
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  (void)b;
  LevenshteinMeasure lev;
  auto lax = SimilarityEnhance(h, lev, 1.0);
  EXPECT_TRUE(lax.ok()) << lax.status();
  SeaOptions strict;
  strict.strict = true;
  auto r = SimilarityEnhance(h, lev, 1.0, strict);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInconsistent());
}

TEST(SeaTest, PreimageMatchesMu) {
  Hierarchy h = Example11Hierarchy();
  LevenshteinMeasure lev;
  auto r = SimilarityEnhance(h, lev, 2.0);
  ASSERT_TRUE(r.ok());
  for (HNodeId e = 0; e < r->enhanced.node_count(); ++e) {
    for (HNodeId v : r->Preimage(e)) {
      EXPECT_NE(std::find(r->mu[v].begin(), r->mu[v].end(), e),
                r->mu[v].end());
    }
  }
}

TEST(SeaTest, LargerEpsilonNeverIncreasesNodeCountOnFlatHierarchy) {
  // On a flat hierarchy, growing epsilon only merges more -- the enhanced
  // node count is monotonically non-increasing... except overlap can add
  // nodes; so we check the weaker, always-true property: every term stays
  // findable.
  Hierarchy h;
  h.AddNode({"alpha"});
  h.AddNode({"alphb"});
  h.AddNode({"alphc"});
  h.AddNode({"omega"});
  LevenshteinMeasure lev;
  for (double eps : {0.0, 1.0, 2.0, 8.0}) {
    auto r = SimilarityEnhance(h, lev, eps);
    ASSERT_TRUE(r.ok());
    for (const char* term : {"alpha", "alphb", "alphc", "omega"}) {
      EXPECT_NE(r->enhanced.FindTerm(term), kInvalidHNode)
          << term << " lost at eps=" << eps;
    }
  }
}

}  // namespace
}  // namespace toss::ontology
