// Tests for the process-wide term interner and the snapshot symbol table
// built on it: hostile terms, id stability, concurrent readers against
// appenders (the lock-free Text()/HasStar() contract; run under the tsan
// preset in CI), the SYMBOLS sidecar round-trip, legacy (pre-symbols)
// snapshot opening, and corrupt-table rejection.

#include "common/interner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "store/database.h"
#include "store/snapshot.h"

namespace toss {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Dictionary basics & hostile terms
// ---------------------------------------------------------------------------

TEST(InternerTest, InternIsIdempotentAndRoundTrips) {
  Interner& in = Interner::Global();
  const SymbolId a = in.Intern("interner_test_alpha");
  ASSERT_NE(a, kInvalidSymbol);
  EXPECT_EQ(in.Intern("interner_test_alpha"), a);
  EXPECT_EQ(in.Text(a), "interner_test_alpha");
  ASSERT_TRUE(in.Find("interner_test_alpha").has_value());
  EXPECT_EQ(*in.Find("interner_test_alpha"), a);
  EXPECT_FALSE(in.Find("interner_test_never_interned_x9z").has_value());
}

TEST(InternerTest, HostileTermsStayDistinct) {
  Interner& in = Interner::Global();
  // Terms that collide under naive normalization or C-string handling:
  // embedded NUL, newline vs its literal %-escape, trailing whitespace.
  const std::string nul1 = std::string("a\0b", 3);
  const std::string nul2 = std::string("a\0c", 3);
  const std::vector<std::string> terms = {
      nul1,    nul2,   "a",           "a\n",      "a%0A",
      "a%0a",  "a ",   " a",          "%00",      std::string(1, '\0'),
      "",      "a\r\n", "a%25",       "a%",
  };
  std::set<SymbolId> ids;
  for (const std::string& t : terms) {
    SymbolId id = in.Intern(t);
    ASSERT_NE(id, kInvalidSymbol) << "term bytes: " << t.size();
    EXPECT_EQ(in.Text(id), t);
    EXPECT_TRUE(ids.insert(id).second)
        << "two distinct terms shared one id (" << t.size() << " bytes)";
  }
  // Re-interning yields the same ids -- including the empty term.
  for (const std::string& t : terms) {
    EXPECT_EQ(in.Intern(t), *in.Find(t));
  }
}

TEST(InternerTest, HasStarTracksGlobWildcards) {
  Interner& in = Interner::Global();
  EXPECT_FALSE(in.HasStar(in.Intern("interner_plain_term")));
  EXPECT_TRUE(in.HasStar(in.Intern("interner_glob_*_term")));
  EXPECT_TRUE(in.HasStar(in.Intern("*")));
}

TEST(InternerTest, IdsAreDenseAndStable) {
  Interner& in = Interner::Global();
  const size_t before = in.size();
  const SymbolId a = in.Intern("interner_dense_probe_a");
  const SymbolId b = in.Intern("interner_dense_probe_b");
  EXPECT_LT(a, in.size());
  EXPECT_LT(b, in.size());
  EXPECT_GE(in.size(), before);
  // Every id below size() resolves without faulting and round-trips
  // through Find (sampling the low, mid, and fresh regions).
  for (SymbolId id : {SymbolId{0}, static_cast<SymbolId>(in.size() / 2), a}) {
    const std::string text(in.Text(id));
    ASSERT_TRUE(in.Find(text).has_value()) << id;
    EXPECT_EQ(*in.Find(text), id);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: lock-free readers against appenders (tsan target)
// ---------------------------------------------------------------------------

TEST(InternerTest, ConcurrentInternAndReadersAgree) {
  Interner& in = Interner::Global();
  constexpr int kThreads = 8;
  constexpr int kTermsPerThread = 400;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::vector<SymbolId>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      ids[t].reserve(kTermsPerThread);
      for (int i = 0; i < kTermsPerThread; ++i) {
        // Half the terms are shared across threads (every thread races to
        // intern them), half are thread-private.
        std::string term =
            (i % 2 == 0)
                ? "interner_mt_shared_" + std::to_string(i)
                : "interner_mt_t" + std::to_string(t) + "_" +
                      std::to_string(i);
        SymbolId id = in.Intern(term);
        ASSERT_NE(id, kInvalidSymbol);
        ids[t].push_back(id);
        // Lock-free read-back of an id another thread may just have
        // published, plus one of our own.
        EXPECT_EQ(in.Text(id), term);
        if (i > 0) {
          EXPECT_FALSE(std::string_view(in.Text(ids[t][i / 2])).empty());
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  // Shared terms resolved to one id everywhere.
  for (int i = 0; i < kTermsPerThread; i += 2) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][i], ids[0][i]) << "thread " << t << " term " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// SYMBOLS sidecar format
// ---------------------------------------------------------------------------

TEST(SymbolsFileTest, RoundTripsHostileTerms) {
  const std::vector<std::string> terms = {
      "",      "plain", "two\nlines", std::string("n\0l", 3),
      "a%0A",  "x\r",   "tab\there",  "sp ace",
  };
  const std::string payload = store::FormatSymbolsFile(terms);
  auto parsed = store::ParseSymbolsFile(payload, terms.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, terms);
}

TEST(SymbolsFileTest, RejectsTruncationAndCountMismatch) {
  const std::vector<std::string> terms = {"a", "b", "c"};
  const std::string payload = store::FormatSymbolsFile(terms);
  // Missing trailing newline = torn final line.
  auto torn = store::ParseSymbolsFile(
      std::string_view(payload).substr(0, payload.size() - 1), 3);
  EXPECT_TRUE(torn.status().IsParseError());
  // Count mismatch against the manifest.
  EXPECT_TRUE(store::ParseSymbolsFile(payload, 2).status().IsParseError());
  EXPECT_TRUE(store::ParseSymbolsFile(payload, 4).status().IsParseError());
  // Malformed escape inside a line.
  EXPECT_TRUE(store::ParseSymbolsFile("%GG\n", 1).status().IsParseError());
}

// ---------------------------------------------------------------------------
// Snapshot symbol-table persistence
// ---------------------------------------------------------------------------

/// Builds a one-collection database whose documents carry marker terms.
store::Database MakeDb(const std::string& marker) {
  store::Database db;
  auto coll = db.CreateCollection("c");
  EXPECT_TRUE(coll.ok());
  EXPECT_TRUE((*coll)
                  ->InsertXml("d1", "<paper><title>" + marker +
                                        "</title></paper>")
                  .ok());
  EXPECT_TRUE((*coll)->InsertXml("d2", "<paper><year>1999</year></paper>").ok());
  return db;
}

/// The committed generation directory of `dir` per CURRENT.
fs::path GenDir(const fs::path& dir) {
  std::ifstream current(dir / store::kCurrentFileName);
  std::string gen;
  std::getline(current, gen);
  return dir / gen;
}

TEST(SnapshotSymbolsTest, SaveWritesAChecksummedTableAndOpenAcceptsIt) {
  fs::path dir = fs::temp_directory_path() / "toss_interner_snapshot";
  fs::remove_all(dir);
  store::Database db = MakeDb("SymbolRoundTrip");
  ASSERT_TRUE(db.Save(dir.string()).ok());

  // The manifest records the sidecar; the sidecar holds every tag/content
  // term of the documents.
  fs::path gdir = GenDir(dir);
  std::ifstream mf(gdir / store::kManifestFileName);
  std::string manifest((std::istreambuf_iterator<char>(mf)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("\nsymbols " +
                          std::string(store::kSymbolsFileName) + " "),
            std::string::npos)
      << manifest;
  auto parsed = store::ParseManifest(manifest);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->symbols.has_value());

  std::ifstream sf(gdir / store::kSymbolsFileName, std::ios::binary);
  std::string payload((std::istreambuf_iterator<char>(sf)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(payload.size(), parsed->symbols->bytes);
  EXPECT_EQ(store::Crc32(payload), parsed->symbols->crc32);
  auto terms = store::ParseSymbolsFile(payload, parsed->symbols->count);
  ASSERT_TRUE(terms.ok()) << terms.status();
  std::set<std::string> term_set(terms->begin(), terms->end());
  for (const char* expected :
       {"paper", "title", "SymbolRoundTrip", "year", "1999"}) {
    EXPECT_TRUE(term_set.count(expected)) << expected;
  }

  // Open verifies and pre-interns; every persisted term is then findable.
  auto reopened = store::Database::Open(dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (const std::string& t : *terms) {
    EXPECT_TRUE(Interner::Global().Find(t).has_value()) << t;
  }
  fs::remove_all(dir);
}

TEST(SnapshotSymbolsTest, LegacyManifestWithoutSymbolsOpens) {
  fs::path dir = fs::temp_directory_path() / "toss_interner_legacy";
  fs::remove_all(dir);
  store::Database db = MakeDb("LegacyLazyIntern");
  ASSERT_TRUE(db.Save(dir.string()).ok());

  // Rewrite the committed MANIFEST without its symbols line and drop the
  // sidecar -- exactly what a pre-PR7 writer produced.
  fs::path gdir = GenDir(dir);
  std::ifstream mf(gdir / store::kManifestFileName);
  std::string manifest((std::istreambuf_iterator<char>(mf)),
                       std::istreambuf_iterator<char>());
  mf.close();
  const size_t sym_pos = manifest.find("symbols ");
  ASSERT_NE(sym_pos, std::string::npos);
  manifest.erase(sym_pos, manifest.find('\n', sym_pos) - sym_pos + 1);
  {
    std::ofstream out(gdir / store::kManifestFileName,
                      std::ios::binary | std::ios::trunc);
    out << manifest;
  }
  fs::remove(gdir / store::kSymbolsFileName);

  auto reopened = store::Database::Open(dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto coll = reopened->GetCollection("c");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
  // Lazy interning: tags join the dictionary at load (document indexing);
  // contents on the first tree decode.
  EXPECT_TRUE(Interner::Global().Find("title").has_value());
  for (store::DocId id : (*coll)->AllDocs()) (*coll)->DecodedTree(id);
  EXPECT_TRUE(Interner::Global().Find("LegacyLazyIntern").has_value());
  fs::remove_all(dir);
}

TEST(SnapshotSymbolsTest, CorruptTableRejectsTheGeneration) {
  fs::path dir = fs::temp_directory_path() / "toss_interner_corrupt";
  fs::remove_all(dir);
  store::Database db = MakeDb("CorruptMarker");
  ASSERT_TRUE(db.Save(dir.string()).ok());

  // Flip a byte in the sidecar: the CRC catches it and, with no older
  // generation to degrade to, Open fails rather than load silently.
  fs::path sym = GenDir(dir) / store::kSymbolsFileName;
  std::ifstream sf(sym, std::ios::binary);
  std::string payload((std::istreambuf_iterator<char>(sf)),
                      std::istreambuf_iterator<char>());
  sf.close();
  ASSERT_FALSE(payload.empty());
  payload[0] ^= 0x01;
  {
    std::ofstream out(sym, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  auto reopened = store::Database::Open(dir.string());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsIOError()) << reopened.status();

  // A second Save writes a fresh intact generation; Open recovers.
  ASSERT_TRUE(db.Save(dir.string()).ok());
  EXPECT_TRUE(store::Database::Open(dir.string()).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace toss
