// Failure injection: corrupted on-disk state, inconsistent inputs, and
// mid-pipeline errors must surface as typed Status values, never crashes
// or silent corruption.

#include <gtest/gtest.h>

#include <filesystem>
#include <cstring>
#include <fstream>

#include "core/toss.h"
#include "data/bulk_loader.h"
#include "store/env.h"
#include "store/snapshot.h"

namespace toss {
namespace {

namespace fs = std::filesystem;

// Corruption tests against the generational snapshot format:
//   <dir>/CURRENT, <dir>/gen-1/MANIFEST, <dir>/gen-1/c000000/00000N.xml
class CorruptStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "toss_failure_test";
    fs::remove_all(dir_);
    store::Database db;
    auto coll = db.CreateCollection("dblp");
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->InsertXml("k1", "<a><b>x</b></a>").ok());
    ASSERT_TRUE((*coll)->InsertXml("k2", "<c/>").ok());
    ASSERT_TRUE(db.Save(dir_.string()).ok());
    doc0_ = fs::path("gen-1") / "c000000" / "000000.xml";
  }

  void TearDown() override { fs::remove_all(dir_); }

  void Overwrite(const fs::path& relative, const std::string& content) {
    std::ofstream out(dir_ / relative,
                      std::ios::trunc | std::ios::binary);
    out << content;
  }

  std::string ReadBack(const fs::path& relative) {
    auto r = store::Env::Default()->ReadFile((dir_ / relative).string());
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : std::string();
  }

  fs::path dir_;
  fs::path doc0_;
};

TEST_F(CorruptStoreTest, IntactStoreOpensWithCleanReport) {
  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  auto coll = db->GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
  EXPECT_EQ(report.loaded_generation, "gen-1");
  EXPECT_FALSE(report.degraded());
}

TEST_F(CorruptStoreTest, MissingManifestIsIOError) {
  fs::remove(dir_ / "gen-1" / store::kManifestFileName);
  EXPECT_TRUE(store::Database::Open(dir_.string()).status().IsIOError());
}

TEST_F(CorruptStoreTest, TruncatedManifestIsRejected) {
  std::string manifest = ReadBack(fs::path("gen-1") /
                                  store::kManifestFileName);
  Overwrite(fs::path("gen-1") / store::kManifestFileName,
            manifest.substr(0, manifest.size() / 2));
  EXPECT_TRUE(store::Database::Open(dir_.string()).status().IsIOError());
}

TEST_F(CorruptStoreTest, TruncatedPayloadDetectedByByteCount) {
  std::string payload = ReadBack(doc0_);
  Overwrite(doc0_, payload.substr(0, payload.size() / 2));
  auto st = store::Database::Open(dir_.string()).status();
  ASSERT_TRUE(st.IsIOError()) << st;
  EXPECT_NE(st.message().find("truncated payload"), std::string::npos) << st;
}

TEST_F(CorruptStoreTest, ChecksumMismatchDetectedBySameLengthDamage) {
  // Same byte count, flipped content: only the CRC can catch this.
  std::string payload = ReadBack(doc0_);
  payload[payload.size() / 2] ^= 0x40;
  Overwrite(doc0_, payload);
  auto st = store::Database::Open(dir_.string()).status();
  ASSERT_TRUE(st.IsIOError()) << st;
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos) << st;
}

TEST_F(CorruptStoreTest, MissingDocumentFile) {
  fs::remove(dir_ / "gen-1" / "c000000" / "000001.xml");
  auto db = store::Database::Open(dir_.string());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST_F(CorruptStoreTest, GarbageCurrentPointerFallsBackToNewestIntactGen) {
  Overwrite(store::kCurrentFileName, "!!not a generation!!\n");
  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  auto coll = db->GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
  EXPECT_EQ(report.loaded_generation, "gen-1");
  ASSERT_TRUE(report.degraded());
  EXPECT_EQ(report.discarded[0].generation, "CURRENT");
}

TEST_F(CorruptStoreTest, CurrentPointingToMissingGenerationFallsBack) {
  Overwrite(store::kCurrentFileName, "gen-99\n");
  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(report.loaded_generation, "gen-1");
  ASSERT_EQ(report.discarded.size(), 1u);
  EXPECT_EQ(report.discarded[0].generation, "gen-99");
}

TEST_F(CorruptStoreTest, MissingCurrentStillFindsCommittedGeneration) {
  fs::remove(dir_ / store::kCurrentFileName);
  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(report.loaded_generation, "gen-1");
}

TEST_F(CorruptStoreTest, CorruptCurrentGenDegradesToOlderIntactGeneration) {
  // Fabricate a newer committed generation, then corrupt it: Open must
  // report the discard and serve the older intact one.
  fs::copy(dir_ / "gen-1", dir_ / "gen-2", fs::copy_options::recursive);
  Overwrite(store::kCurrentFileName, "gen-2\n");
  std::string payload = ReadBack(fs::path("gen-2") / "c000000" /
                                 "000000.xml");
  payload[0] ^= 0x01;
  Overwrite(fs::path("gen-2") / "c000000" / "000000.xml", payload);

  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  auto coll = db->GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
  EXPECT_EQ(report.loaded_generation, "gen-1");
  ASSERT_EQ(report.discarded.size(), 1u);
  EXPECT_EQ(report.discarded[0].generation, "gen-2");
  EXPECT_NE(report.discarded[0].reason.find("checksum"), std::string::npos);
}

TEST_F(CorruptStoreTest, StaleTmpGenerationIgnoredAndCleanedByNextSave) {
  // A gen-*.tmp left by a crashed save is never read by Open ...
  fs::create_directories(dir_ / "gen-7.tmp");
  Overwrite(fs::path("gen-7.tmp") / store::kManifestFileName,
            "partial garbage");
  store::RecoveryReport report;
  auto db = store::Database::Open(dir_.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(report.loaded_generation, "gen-1");
  EXPECT_FALSE(report.degraded());

  // ... numbers past it, and is removed by the next Save's cleanup.
  ASSERT_TRUE(db->Save(dir_.string()).ok());
  EXPECT_FALSE(fs::exists(dir_ / "gen-7.tmp"));
  EXPECT_TRUE(fs::exists(dir_ / "gen-8"));
  EXPECT_FALSE(fs::exists(dir_ / "gen-1"));
  store::RecoveryReport after;
  auto db2 = store::Database::Open(dir_.string(), store::Env::Default(),
                                   &after);
  ASSERT_TRUE(db2.ok()) << db2.status();
  EXPECT_EQ(after.loaded_generation, "gen-8");
}

TEST_F(CorruptStoreTest, AllGenerationsCorruptIsIOErrorListingReasons) {
  std::string payload = ReadBack(doc0_);
  payload[0] ^= 0x01;
  Overwrite(doc0_, payload);
  auto st = store::Database::Open(dir_.string()).status();
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("no intact snapshot"), std::string::npos) << st;
  EXPECT_NE(st.message().find("gen-1"), std::string::npos) << st;
}

TEST_F(CorruptStoreTest, LegacyFormatReadableAndMigratedBySave) {
  // Hand-write a pre-generational directory (manifest.txt + _keys.txt).
  fs::path legacy = fs::temp_directory_path() / "toss_failure_legacy";
  fs::remove_all(legacy);
  fs::create_directories(legacy / "dblp");
  {
    std::ofstream(legacy / "manifest.txt") << "dblp\n";
    std::ofstream(legacy / "dblp" / "_keys.txt") << "k1\nk2\n";
    std::ofstream(legacy / "dblp" / "000000.xml") << "<a><b>x</b></a>";
    std::ofstream(legacy / "dblp" / "000001.xml") << "<c/>";
  }
  store::RecoveryReport report;
  auto db = store::Database::Open(legacy.string(), store::Env::Default(),
                                  &report);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(report.used_legacy_format);
  EXPECT_EQ(report.loaded_generation, "legacy");
  auto coll = db->GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
  EXPECT_TRUE((*coll)->FindKey("k1").ok());

  // One re-save migrates forward: checksummed generation, legacy pointer
  // gone, and the reopened store no longer reports legacy.
  ASSERT_TRUE(db->Save(legacy.string()).ok());
  EXPECT_FALSE(fs::exists(legacy / "manifest.txt"));
  store::RecoveryReport migrated;
  auto db2 = store::Database::Open(legacy.string(), store::Env::Default(),
                                   &migrated);
  ASSERT_TRUE(db2.ok()) << db2.status();
  EXPECT_FALSE(migrated.used_legacy_format);
  EXPECT_EQ(migrated.loaded_generation, "gen-1");
  auto coll2 = db2->GetCollection("dblp");
  ASSERT_TRUE(coll2.ok());
  EXPECT_EQ((*coll2)->size(), 2u);
  fs::remove_all(legacy);
}

TEST_F(CorruptStoreTest, BulkLoadThroughFaultyEnvFailsCleanly) {
  store::FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  store::FaultInjectionEnv fenv(store::Env::Default(), opts);
  store::Database db;
  // WriteDumpFile's write is op 0 and faults; the error is surfaced.
  EXPECT_TRUE(data::WriteDumpFile({}, (dir_ / "dump.xml").string(), "dblp",
                                  &fenv)
                  .IsIOError());
  // Crashed env: reads fail too, and BulkLoadFile propagates them.
  EXPECT_TRUE(data::BulkLoadFile(&db, "c", (dir_ / "dump.xml").string(),
                                 "rec", &fenv)
                  .status()
                  .IsIOError());
}

TEST(CorruptSeoTest, TruncatedDocumentsRejected) {
  // Build a valid SEO text and truncate it at several points; every prefix
  // must fail cleanly with ParseError (never crash).
  ontology::Ontology onto;
  (void)onto.isa().AddTermEdge("a", "b");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(1.0);
  auto seo = builder.Build();
  ASSERT_TRUE(seo.ok());
  std::string full = core::FormatSeo(*seo);
  // Any prefix that ends before the first "end-enhancement" terminator
  // cannot be a complete document; such truncations must fail cleanly
  // (ParseError for structural damage, NotFound for a truncated measure
  // name -- any typed error is acceptable, crashing is not).
  size_t first_terminator = full.find("end-enhancement");
  ASSERT_NE(first_terminator, std::string::npos);
  for (size_t cut = 0; cut < first_terminator; cut += 7) {
    auto r = core::ParseSeoText(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " parsed";
  }
  // The untruncated document parses.
  Status full_status = core::ParseSeoText(full).status();
  EXPECT_TRUE(full_status.ok()) << full_status;
}

TEST(CorruptLexiconTest, TruncatedLinesFailCleanly) {
  const char* kBroken[] = {
      "synset",          "isa",
      "isa: a",          "isa: a ->",
      "partof: -> b",    "synset: |",
  };
  for (const char* text : kBroken) {
    auto r = lexicon::ParseLexiconText(text);
    EXPECT_FALSE(r.ok()) << text;
  }
}

TEST(InconsistentPipelineTest, ContradictoryConstraintsSurface) {
  // Two sources whose constraints force a <= b and b <= a across distinct
  // nodes of the same hierarchy: fusion must fail, and SeoBuilder must
  // propagate the failure.
  ontology::Ontology o1, o2;
  (void)o1.isa().AddTermEdge("x", "y");
  o2.isa().EnsureTerm("z");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(o1);
  builder.AddInstanceOntology(o2);
  builder.AddConstraints(
      ontology::kIsa,
      {ontology::Leq("y", 0, "z", 1), ontology::Leq("z", 1, "x", 0)});
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(0.0);
  auto seo = builder.Build();
  ASSERT_FALSE(seo.ok());
  EXPECT_TRUE(seo.status().IsInconsistent());
}

TEST(InconsistentPipelineTest, SimilarityInconsistencySurfaces) {
  // Ordered chain whose endpoints both merge with close middles: SEA
  // reports inconsistency through the builder.
  ontology::Ontology onto;
  auto& h = onto.isa();
  auto a = h.AddNode({"term1"});
  auto b = h.AddNode({"term2"});
  auto c = h.AddNode({"other1"});
  auto d = h.AddNode({"other2"});
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  ASSERT_TRUE(h.AddEdge(d, b).ok());
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(1.0);
  auto seo = builder.Build();
  ASSERT_FALSE(seo.ok());
  EXPECT_TRUE(seo.status().IsInconsistent()) << seo.status();
}

TEST(ExecutorErrorTest, IllTypedQuerySurfacesTypeError) {
  store::Database db;
  auto coll = db.CreateCollection("c");
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->InsertXml("k", "<part><width>5</width></part>").ok());

  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  ASSERT_TRUE(types.AddType("color").ok());

  ontology::Ontology onto;
  onto.isa().EnsureTerm("part");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(0.0);
  auto seo = builder.Build();
  ASSERT_TRUE(seo.ok());

  core::QueryExecutor exec(&db, &*seo, &types);
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(tax::ParseCondition("$1.tag = \"part\" & "
                                      "$2.tag = \"width\" & "
                                      "$2.content < \"red\":color")
                      .value());
  auto r = exec.Select("c", pt, {1}, core::QueryOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError()) << r.status();
}

TEST(BulkLoaderErrorTest, EmptyAndGarbageInputs) {
  store::Database db;
  EXPECT_TRUE(data::BulkLoadXml(&db, "a", "").status().IsParseError());
  EXPECT_TRUE(
      data::BulkLoadXml(&db, "b", "not xml at all").status().IsParseError());
  EXPECT_TRUE(data::BulkLoadFile(&db, "c", "/nonexistent/path.xml")
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace toss
