// Failure injection: corrupted on-disk state, inconsistent inputs, and
// mid-pipeline errors must surface as typed Status values, never crashes
// or silent corruption.

#include <gtest/gtest.h>

#include <filesystem>
#include <cstring>
#include <fstream>

#include "core/toss.h"
#include "data/bulk_loader.h"

namespace toss {
namespace {

namespace fs = std::filesystem;

class CorruptStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "toss_failure_test";
    fs::remove_all(dir_);
    store::Database db;
    auto coll = db.CreateCollection("dblp");
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->InsertXml("k1", "<a><b>x</b></a>").ok());
    ASSERT_TRUE((*coll)->InsertXml("k2", "<c/>").ok());
    ASSERT_TRUE(db.Save(dir_.string()).ok());
  }

  void TearDown() override { fs::remove_all(dir_); }

  void Overwrite(const fs::path& relative, const std::string& content) {
    std::ofstream out(dir_ / relative, std::ios::trunc);
    out << content;
  }

  fs::path dir_;
};

TEST_F(CorruptStoreTest, IntactStoreOpens) {
  auto db = store::Database::Open(dir_.string());
  ASSERT_TRUE(db.ok()) << db.status();
  auto coll = db->GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->size(), 2u);
}

TEST_F(CorruptStoreTest, MissingManifestIsIOError) {
  fs::remove(dir_ / "manifest.txt");
  EXPECT_TRUE(store::Database::Open(dir_.string()).status().IsIOError());
}

TEST_F(CorruptStoreTest, ManifestPointingToMissingCollection) {
  Overwrite("manifest.txt", "dblp\nghost\n");
  auto db = store::Database::Open(dir_.string());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST_F(CorruptStoreTest, CorruptDocumentXml) {
  Overwrite(fs::path("dblp") / "000000.xml", "<a><unclosed>");
  auto db = store::Database::Open(dir_.string());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsParseError()) << db.status();
}

TEST_F(CorruptStoreTest, MissingDocumentFile) {
  fs::remove(dir_ / "dblp" / "000001.xml");
  auto db = store::Database::Open(dir_.string());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST_F(CorruptStoreTest, MissingKeysFile) {
  fs::remove(dir_ / "dblp" / "_keys.txt");
  EXPECT_TRUE(store::Database::Open(dir_.string()).status().IsIOError());
}

TEST(CorruptSeoTest, TruncatedDocumentsRejected) {
  // Build a valid SEO text and truncate it at several points; every prefix
  // must fail cleanly with ParseError (never crash).
  ontology::Ontology onto;
  (void)onto.isa().AddTermEdge("a", "b");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(1.0);
  auto seo = builder.Build();
  ASSERT_TRUE(seo.ok());
  std::string full = core::FormatSeo(*seo);
  // Any prefix that ends before the first "end-enhancement" terminator
  // cannot be a complete document; such truncations must fail cleanly
  // (ParseError for structural damage, NotFound for a truncated measure
  // name -- any typed error is acceptable, crashing is not).
  size_t first_terminator = full.find("end-enhancement");
  ASSERT_NE(first_terminator, std::string::npos);
  for (size_t cut = 0; cut < first_terminator; cut += 7) {
    auto r = core::ParseSeoText(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " parsed";
  }
  // The untruncated document parses.
  Status full_status = core::ParseSeoText(full).status();
  EXPECT_TRUE(full_status.ok()) << full_status;
}

TEST(CorruptLexiconTest, TruncatedLinesFailCleanly) {
  const char* kBroken[] = {
      "synset",          "isa",
      "isa: a",          "isa: a ->",
      "partof: -> b",    "synset: |",
  };
  for (const char* text : kBroken) {
    auto r = lexicon::ParseLexiconText(text);
    EXPECT_FALSE(r.ok()) << text;
  }
}

TEST(InconsistentPipelineTest, ContradictoryConstraintsSurface) {
  // Two sources whose constraints force a <= b and b <= a across distinct
  // nodes of the same hierarchy: fusion must fail, and SeoBuilder must
  // propagate the failure.
  ontology::Ontology o1, o2;
  (void)o1.isa().AddTermEdge("x", "y");
  o2.isa().EnsureTerm("z");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(o1);
  builder.AddInstanceOntology(o2);
  builder.AddConstraints(
      ontology::kIsa,
      {ontology::Leq("y", 0, "z", 1), ontology::Leq("z", 1, "x", 0)});
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(0.0);
  auto seo = builder.Build();
  ASSERT_FALSE(seo.ok());
  EXPECT_TRUE(seo.status().IsInconsistent());
}

TEST(InconsistentPipelineTest, SimilarityInconsistencySurfaces) {
  // Ordered chain whose endpoints both merge with close middles: SEA
  // reports inconsistency through the builder.
  ontology::Ontology onto;
  auto& h = onto.isa();
  auto a = h.AddNode({"term1"});
  auto b = h.AddNode({"term2"});
  auto c = h.AddNode({"other1"});
  auto d = h.AddNode({"other2"});
  ASSERT_TRUE(h.AddEdge(a, c).ok());
  ASSERT_TRUE(h.AddEdge(d, b).ok());
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(1.0);
  auto seo = builder.Build();
  ASSERT_FALSE(seo.ok());
  EXPECT_TRUE(seo.status().IsInconsistent()) << seo.status();
}

TEST(ExecutorErrorTest, IllTypedQuerySurfacesTypeError) {
  store::Database db;
  auto coll = db.CreateCollection("c");
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->InsertXml("k", "<part><width>5</width></part>").ok());

  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  ASSERT_TRUE(types.AddType("color").ok());

  ontology::Ontology onto;
  onto.isa().EnsureTerm("part");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(0.0);
  auto seo = builder.Build();
  ASSERT_TRUE(seo.ok());

  core::QueryExecutor exec(&db, &*seo, &types);
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(tax::ParseCondition("$1.tag = \"part\" & "
                                      "$2.tag = \"width\" & "
                                      "$2.content < \"red\":color")
                      .value());
  auto r = exec.Select("c", pt, {1}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError()) << r.status();
}

TEST(BulkLoaderErrorTest, EmptyAndGarbageInputs) {
  store::Database db;
  EXPECT_TRUE(data::BulkLoadXml(&db, "a", "").status().IsParseError());
  EXPECT_TRUE(
      data::BulkLoadXml(&db, "b", "not xml at all").status().IsParseError());
  EXPECT_TRUE(data::BulkLoadFile(&db, "c", "/nonexistent/path.xml")
                  .status()
                  .IsIOError());
}

}  // namespace
}  // namespace toss
