#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "sim/measure_registry.h"
#include "sim/node_measure.h"
#include "sim/soft_tfidf.h"
#include "sim/string_measure.h"

namespace toss::sim {
namespace {

// ---------------------------------------------------------------------------
// Known values
// ---------------------------------------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  LevenshteinMeasure m;
  EXPECT_DOUBLE_EQ(m.Distance("", ""), 0);
  EXPECT_DOUBLE_EQ(m.Distance("abc", ""), 3);
  EXPECT_DOUBLE_EQ(m.Distance("kitten", "sitting"), 3);
  EXPECT_DOUBLE_EQ(m.Distance("flaw", "lawn"), 2);
  // The paper's Example 11 pairs:
  EXPECT_DOUBLE_EQ(m.Distance("relation", "relational"), 2);
  EXPECT_DOUBLE_EQ(m.Distance("model", "models"), 1);
  // Section 2.2 motivating names:
  EXPECT_DOUBLE_EQ(m.Distance("Gian Luigi Ferrari", "GianLuigi Ferrari"), 1);
  EXPECT_DOUBLE_EQ(m.Distance("Marco Ferrari", "Mauro Ferrari"), 2);
}

TEST(LevenshteinTest, BoundedMatchesExactWithinBound) {
  LevenshteinMeasure m;
  Random rng(123);
  for (int i = 0; i < 300; ++i) {
    std::string a = rng.AlphaString(1 + rng.Uniform(20));
    std::string b = rng.AlphaString(1 + rng.Uniform(20));
    double exact = m.Distance(a, b);
    for (double bound : {0.0, 1.0, 2.0, 3.0, 5.0, 30.0}) {
      double bounded = m.BoundedDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_DOUBLE_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b;
      }
    }
  }
}

TEST(DamerauTest, TranspositionCostsOne) {
  DamerauLevenshteinMeasure m;
  EXPECT_DOUBLE_EQ(m.Distance("ab", "ba"), 1);
  EXPECT_DOUBLE_EQ(m.Distance("ullman", "ulmlan"), 1);
  LevenshteinMeasure lev;
  EXPECT_DOUBLE_EQ(lev.Distance("ab", "ba"), 2);
}

TEST(CaseInsensitiveTest, IgnoresCase) {
  CaseInsensitiveLevenshteinMeasure m;
  EXPECT_DOUBLE_EQ(m.Distance("SIGMOD", "sigmod"), 0);
  EXPECT_DOUBLE_EQ(m.Distance("VLDB", "vldbx"), 1);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dwayne", "duane"), 0.8222, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("martha", "marhta");
  double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.9611, 1e-3);
  // No boost below the 0.7 gate.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xyz"), 0.0);
}

TEST(MongeElkanTest, TokenLevelMatching) {
  MongeElkanMeasure m;
  // Reordered tokens are near-zero distance.
  EXPECT_LT(m.Distance("Ullman Jeffrey", "Jeffrey Ullman"), 0.5);
  EXPECT_DOUBLE_EQ(m.Distance("same words", "same words"), 0.0);
  EXPECT_GT(m.Distance("completely different", "unrelated thing"), 3.0);
}

TEST(JaccardTest, TokenSets) {
  JaccardMeasure m(10.0);
  EXPECT_DOUBLE_EQ(m.Distance("a b c", "a b c"), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance("a b", "b c"), 10.0 * (1.0 - 1.0 / 3.0));
  EXPECT_DOUBLE_EQ(m.Distance("a", "b"), 10.0);
  EXPECT_DOUBLE_EQ(m.Distance("", ""), 0.0);
}

TEST(QGramCosineTest, Basics) {
  QGramCosineMeasure m(3, 10.0);
  EXPECT_DOUBLE_EQ(m.Distance("abcdef", "abcdef"), 0.0);
  EXPECT_GT(m.Distance("abcdef", "zzzzzz"), 9.0);
  double close = m.Distance("conference", "conferences");
  EXPECT_LT(close, 3.0);
}

TEST(PersonNameTest, DomainRules) {
  PersonNameMeasure m;
  EXPECT_DOUBLE_EQ(m.Distance("Jeffrey Ullman", "Jeffrey Ullman"), 0.0);
  // Initial-compatible forms are very close under the rules.
  EXPECT_LE(m.Distance("J. Ullman", "Jeffrey Ullman"), 2.0);
  EXPECT_LE(m.Distance("J. D. Ullman", "Jeffrey D. Ullman"), 2.0);
  EXPECT_DOUBLE_EQ(m.Distance("Gian Luigi Ferrari", "GianLuigi Ferrari"),
                   0.0);  // same tokens after camel-case splitting
  // Same last name, different given names: moderately far.
  double marco = m.Distance("Marco Ferrari", "Mauro Ferrari");
  EXPECT_GT(marco, 2.0);
  // Different last names: far.
  EXPECT_GE(m.Distance("Marco Ferrari", "Jeffrey Ullman"), 4.0);
}

TEST(SoftTfIdfTest, UntrainedSoftMatching) {
  SoftTfIdfMeasure m;
  EXPECT_FALSE(m.trained());
  EXPECT_DOUBLE_EQ(m.Distance("jeffrey ullman", "jeffrey ullman"), 0.0);
  // Token typo within the 0.9 Jaro-Winkler gate still soft-matches.
  EXPECT_LT(m.Distance("jeffrey ullman", "jeffery ullman"), 2.0);
  // Token order does not matter.
  EXPECT_LT(m.Distance("ullman jeffrey", "jeffrey ullman"), 0.5);
  EXPECT_GT(m.Distance("jeffrey ullman", "serge abiteboul"), 8.0);
  EXPECT_DOUBLE_EQ(m.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance("x", ""), 10.0);
}

TEST(SoftTfIdfTest, TrainingDownweightsUbiquitousTokens) {
  // "conference" appears everywhere; "sigmod" is discriminative. After
  // training, sharing only the ubiquitous token is a much weaker match
  // than sharing the rare one.
  std::vector<std::string> corpus = {
      "sigmod conference", "vldb conference", "icde conference",
      "pods conference",   "kdd conference",  "sigir conference",
  };
  SoftTfIdfMeasure trained;
  trained.Train(corpus);
  EXPECT_TRUE(trained.trained());
  EXPECT_GT(trained.vocabulary_size(), 5u);
  double shares_rare =
      trained.Distance("sigmod conference", "sigmod workshop");
  double shares_common =
      trained.Distance("sigmod conference", "vldb conference");
  EXPECT_LT(shares_rare, shares_common);

  // Untrained, the comparison is weight-symmetric.
  SoftTfIdfMeasure untrained;
  double u_rare = untrained.Distance("sigmod conference", "sigmod workshop");
  double u_common = untrained.Distance("sigmod conference",
                                       "vldb conference");
  EXPECT_NEAR(u_rare, u_common, 1e-9);
}

TEST(SoftTfIdfTest, RegisteredUntrained) {
  auto m = MakeMeasure("soft-tfidf");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->name(), "soft-tfidf");
  EXPECT_FALSE((*m)->is_strong());
}

// ---------------------------------------------------------------------------
// Measure axioms (property tests over the registry)
// ---------------------------------------------------------------------------

class MeasureAxiomsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MeasureAxiomsTest, IdentitySymmetryNonNegativity) {
  auto m = MakeMeasure(GetParam());
  ASSERT_TRUE(m.ok());
  Random rng(99);
  std::vector<std::string> samples = {
      "",          "a",        "SIGMOD Conference", "J. Ullman",
      "J. Ullman", "database", "Jeffrey D. Ullman",
  };
  for (int i = 0; i < 30; ++i) {
    samples.push_back(rng.AlphaString(rng.Uniform(15)));
  }
  for (const auto& x : samples) {
    EXPECT_DOUBLE_EQ((*m)->Distance(x, x), 0.0) << GetParam() << " " << x;
    for (const auto& y : samples) {
      double d1 = (*m)->Distance(x, y);
      double d2 = (*m)->Distance(y, x);
      EXPECT_GE(d1, 0.0) << GetParam();
      EXPECT_DOUBLE_EQ(d1, d2) << GetParam() << ": " << x << " / " << y;
    }
  }
}

TEST_P(MeasureAxiomsTest, StrongMeasuresSatisfyTriangleInequality) {
  auto m = MakeMeasure(GetParam());
  ASSERT_TRUE(m.ok());
  if (!(*m)->is_strong()) GTEST_SKIP() << GetParam() << " is not strong";
  Random rng(7);
  std::vector<std::string> samples;
  for (int i = 0; i < 12; ++i) {
    samples.push_back(rng.AlphaString(1 + rng.Uniform(10)));
  }
  samples.push_back("relation");
  samples.push_back("relational");
  samples.push_back("relations");
  for (const auto& x : samples) {
    for (const auto& y : samples) {
      for (const auto& z : samples) {
        EXPECT_LE((*m)->Distance(x, z),
                  (*m)->Distance(x, y) + (*m)->Distance(y, z) + 1e-9)
            << GetParam() << ": " << x << "," << y << "," << z;
      }
    }
  }
}

TEST_P(MeasureAxiomsTest, BoundedDistanceContract) {
  auto m = MakeMeasure(GetParam());
  ASSERT_TRUE(m.ok());
  Random rng(13);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.AlphaString(rng.Uniform(12));
    std::string b = rng.AlphaString(rng.Uniform(12));
    double exact = (*m)->Distance(a, b);
    double bound = static_cast<double>(rng.Uniform(6));
    double bounded = (*m)->BoundedDistance(a, b, bound);
    if (exact <= bound) {
      EXPECT_DOUBLE_EQ(bounded, exact);
    } else {
      EXPECT_GT(bounded, bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasureAxiomsTest,
                         ::testing::ValuesIn(MeasureNames()));

TEST(MeasureRegistryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeMeasure("no-such-measure").status().IsNotFound());
}

TEST(MeasureRegistryTest, AllListedNamesResolve) {
  for (const auto& name : MeasureNames()) {
    auto m = MakeMeasure(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ((*m)->name(), name);
  }
}

// ---------------------------------------------------------------------------
// Node-level distance (Def. 7, Lemma 1)
// ---------------------------------------------------------------------------

TEST(NodeMeasureTest, MinOverCrossPairs) {
  LevenshteinMeasure m;
  std::vector<std::string> a{"model", "xxxxxxx"};
  std::vector<std::string> b{"models", "yyyyyyyy"};
  EXPECT_DOUBLE_EQ(NodeDistance(a, b, m), 1.0);
}

TEST(NodeMeasureTest, EmptyNodeIsInfinitelyFar) {
  LevenshteinMeasure m;
  EXPECT_TRUE(std::isinf(NodeDistance({}, {"x"}, m)));
}

TEST(NodeMeasureTest, Lemma1FastPathAgreesWhenWithinNodeDistanceZero) {
  // Strong measure + all strings within a node equal => one representative
  // pair suffices (Lemma 1).
  CaseInsensitiveLevenshteinMeasure m;  // "VLDB" ~ "vldb" at distance 0
  std::vector<std::string> a{"VLDB", "vldb"};
  std::vector<std::string> b{"vldbx", "VLDBX"};
  double slow = NodeDistance(a, b, m, /*assume_zero_within=*/false);
  double fast = NodeDistance(a, b, m, /*assume_zero_within=*/true);
  EXPECT_DOUBLE_EQ(slow, fast);
  EXPECT_DOUBLE_EQ(fast, 1.0);
}

TEST(NodeMeasureTest, BoundedNodeDistanceContract) {
  LevenshteinMeasure m;
  std::vector<std::string> a{"relation"};
  std::vector<std::string> b{"relational"};
  EXPECT_DOUBLE_EQ(BoundedNodeDistance(a, b, m, 5.0), 2.0);
  EXPECT_GT(BoundedNodeDistance(a, b, m, 1.0), 1.0);
}

}  // namespace
}  // namespace toss::sim
