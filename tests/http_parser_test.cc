// RequestParser units and properties: correctness under torn reads (any
// byte split), pipelined bursts, hostile bytes, and the bounded-buffer
// limits. No sockets anywhere -- the parser is pure bytes-in,
// requests-out, which is what makes exhaustive splitting feasible.

#include "net/http.h"

#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace toss::net {
namespace {

using Result = RequestParser::Result;

HttpRequest MustParse(const std::string& bytes) {
  RequestParser parser;
  parser.Feed(bytes);
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kReady) << parser.error_message();
  return req;
}

int MustFail(const std::string& bytes) {
  RequestParser parser;
  parser.Feed(bytes);
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kError);
  return parser.error_status();
}

TEST(HttpParser, ParsesASimpleGet) {
  HttpRequest req = MustParse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.minor_version, 1);
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
  ASSERT_NE(req.FindHeader("host"), nullptr);
  EXPECT_EQ(*req.FindHeader("host"), "x");
  EXPECT_EQ(*req.FindHeader("HOST"), "x");  // lookup is case-insensitive
}

TEST(HttpParser, ParsesAPostWithBody) {
  HttpRequest req = MustParse(
      "POST /v1/query HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "hello world");
}

TEST(HttpParser, HeaderNamesLowercasedValuesTrimmed) {
  HttpRequest req = MustParse(
      "GET / HTTP/1.1\r\nX-Thing:   padded value \t\r\n\r\n");
  ASSERT_NE(req.FindHeader("x-thing"), nullptr);
  EXPECT_EQ(req.headers[0].first, "x-thing");
  EXPECT_EQ(*req.FindHeader("x-thing"), "padded value");
}

TEST(HttpParser, ConnectionSemantics) {
  EXPECT_TRUE(MustParse("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      MustParse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_FALSE(MustParse("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      MustParse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(HttpParser, ZeroLengthBodyIsReadyImmediately) {
  HttpRequest req =
      MustParse("POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_TRUE(req.body.empty());
}

// --- Error taxonomy --------------------------------------------------------

TEST(HttpParser, MalformedRequestLinesAre400) {
  EXPECT_EQ(MustFail("GET\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("GET /\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("GET  HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("G@T / HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("GET / NOTHTTP\r\n\r\n"), 400);
}

TEST(HttpParser, BareLfIsRejectedNotTolerated) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\nHost: x\n\n");
  HttpRequest req;
  // No CRLFCRLF ever arrives; flood protection or more bytes decide. Add
  // the CRLF form of the terminator and the buffered bare-LF head fails.
  parser.Feed("\r\n\r\n");
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, UnsupportedVersionIs505) {
  EXPECT_EQ(MustFail("GET / HTTP/2.0\r\n\r\n"), 505);
  EXPECT_EQ(MustFail("GET / HTTP/0.9\r\n\r\n"), 505);
}

TEST(HttpParser, TransferEncodingIs501) {
  EXPECT_EQ(
      MustFail("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"), 501);
}

TEST(HttpParser, MalformedContentLengthIs400) {
  EXPECT_EQ(MustFail("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("POST / HTTP/1.1\r\nContent-Length:\r\n\r\n"), 400);
}

TEST(HttpParser, ConflictingContentLengthsAre400) {
  EXPECT_EQ(MustFail("POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                     "Content-Length: 4\r\n\r\n"),
            400);
  // Duplicates that agree are fine.
  HttpRequest req = MustParse(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
  EXPECT_EQ(req.body, "ok");
}

TEST(HttpParser, ControlBytesInHeaderValueAre400) {
  EXPECT_EQ(MustFail("GET / HTTP/1.1\r\nX: a\x01z\r\n\r\n"), 400);
  EXPECT_EQ(MustFail("GET / HTTP/1.1\r\nX: a\x7fz\r\n\r\n"), 400);
}

TEST(HttpParser, ObsoleteLineFoldingIs400) {
  EXPECT_EQ(MustFail("GET / HTTP/1.1\r\nX: a\r\n  folded\r\n\r\n"), 400);
}

TEST(HttpParser, HeaderWithoutColonIs400) {
  EXPECT_EQ(MustFail("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"), 400);
}

TEST(HttpParser, ErrorsAreSticky) {
  RequestParser parser;
  parser.Feed("BAD\r\n\r\n");
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kError);
  parser.Feed("GET / HTTP/1.1\r\n\r\n");  // dropped, not buffered
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

// --- Limits ----------------------------------------------------------------

TEST(HttpParser, OversizeHeadIs431) {
  ParserLimits limits;
  limits.max_head_bytes = 128;
  RequestParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX: " + std::string(200, 'a') + "\r\n\r\n");
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizeHeadDetectedBeforeTerminatorArrives) {
  // The flood never sends \r\n\r\n; the parser must still cap its buffer.
  ParserLimits limits;
  limits.max_head_bytes = 128;
  RequestParser parser(limits);
  HttpRequest req;
  parser.Feed("GET / HTTP/1.1\r\nX: ");
  EXPECT_EQ(parser.Next(&req), Result::kNeedMore);
  parser.Feed(std::string(500, 'a'));
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, TooManyHeadersIs431) {
  ParserLimits limits;
  limits.max_headers = 4;
  std::string head = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    head += "H" + std::to_string(i) + ": v\r\n";
  }
  RequestParser parser(limits);
  parser.Feed(head + "\r\n");
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizeDeclaredBodyIs413) {
  ParserLimits limits;
  limits.max_body_bytes = 64;
  RequestParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), Result::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, AbsurdContentLengthDoesNotOverflow) {
  EXPECT_EQ(MustFail("POST / HTTP/1.1\r\nContent-Length: "
                     "99999999999999999999999999\r\n\r\n"),
            413);
}

// --- Incremental delivery --------------------------------------------------

const char kPost[] =
    "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 17\r\n\r\n"
    "{\"text\":\"SELECT\"}";

void ExpectPostParses(RequestParser& parser) {
  HttpRequest req;
  ASSERT_EQ(parser.Next(&req), Result::kReady) << parser.error_message();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/v1/query");
  EXPECT_EQ(req.body, "{\"text\":\"SELECT\"}");
}

TEST(HttpParserProperty, ByteAtATimeDelivery) {
  const std::string bytes = kPost;
  RequestParser parser;
  HttpRequest req;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.Feed(bytes.substr(i, 1));
    ASSERT_EQ(parser.Next(&req), Result::kNeedMore)
        << "spuriously complete after byte " << i;
  }
  parser.Feed(bytes.substr(bytes.size() - 1));
  ExpectPostParses(parser);
}

TEST(HttpParserProperty, EverySingleSplitPoint) {
  const std::string bytes = kPost;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    RequestParser parser;
    parser.Feed(bytes.substr(0, cut));
    parser.Feed(bytes.substr(cut));
    SCOPED_TRACE("cut at " + std::to_string(cut));
    ExpectPostParses(parser);
  }
}

TEST(HttpParserProperty, RandomTornReadsDeterministicSeeds) {
  const std::string bytes = kPost;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed);
    RequestParser parser;
    size_t pos = 0;
    while (pos < bytes.size()) {
      const size_t n = 1 + rng() % (bytes.size() - pos);
      parser.Feed(bytes.substr(pos, n));
      pos += n;
    }
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectPostParses(parser);
  }
}

TEST(HttpParserProperty, PipelinedBurstYieldsEveryRequestInOrder) {
  std::string burst;
  const size_t kN = 20;
  for (size_t i = 0; i < kN; ++i) {
    const std::string body = "body-" + std::to_string(i);
    burst += "POST /r/" + std::to_string(i) +
             " HTTP/1.1\r\nContent-Length: " + std::to_string(body.size()) +
             "\r\n\r\n" + body;
  }
  // Deliver the whole burst in random chunks, then drain.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(seed);
    RequestParser parser;
    std::vector<HttpRequest> got;
    size_t pos = 0;
    while (pos < burst.size()) {
      const size_t n = 1 + rng() % 97;
      parser.Feed(burst.substr(pos, n));
      pos += n;
      HttpRequest req;
      while (parser.Next(&req) == Result::kReady) {
        got.push_back(std::move(req));
      }
      ASSERT_FALSE(parser.failed()) << parser.error_message();
    }
    ASSERT_EQ(got.size(), kN);
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(got[i].target, "/r/" + std::to_string(i));
      EXPECT_EQ(got[i].body, "body-" + std::to_string(i));
    }
  }
}

TEST(HttpParserProperty, StrayCrlfBetweenPipelinedRequestsIsSkipped) {
  RequestParser parser;
  parser.Feed("\r\nGET /a HTTP/1.1\r\n\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(parser.Next(&req), Result::kReady);
  EXPECT_EQ(req.target, "/a");
  ASSERT_EQ(parser.Next(&req), Result::kReady);
  EXPECT_EQ(req.target, "/b");
  EXPECT_EQ(parser.Next(&req), Result::kNeedMore);
}

TEST(HttpParserProperty, HostileBytesNeverCrashOnlyFail) {
  // Random byte soup: the parser must answer kNeedMore or kError, never
  // crash, and once failed must stay failed.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    std::mt19937_64 rng(seed);
    RequestParser parser;
    HttpRequest req;
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::string bytes(1 + rng() % 64, '\0');
      for (char& c : bytes) c = static_cast<char>(rng() % 256);
      parser.Feed(bytes);
      const Result r = parser.Next(&req);
      if (r == Result::kError) {
        EXPECT_TRUE(parser.failed());
        EXPECT_NE(parser.error_status(), 0);
        break;
      }
    }
  }
}

TEST(HttpParserProperty, BodyBytesArePassedThroughVerbatim) {
  // Bodies are opaque: any byte value must survive, including NUL and CR.
  std::string body(256, '\0');
  for (size_t i = 0; i < body.size(); ++i) body[i] = static_cast<char>(i);
  RequestParser parser;
  parser.Feed("POST /bin HTTP/1.1\r\nContent-Length: 256\r\n\r\n");
  parser.Feed(body);
  HttpRequest req;
  ASSERT_EQ(parser.Next(&req), Result::kReady);
  EXPECT_EQ(req.body, body);
}

}  // namespace
}  // namespace toss::net
