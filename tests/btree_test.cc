#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "store/btree.h"
#include "store/key_encoding.h"

namespace toss::store {
namespace {

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

TEST(KeyEncodingTest, EncodeOrderedIntPreservesNumericOrder) {
  Random rng(17);
  std::vector<long long> values = {-1000000, -42, -1, 0, 1, 7,
                                   1998,     2000, 123456789};
  for (int i = 0; i < 40; ++i) {
    values.push_back(rng.UniformRange(-1000000000LL, 1000000000LL));
  }
  for (long long a : values) {
    for (long long b : values) {
      auto ea = EncodeOrderedInt(std::to_string(a));
      auto eb = EncodeOrderedInt(std::to_string(b));
      ASSERT_TRUE(ea.has_value());
      ASSERT_TRUE(eb.has_value());
      EXPECT_EQ(a < b, *ea < *eb) << a << " vs " << b;
      EXPECT_EQ(a == b, *ea == *eb);
    }
  }
}

TEST(KeyEncodingTest, NonCanonicalSpellingsNormalize) {
  EXPECT_EQ(EncodeOrderedInt("007"), EncodeOrderedInt("7"));
  EXPECT_EQ(EncodeOrderedInt(" 42 "), EncodeOrderedInt("42"));
  EXPECT_EQ(EncodeOrderedInt("abc"), std::nullopt);
  EXPECT_EQ(EncodeOrderedInt("3.5"), std::nullopt);
  EXPECT_EQ(EncodeOrderedInt(""), std::nullopt);
}

TEST(KeyEncodingTest, CompositeKeysAndPrefixBounds) {
  std::string key = ValueKey("year", "1999");
  EXPECT_EQ(key, std::string("year") + kKeySep + "1999");
  // Every key with the tag prefix sorts below the prefix end.
  std::string end = TagPrefixEnd("year");
  EXPECT_LT(key, end);
  EXPECT_LT(ValueKey("year", "\xf0\xf0"), end);
  // Keys of other tags sort outside.
  EXPECT_GT(ValueKey("zzz", "1"), end);
  auto numeric = NumericKey("year", "1999");
  ASSERT_TRUE(numeric.has_value());
  EXPECT_LT(*numeric, end);
  EXPECT_EQ(NumericKey("year", "abc"), std::nullopt);
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.key_count(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.Get("x"), nullptr);
  EXPECT_TRUE(tree.DocsInRange("a", "z").empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndGet) {
  BPlusTree tree;
  tree.Insert("year\x1f""1999", 1);
  tree.Insert("year\x1f""1999", 2);
  tree.Insert("year\x1f""1999", 2);  // idempotent
  tree.Insert("year\x1f""2000", 3);
  EXPECT_EQ(tree.key_count(), 2u);
  auto* p = tree.Get("year\x1f""1999");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (std::vector<DocId>{1, 2}));
  EXPECT_EQ(tree.Get("year\x1f""1998"), nullptr);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, RemoveAndTombstones) {
  BPlusTree tree;
  tree.Insert("k", 1);
  tree.Insert("k", 2);
  EXPECT_TRUE(tree.Remove("k", 1));
  EXPECT_FALSE(tree.Remove("k", 1));
  EXPECT_FALSE(tree.Remove("ghost", 1));
  EXPECT_EQ(tree.key_count(), 1u);
  EXPECT_TRUE(tree.Remove("k", 2));
  EXPECT_EQ(tree.key_count(), 0u);
  // Tombstoned keys are invisible to scans but revivable.
  EXPECT_TRUE(tree.DocsInRange("a", "z").empty());
  tree.Insert("k", 9);
  EXPECT_EQ(tree.key_count(), 1u);
  EXPECT_EQ(tree.DocsInRange("a", "z"), std::vector<DocId>{9});
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, SplitsGrowHeightUniformly) {
  BPlusTree tree;
  // Enough distinct keys to force several levels at fanout 32.
  for (int i = 0; i < 5000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    tree.Insert(buf, static_cast<DocId>(i));
  }
  EXPECT_EQ(tree.key_count(), 5000u);
  EXPECT_GE(tree.height(), 3u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Spot-check lookups across the key space.
  for (int i = 0; i < 5000; i += 379) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    auto* p = tree.Get(buf);
    ASSERT_NE(p, nullptr) << buf;
    EXPECT_EQ((*p)[0], static_cast<DocId>(i));
  }
}

TEST(BPlusTreeTest, RangeScanInclusiveBounds) {
  BPlusTree tree;
  for (int year = 1990; year <= 2005; ++year) {
    tree.Insert(std::to_string(year), static_cast<DocId>(year));
  }
  EXPECT_EQ(tree.DocsInRange("1998", "2000"),
            (std::vector<DocId>{1998, 1999, 2000}));
  EXPECT_EQ(tree.DocsInRange("1990", "1990"), std::vector<DocId>{1990});
  EXPECT_TRUE(tree.DocsInRange("2006", "2010").empty());
  EXPECT_TRUE(tree.DocsInRange("2000", "1998").empty());  // hi < lo
  // Scan callback order and early stop.
  std::vector<std::string> keys;
  tree.RangeScan("1995", "2002",
                 [&](const std::string& k, const std::vector<DocId>&) {
                   keys.push_back(k);
                   return keys.size() < 3;
                 });
  EXPECT_EQ(keys, (std::vector<std::string>{"1995", "1996", "1997"}));
}

TEST(BPlusTreeTest, CompactDropsTombstones) {
  BPlusTree tree;
  for (int i = 0; i < 200; ++i) {
    tree.Insert("k" + std::to_string(i), static_cast<DocId>(i));
  }
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(tree.Remove("k" + std::to_string(i), static_cast<DocId>(i)));
  }
  EXPECT_EQ(tree.key_count(), 100u);
  tree.Compact();
  EXPECT_EQ(tree.key_count(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Get("k1")->front(), 1u);
  EXPECT_EQ(tree.Get("k2"), nullptr);  // physically gone
}

TEST(BPlusTreeTest, RandomizedAgainstReferenceModel) {
  Random rng(4242);
  BPlusTree tree;
  std::map<std::string, std::set<DocId>> model;
  auto random_key = [&] {
    return "key-" + std::to_string(rng.Uniform(400));
  };
  for (int op = 0; op < 20000; ++op) {
    std::string key = random_key();
    DocId doc = static_cast<DocId>(rng.Uniform(50));
    if (rng.Bernoulli(0.7)) {
      tree.Insert(key, doc);
      model[key].insert(doc);
    } else {
      bool tree_removed = tree.Remove(key, doc);
      bool model_removed = model.count(key) && model[key].erase(doc) > 0;
      EXPECT_EQ(tree_removed, model_removed) << key << " " << doc;
      if (model.count(key) && model[key].empty()) model.erase(key);
    }
    if (op % 2500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "after op " << op;
    }
  }
  // Full agreement on non-empty keys.
  EXPECT_EQ(tree.key_count(), model.size());
  for (const auto& [key, docs] : model) {
    auto* p = tree.Get(key);
    ASSERT_NE(p, nullptr) << key;
    EXPECT_EQ(std::set<DocId>(p->begin(), p->end()), docs) << key;
  }
  // Random range scans agree with the model.
  for (int trial = 0; trial < 200; ++trial) {
    std::string lo = random_key();
    std::string hi = random_key();
    if (hi < lo) std::swap(lo, hi);
    std::set<DocId> expected;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      expected.insert(it->second.begin(), it->second.end());
    }
    auto got = tree.DocsInRange(lo, hi);
    EXPECT_EQ(std::set<DocId>(got.begin(), got.end()), expected)
        << lo << " .. " << hi;
  }
  tree.Compact();
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.key_count(), model.size());
}

TEST(BPlusTreeTest, ForEachVisitsAllKeysInOrder) {
  BPlusTree tree;
  Random rng(7);
  std::set<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    std::string k = rng.AlphaString(6);
    keys.insert(k);
    tree.Insert(k, 1);
  }
  std::vector<std::string> visited;
  tree.ForEach([&](const std::string& k, const std::vector<DocId>&) {
    visited.push_back(k);
    return true;
  });
  EXPECT_EQ(visited.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree a;
  a.Insert("x", 1);
  BPlusTree b = std::move(a);
  ASSERT_NE(b.Get("x"), nullptr);
  BPlusTree c;
  c = std::move(b);
  ASSERT_NE(c.Get("x"), nullptr);
  EXPECT_EQ(c.key_count(), 1u);
}

}  // namespace
}  // namespace toss::store
