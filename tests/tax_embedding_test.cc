#include <gtest/gtest.h>

#include "tax/condition_parser.h"
#include "tax/embedding.h"
#include "tax/tax_semantics.h"
#include "xml/xml_parser.h"

namespace toss::tax {
namespace {

DataTree Dblp() {
  auto doc = xml::Parse(R"(
    <dblp>
      <inproceedings>
        <author>Paolo Ciancarini</author>
        <author>Robert Tolksdorf</author>
        <title>Coordinating Multiagent Applications</title>
        <year>1999</year>
      </inproceedings>
      <inproceedings>
        <author>Ernesto Damiani</author>
        <title>Securing XML Documents</title>
        <year>2000</year>
      </inproceedings>
    </dblp>)");
  EXPECT_TRUE(doc.ok());
  return DataTree::FromXml(*doc, doc->root());
}

PatternTree MakePattern(const std::string& cond,
                        std::vector<std::pair<int, EdgeKind>> children) {
  PatternTree pt;
  int root = pt.AddRoot();
  for (auto [parent, kind] : children) {
    pt.AddChild(parent == 0 ? root : parent, kind);
  }
  auto parsed = ParseCondition(cond);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  pt.SetCondition(std::move(parsed).value());
  return pt;
}

TEST(PatternTreeTest, LabelsAssignedInOrder) {
  PatternTree pt;
  EXPECT_TRUE(pt.empty());
  int r = pt.AddRoot();
  EXPECT_EQ(r, 1);
  EXPECT_EQ(pt.AddRoot(), 1);  // idempotent
  int c1 = pt.AddChild(r, EdgeKind::kPc);
  int c2 = pt.AddChild(r, EdgeKind::kAd);
  int g = pt.AddChild(c1, EdgeKind::kPc);
  EXPECT_EQ(c1, 2);
  EXPECT_EQ(c2, 3);
  EXPECT_EQ(g, 4);
  EXPECT_EQ(pt.AddChild(99, EdgeKind::kPc), -1);
  EXPECT_EQ(pt.node_count(), 4u);
  std::vector<int> labels{1, 2, 3, 4};
  EXPECT_EQ(pt.Labels(), labels);
}

TEST(PatternTreeTest, ValidateChecksConditionLabels) {
  PatternTree pt;
  pt.AddRoot();
  pt.SetCondition(ParseCondition("$1.tag = \"x\"").value());
  EXPECT_TRUE(pt.Validate().ok());
  pt.SetCondition(ParseCondition("$7.tag = \"x\"").value());
  EXPECT_TRUE(pt.Validate().IsInvalidArgument());
  PatternTree empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());
}

TEST(EmbeddingTest, ParentChildEdges) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // $1 inproceedings with pc child $2 author.
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\"",
      {{0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 3u);  // three author nodes overall
}

TEST(EmbeddingTest, AncestorDescendantEdges) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // $1 dblp with ad descendant $2 author: pc would fail, ad succeeds.
  PatternTree pc = MakePattern("$1.tag = \"dblp\" & $2.tag = \"author\"",
                               {{0, EdgeKind::kPc}});
  PatternTree ad = MakePattern("$1.tag = \"dblp\" & $2.tag = \"author\"",
                               {{0, EdgeKind::kAd}});
  auto rpc = FindEmbeddings(pc, tree, sem);
  auto rad = FindEmbeddings(ad, tree, sem);
  ASSERT_TRUE(rpc.ok());
  ASSERT_TRUE(rad.ok());
  EXPECT_TRUE(rpc->empty());
  EXPECT_EQ(rad->size(), 3u);
}

TEST(EmbeddingTest, ConditionFiltersEmbeddings) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
      "$2.content = \"1999\"",
      {{0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
}

TEST(EmbeddingTest, MultiNodePattern) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // Both an author and a year under the same inproceedings.
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$3.tag = \"year\" & $3.content = \"1999\"",
      {{0, EdgeKind::kPc}, {0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // two authors on the 1999 paper
}

TEST(EmbeddingTest, CrossNodeConditionEvaluatedAtEnd) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // Two distinct author children with different contents.
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$3.tag = \"author\" & $2.content < $3.content",
      {{0, EdgeKind::kPc}, {0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  // Only (Paolo, Robert) ordered pair qualifies.
  ASSERT_EQ(r->size(), 1u);
}

TEST(EmbeddingTest, EmptyInputs) {
  TaxSemantics sem;
  PatternTree pt = MakePattern("true", {});
  DataTree empty;
  auto r = FindEmbeddings(pt, empty, sem);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(WitnessTreeTest, InducedStructureUsesClosestAncestors) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // Map $1 -> dblp root (ad) $2 -> author: witness keeps dblp above author
  // even though intermediate inproceedings is not matched.
  PatternTree pt = MakePattern("$1.tag = \"dblp\" & $2.tag = \"author\"",
                               {{0, EdgeKind::kAd}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  DataTree w = BuildWitnessTree(pt, tree, (*r)[0], {});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.node(w.root()).tag, "dblp");
  EXPECT_EQ(w.node(1).tag, "author");
  EXPECT_EQ(w.node(1).parent, w.root());  // closest matched ancestor
}

TEST(WitnessTreeTest, SlExpansionIncludesDescendants) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
      "$2.content = \"2000\"",
      {{0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  // Bare witness: just the two matched nodes.
  DataTree bare = BuildWitnessTree(pt, tree, (*r)[0], {});
  EXPECT_EQ(bare.size(), 2u);
  // SL = {1}: the whole paper subtree comes along (author, title, year).
  DataTree full = BuildWitnessTree(pt, tree, (*r)[0], {1});
  EXPECT_EQ(full.size(), 4u);
  EXPECT_EQ(full.node(full.root()).tag, "inproceedings");
}

TEST(WitnessTreeTest, PreservesDocumentOrder) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  PatternTree pt = MakePattern(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$3.tag = \"title\"",
      {{0, EdgeKind::kPc}, {0, EdgeKind::kPc}});
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  DataTree w = BuildWitnessTree(pt, tree, (*r)[0], {});
  // Children of the witness root appear in source order: author then
  // title.
  const auto& kids = w.node(w.root()).children;
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(w.node(kids[0]).tag, "author");
  EXPECT_EQ(w.node(kids[1]).tag, "title");
}

TEST(EmbeddingTest, IllTypedConditionSurfacesError) {
  DataTree tree = Dblp();
  TaxSemantics sem;
  // $9 unbound in a two-label atom that escapes prefiltering.
  PatternTree pt;
  pt.AddRoot();
  pt.SetCondition(ParseCondition("$1.tag = $1.tag").value());
  auto ok = FindEmbeddings(pt, tree, sem);
  EXPECT_TRUE(ok.ok());
  // Validate() rejects unbound labels before enumeration begins.
  pt.SetCondition(ParseCondition("$1.tag = $9.tag").value());
  auto r = FindEmbeddings(pt, tree, sem);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace toss::tax
