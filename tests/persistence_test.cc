// Round-trip tests for the text persistence layers: lexicon dumps,
// hierarchy/ontology dumps, and full SEO documents.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/seo.h"
#include "lexicon/lexicon.h"
#include "ontology/hierarchy_io.h"
#include "ontology/ontology_maker.h"
#include "sim/measure_registry.h"
#include "xml/xml_parser.h"

namespace toss {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexicon I/O
// ---------------------------------------------------------------------------

TEST(LexiconIoTest, ParseText) {
  auto lex = lexicon::ParseLexiconText(R"(
# comment
synset: paper | article
isa: inproceedings -> paper
partof: author -> paper
)");
  ASSERT_TRUE(lex.ok()) << lex.status();
  EXPECT_EQ(lex->Synonyms("paper"), std::vector<std::string>{"article"});
  EXPECT_EQ(lex->Hypernyms("inproceedings"),
            std::vector<std::string>{"paper"});
  EXPECT_EQ(lex->Holonyms("author"), std::vector<std::string>{"paper"});
}

TEST(LexiconIoTest, ParseErrors) {
  EXPECT_FALSE(lexicon::ParseLexiconText("bogus line").ok());
  EXPECT_FALSE(lexicon::ParseLexiconText("frobnicate: a | b").ok());
  EXPECT_FALSE(lexicon::ParseLexiconText("isa: a parent").ok());
  EXPECT_FALSE(lexicon::ParseLexiconText("synset:   ").ok());
  EXPECT_FALSE(lexicon::ParseLexiconText("isa:  -> x").ok());
}

TEST(LexiconIoTest, RoundTripPreservesSemantics) {
  const lexicon::Lexicon& original =
      lexicon::BuiltinBibliographicLexicon();
  auto reparsed = lexicon::ParseLexiconText(FormatLexicon(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  for (const char* term :
       {"inproceedings", "google", "us census bureau", "sigmod conference",
        "author"}) {
    EXPECT_EQ(original.Synonyms(term), reparsed->Synonyms(term)) << term;
    EXPECT_EQ(original.Hypernyms(term), reparsed->Hypernyms(term)) << term;
    EXPECT_EQ(original.Holonyms(term), reparsed->Holonyms(term)) << term;
    EXPECT_EQ(original.HypernymClosure(term),
              reparsed->HypernymClosure(term))
        << term;
  }
}

TEST(LexiconIoTest, FileRoundTrip) {
  fs::path path = fs::temp_directory_path() / "toss_lexicon_test.txt";
  lexicon::Lexicon lex;
  lex.AddSynset({"a", "b"});
  lex.AddIsaTerms("a", "c");
  ASSERT_TRUE(lexicon::SaveLexicon(lex, path.string()).ok());
  auto loaded = lexicon::LoadLexicon(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Synonyms("a"), std::vector<std::string>{"b"});
  fs::remove(path);
  EXPECT_TRUE(lexicon::LoadLexicon(path.string()).status().IsIOError());
}

// ---------------------------------------------------------------------------
// Hierarchy / Ontology I/O
// ---------------------------------------------------------------------------

ontology::Hierarchy SampleHierarchy() {
  ontology::Hierarchy h;
  ontology::HNodeId a = h.AddNode({"author", "writer"});
  ontology::HNodeId b = h.AddNode({"paper"});
  ontology::HNodeId c = h.AddNode({"publication"});
  (void)h.AddEdge(a, b);
  (void)h.AddEdge(b, c);
  return h;
}

TEST(HierarchyIoTest, RoundTrip) {
  ontology::Hierarchy h = SampleHierarchy();
  auto parsed = ontology::ParseHierarchyText(FormatHierarchy(h));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->EquivalentTo(h));
}

TEST(HierarchyIoTest, ParseErrors) {
  EXPECT_FALSE(ontology::ParseHierarchyText("node 1: late start").ok());
  EXPECT_FALSE(ontology::ParseHierarchyText("node 0:   ").ok());
  EXPECT_FALSE(ontology::ParseHierarchyText("edge 0 -> 1").ok());
  EXPECT_FALSE(
      ontology::ParseHierarchyText("node 0: a\nedge 0 -> 9").ok());
  EXPECT_FALSE(ontology::ParseHierarchyText("nonsense").ok());
  EXPECT_FALSE(
      ontology::ParseHierarchyText("node 0: a\nedge zero -> 0").ok());
}

TEST(OntologyIoTest, RoundTrip) {
  ontology::Ontology onto;
  onto.isa() = SampleHierarchy();
  (void)onto.partof().AddTermEdge("title", "paper");
  onto.hierarchy("custom").EnsureTerm("x");

  auto parsed = ontology::ParseOntologyText(FormatOntology(onto));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->relations(), onto.relations());
  EXPECT_TRUE(parsed->isa().EquivalentTo(onto.isa()));
  EXPECT_TRUE(parsed->partof().EquivalentTo(onto.partof()));
}

TEST(OntologyIoTest, ContentBeforeRelationRejected) {
  EXPECT_FALSE(ontology::ParseOntologyText("node 0: a").ok());
  EXPECT_FALSE(ontology::ParseOntologyText("relation \n node 0: a").ok());
}

TEST(OntologyIoTest, FileRoundTrip) {
  fs::path path = fs::temp_directory_path() / "toss_ontology_test.txt";
  ontology::Ontology onto;
  onto.isa() = SampleHierarchy();
  ASSERT_TRUE(ontology::SaveOntology(onto, path.string()).ok());
  auto loaded = ontology::LoadOntology(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->isa().EquivalentTo(onto.isa()));
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// SEO I/O
// ---------------------------------------------------------------------------

core::Seo SampleSeo() {
  auto doc = xml::Parse(
      "<dblp><inproceedings>"
      "<author>Jeffrey Ullman</author>"
      "<author>Jeffrey D. Ullman</author>"
      "<booktitle>SIGMOD Conference</booktitle>"
      "</inproceedings></dblp>");
  EXPECT_TRUE(doc.ok());
  ontology::OntologyMakerOptions opts;
  opts.content_tags = {"author", "booktitle"};
  auto onto = ontology::MakeOntology(
      *doc, lexicon::BuiltinBibliographicLexicon(), opts);
  EXPECT_TRUE(onto.ok());
  core::SeoBuilder b;
  b.AddInstanceOntology(std::move(onto).value());
  b.SetMeasure(*sim::MakeMeasure("levenshtein"));
  b.SetEpsilon(3.0);
  auto seo = b.Build();
  EXPECT_TRUE(seo.ok()) << seo.status();
  return std::move(seo).value();
}

TEST(SeoIoTest, RoundTripPreservesSemantics) {
  core::Seo seo = SampleSeo();
  auto reparsed = core::ParseSeoText(FormatSeo(seo));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_DOUBLE_EQ(reparsed->epsilon(), 3.0);
  EXPECT_EQ(reparsed->measure().name(), "levenshtein");
  EXPECT_EQ(reparsed->TotalNodeCount(), seo.TotalNodeCount());
  // Semantic checks survive the round trip.
  EXPECT_TRUE(reparsed->Similar("Jeffrey Ullman", "Jeffrey D. Ullman"));
  EXPECT_FALSE(reparsed->Similar("Jeffrey Ullman", "SIGMOD Conference"));
  EXPECT_TRUE(reparsed->Leq(ontology::kIsa, "SIGMOD Conference",
                            "database conference"));
  EXPECT_EQ(reparsed->SimilarTerms("Jeffrey Ullman"),
            seo.SimilarTerms("Jeffrey Ullman"));
  EXPECT_EQ(reparsed->TermsBelow(ontology::kIsa, "database conference"),
            seo.TermsBelow(ontology::kIsa, "database conference"));
}

TEST(SeoIoTest, FileRoundTrip) {
  fs::path path = fs::temp_directory_path() / "toss_seo_test.txt";
  core::Seo seo = SampleSeo();
  ASSERT_TRUE(core::SaveSeo(seo, path.string()).ok());
  auto loaded = core::LoadSeo(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->TotalNodeCount(), seo.TotalNodeCount());
  fs::remove(path);
}

TEST(SeoIoTest, ParseErrors) {
  EXPECT_TRUE(core::ParseSeoText("").status().IsParseError());
  EXPECT_FALSE(core::ParseSeoText("seo-version 2\n").ok());
  EXPECT_FALSE(
      core::ParseSeoText("seo-version 1\nmeasure nosuch\n").ok());
  EXPECT_FALSE(core::ParseSeoText("seo-version 1\nmeasure levenshtein\n"
                                  "epsilon -4\n")
                   .ok());
  // Missing enhancements.
  EXPECT_FALSE(core::ParseSeoText("seo-version 1\nmeasure levenshtein\n"
                                  "epsilon 1\nfused\nrelation isa\n"
                                  "node 0: a\nend-fused\n")
                   .ok());
  // Mu target out of range.
  EXPECT_FALSE(core::ParseSeoText("seo-version 1\nmeasure levenshtein\n"
                                  "epsilon 1\nfused\nrelation isa\n"
                                  "node 0: a\nend-fused\n"
                                  "enhancement isa\nnode 0: a\n"
                                  "mu 0: 7\nend-enhancement\n")
                   .ok());
}

TEST(SeoIoTest, LoadedSeoAnswersQueriesIdentically) {
  core::Seo seo = SampleSeo();
  auto reparsed = core::ParseSeoText(FormatSeo(seo));
  ASSERT_TRUE(reparsed.ok());
  // Compare the full Similar relation over all ontology terms.
  const ontology::Hierarchy* h = seo.EnhancedHierarchy(ontology::kIsa);
  ASSERT_NE(h, nullptr);
  auto terms = h->AllTerms();
  for (const auto& a : terms) {
    for (const auto& b : terms) {
      EXPECT_EQ(seo.Similar(a, b), reparsed->Similar(a, b))
          << a << " ~ " << b;
    }
  }
}

}  // namespace
}  // namespace toss
