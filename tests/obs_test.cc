#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/timer.h"
#include "common/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace toss::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, AddIncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  // Funnels increments through the real worker pool so the sharded
  // relaxed-atomic path is exercised by genuinely concurrent threads (and
  // by TSan-less ASan/UBSan in the sanitize preset).
  WorkerPool pool(4);
  Counter c;
  Histogram h;
  constexpr size_t kTasks = 2000;
  constexpr uint64_t kPerTask = 7;
  Status st = pool.ParallelFor(kTasks, [&](size_t) {
    c.Add(kPerTask);
    h.Record(1000);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(c.Value(), kTasks * kPerTask);
  EXPECT_EQ(h.GetSnapshot().count, kTasks);
}

TEST(GaugeTest, SetAddValueReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsGrowFromTwoFiftySix) {
  EXPECT_EQ(Histogram::UpperBound(0), 256u);
  EXPECT_EQ(Histogram::UpperBound(1), 512u);
  EXPECT_EQ(Histogram::UpperBound(2), 1024u);
  EXPECT_EQ(Histogram::UpperBound(Histogram::kBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, RecordLandsInTheRightBucket) {
  Histogram h;
  h.Record(1);    // <= 256 -> bucket 0
  h.Record(256);  // boundary is inclusive -> bucket 0
  h.Record(257);  // -> bucket 1
  h.Record(512);  // -> bucket 1
  h.Record(513);  // -> bucket 2
  h.Record(UINT64_MAX);  // -> overflow bucket
  Histogram::Snapshot s = h.GetSnapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[Histogram::kBuckets - 1], 1u);
}

TEST(HistogramTest, SnapshotStatsAndReset) {
  Histogram h;
  h.Record(1'000'000);  // 1 ms
  h.Record(3'000'000);  // 3 ms
  Histogram::Snapshot s = h.GetSnapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum_nanos, 4'000'000u);
  EXPECT_DOUBLE_EQ(s.MeanMillis(), 2.0);
  // Quantile estimates are bucket upper bounds: conservative, never below
  // the recorded value.
  EXPECT_GE(s.QuantileUpperBoundMillis(0.99), 3.0);
  h.Reset();
  EXPECT_EQ(h.GetSnapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.GetSnapshot().MeanMillis(), 0.0);
}

TEST(HistogramTest, PercentileMillisInterpolatesWithinBuckets) {
  Histogram h;
  // 100 samples spread evenly through bucket 12 ((512us, 1.049ms]).
  for (int i = 1; i <= 100; ++i) {
    h.Record(524'288 + static_cast<uint64_t>(i) * 5'000);
  }
  Histogram::Snapshot s = h.GetSnapshot();
  const double p50 = s.PercentileMillis(0.5);
  const double p99 = s.PercentileMillis(0.99);
  // Interpolated values stay inside the bucket and are ordered.
  EXPECT_GT(p50, 0.524288);
  EXPECT_LE(p50, 1.048576);
  EXPECT_GT(p99, p50);
  EXPECT_LE(p99, 1.048576);
  // Never above the conservative bucket-upper-bound estimate.
  EXPECT_LE(p50, s.QuantileUpperBoundMillis(0.5));
  EXPECT_LE(p99, s.QuantileUpperBoundMillis(0.99));
}

TEST(HistogramTest, PercentileMillisKnownDistribution) {
  Histogram h;
  // 95 fast samples (~1us -> bucket 2) and 5 slow (~10ms -> bucket 16):
  // p50 must report a fast value, p99 a slow one.
  for (int i = 0; i < 95; ++i) h.Record(1'000);
  for (int i = 0; i < 5; ++i) h.Record(10'000'000);
  Histogram::Snapshot s = h.GetSnapshot();
  EXPECT_LT(s.PercentileMillis(0.5), 0.002);
  EXPECT_GT(s.PercentileMillis(0.99), 8.0);
  EXPECT_LT(s.PercentileMillis(0.99), 17.0);
  // Monotone in q across the gap.
  double prev = 0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = s.PercentileMillis(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, PercentileMillisEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.GetSnapshot().PercentileMillis(0.99), 0.0);  // empty
  h.Record(1'000);
  Histogram::Snapshot one = h.GetSnapshot();
  // A single sample: every quantile reports the same bucket value.
  EXPECT_DOUBLE_EQ(one.PercentileMillis(0.0), one.PercentileMillis(1.0));
  // Overflow bucket interpolates toward 2x the last finite bound.
  Histogram over;
  over.Record(UINT64_MAX);
  const double top = over.GetSnapshot().PercentileMillis(1.0);
  EXPECT_GT(top, static_cast<double>(Histogram::UpperBound(
                     Histogram::kBuckets - 2)) /
                     1e6);
  EXPECT_LE(top, 2.0 * static_cast<double>(Histogram::UpperBound(
                           Histogram::kBuckets - 2)) /
                     1e6);
}

TEST(HistogramTest, DeltaSinceSubtractsAndClampsAtZero) {
  Histogram h;
  h.Record(1'000);
  Histogram::Snapshot before = h.GetSnapshot();
  h.Record(1'000);
  h.Record(4'000'000);
  Histogram::Snapshot after = h.GetSnapshot();
  Histogram::Snapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum_nanos, 4'001'000u);
  // A Reset between snapshots degrades to an empty delta, never wraps.
  h.Reset();
  Histogram::Snapshot wrapped = h.GetSnapshot().DeltaSince(after);
  EXPECT_EQ(wrapped.count, 0u);
  EXPECT_EQ(wrapped.sum_nanos, 0u);
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(wrapped.counts[b], 0u);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.hits");
  Counter& b = reg.GetCounter("x.hits");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(reg.GetCounter("x.hits").Value(), 5u);
  // Distinct kinds live in distinct namespaces.
  reg.GetGauge("x.hits").Set(-1);
  EXPECT_EQ(reg.GetCounter("x.hits").Value(), 5u);
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry reg;
  reg.GetCounter("a.count").Add(3);
  reg.GetGauge("b.depth").Set(-7);
  reg.GetHistogram("c.latency_ns").Record(1000);
  MetricsRegistry::Snapshot snap = reg.GetSnapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_EQ(snap.gauges.at("b.depth"), -7);
  EXPECT_EQ(snap.histograms.at("c.latency_ns").count, 1u);
  reg.Reset();
  snap = reg.GetSnapshot();
  // Names stay registered, values zero.
  EXPECT_EQ(snap.counters.at("a.count"), 0u);
  EXPECT_EQ(snap.gauges.at("b.depth"), 0);
  EXPECT_EQ(snap.histograms.at("c.latency_ns").count, 0u);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("q.count").Add(2);
  reg.GetGauge("q.depth").Set(4);
  reg.GetHistogram("q.lat_ns").Record(500);
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"q.count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"q.depth\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum_ns\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos) << json;
  // Raw bucket counts ride along so external tools can diff dumps.
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos) << json;
}

TEST(MetricsRegistryTest, GlobalIsProcessWideAndPrepopulated) {
  // The subsystems register their instruments on first use; the global
  // registry must hand back the same counter for the same name.
  Counter& c = Metrics().GetCounter("obs_test.global.probe");
  c.Add(1);
  EXPECT_GE(Metrics().GetCounter("obs_test.global.probe").Value(), 1u);
}

// ---------------------------------------------------------------------------
// Trace / Span
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestAndRecordDurations) {
  Trace trace("query");
  {
    Span root = trace.RootSpan();
    ASSERT_TRUE(root.enabled());
    {
      Span rewrite(&root, "rewrite");
      rewrite.Annotate("xpath_queries", uint64_t{3});
    }
    Span eval(&root, "eval");
    Span inner(&eval, "decode");
    inner.End();
    eval.Annotate("docs", uint64_t{2});
  }
  const TraceNode& root = trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GT(root.duration_nanos, 0u);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "rewrite");
  EXPECT_EQ(root.children[1]->name, "eval");
  EXPECT_GT(root.children[0]->duration_nanos, 0u);
  ASSERT_EQ(root.children[0]->annotations.size(), 1u);
  EXPECT_EQ(root.children[0]->annotations[0].first, "xpath_queries");
  EXPECT_EQ(root.children[0]->annotations[0].second, "3");
  ASSERT_EQ(root.children[1]->children.size(), 1u);
  EXPECT_EQ(root.children[1]->children[0]->name, "decode");
}

TEST(TraceTest, DisabledSpansAreInertAndContagious) {
  Span none;  // default-constructed = disabled
  EXPECT_FALSE(none.enabled());
  Span child(&none, "phase");
  EXPECT_FALSE(child.enabled());
  Span grandchild(&child, "inner");
  EXPECT_FALSE(grandchild.enabled());
  // All no-ops; nothing to crash on.
  child.Annotate("k", "v");
  child.Annotate("n", uint64_t{1});
  child.End();
  Span via_null(nullptr, "phase");
  EXPECT_FALSE(via_null.enabled());
}

TEST(TraceTest, EndIsIdempotentAndMoveSafe) {
  Trace trace("t");
  Span root = trace.RootSpan();
  Span a(&root, "a");
  a.End();
  uint64_t first = trace.root().children[0]->duration_nanos;
  EXPECT_GT(first, 0u);
  a.End();  // keeps the first stop
  EXPECT_EQ(trace.root().children[0]->duration_nanos, first);
  Span b(&root, "b");
  Span moved = std::move(b);
  EXPECT_TRUE(moved.enabled());
  EXPECT_FALSE(b.enabled());  // NOLINT(bugprone-use-after-move): testing it
  moved.End();
  root.End();
}

TEST(TraceTest, CoverageFractionReflectsChildTime) {
  Trace trace("q");
  {
    Span root = trace.RootSpan();
    // One child doing essentially all the root's work.
    Span phase(&root, "phase");
    Timer t;
    while (t.ElapsedNanos() < 2'000'000) {
    }
    phase.End();
  }
  double cov = trace.CoverageFraction();
  EXPECT_GT(cov, 0.5);
  EXPECT_LE(cov, 1.0);

  Trace empty("e");
  { Span root = empty.RootSpan(); }
  // No children: nothing covered.
  EXPECT_DOUBLE_EQ(empty.CoverageFraction(), 0.0);
}

TEST(TraceTest, JsonAndPrettyRenderTheTree) {
  Trace trace("select(dblp)");
  {
    Span root = trace.RootSpan();
    Span child(&root, "store_scan");
    child.Annotate("candidate_docs", uint64_t{4});
    child.Annotate("note", "a \"quoted\" value");
  }
  std::string json = trace.Json();
  EXPECT_NE(json.find("\"name\":\"select(dblp)\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"store_scan\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"candidate_docs\":\"4\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;

  std::string pretty = trace.Pretty();
  EXPECT_NE(pretty.find("select(dblp)"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("store_scan"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("candidate_docs=4"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("ms"), std::string::npos) << pretty;
}

TEST(TraceTest, SpansAssembledAcrossPoolThreadsStayWellFormed) {
  WorkerPool pool(4);
  Trace trace("parallel");
  {
    Span root = trace.RootSpan();
    Status st = pool.ParallelFor(64, [&](size_t i) {
      Span task(&root, "task");
      task.Annotate("i", static_cast<uint64_t>(i));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
  }
  const TraceNode& root = trace.root();
  ASSERT_EQ(root.children.size(), 64u);
  std::set<std::string> seen;
  for (const auto& c : root.children) {
    EXPECT_EQ(c->name, "task");
    EXPECT_GT(c->duration_nanos, 0u);
    ASSERT_EQ(c->annotations.size(), 1u);
    seen.insert(c->annotations[0].second);
  }
  EXPECT_EQ(seen.size(), 64u);  // every task's node survived intact
}

}  // namespace
}  // namespace toss::obs
