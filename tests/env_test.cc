// Unit tests for the store's Env I/O layer: ProductionEnv filesystem
// semantics, FaultInjectionEnv fault modes, and the RetryTransient
// backoff loop.

#include <gtest/gtest.h>

#include <filesystem>

#include "store/env.h"
#include "store/snapshot.h"

namespace toss::store {
namespace {

namespace fs = std::filesystem;

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "toss_env_test").string();
    fs::remove_all(dir_);
    env_ = Env::Default();
    ASSERT_TRUE(env_->CreateDirs(dir_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
  Env* env_ = nullptr;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  std::string payload("hello\0world\n binary \xff ok", 23);
  ASSERT_TRUE(env_->WriteFile(Path("f"), payload).ok());
  ASSERT_TRUE(env_->SyncFile(Path("f")).ok());
  auto back = env_->ReadFile(Path("f"));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, payload);
}

TEST_F(EnvTest, ReadMissingFileIsIOError) {
  EXPECT_TRUE(env_->ReadFile(Path("nope")).status().IsIOError());
  EXPECT_FALSE(env_->FileExists(Path("nope")));
}

TEST_F(EnvTest, RemoveIsIdempotent) {
  EXPECT_TRUE(env_->RemoveFile(Path("nope")).ok());
  EXPECT_TRUE(env_->RemoveAll(Path("nope-dir")).ok());
}

TEST_F(EnvTest, RenameReplacesAndListDirSees) {
  ASSERT_TRUE(env_->WriteFile(Path("a"), "old").ok());
  ASSERT_TRUE(env_->WriteFile(Path("b"), "new").ok());
  ASSERT_TRUE(env_->RenameFile(Path("b"), Path("a")).ok());
  auto back = env_->ReadFile(Path("a"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "new");
  auto listing = env_->ListDir(dir_);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0], "a");
  ASSERT_TRUE(env_->SyncDir(dir_).ok());
}

TEST_F(EnvTest, HardFaultAtOpKThenCrashed) {
  // Op 0 = first WriteFile; op 1 faults, everything after fails too.
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 1;
  FaultInjectionEnv fenv(env_, opts);
  EXPECT_TRUE(fenv.WriteFile(Path("w0"), "x").ok());
  EXPECT_TRUE(fenv.WriteFile(Path("w1"), "y").IsIOError());
  EXPECT_EQ(fenv.faults_fired(), 1u);
  // Crashed: later mutating AND read ops fail.
  EXPECT_TRUE(fenv.WriteFile(Path("w2"), "z").IsIOError());
  EXPECT_TRUE(fenv.ReadFile(Path("w0")).status().IsIOError());
  EXPECT_TRUE(fenv.ListDir(dir_).status().IsIOError());
  // Nothing past the fault landed on disk.
  EXPECT_TRUE(env_->FileExists(Path("w0")));
  EXPECT_FALSE(env_->FileExists(Path("w1")));
  EXPECT_FALSE(env_->FileExists(Path("w2")));
}

TEST_F(EnvTest, TornWriteLeavesPrefix) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kTornWrite;
  FaultInjectionEnv fenv(env_, opts);
  std::string payload(100, 'a');
  EXPECT_TRUE(fenv.WriteFile(Path("torn"), payload).IsIOError());
  auto back = env_->ReadFile(Path("torn"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 50u);  // half the payload landed
}

TEST_F(EnvTest, NoSpacePersistsForWritesOnly) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kNoSpace;
  FaultInjectionEnv fenv(env_, opts);
  Status st = fenv.WriteFile(Path("full"), "data");
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("no space"), std::string::npos) << st;
  // Writes keep failing; non-write ops (the disk is full, not dead) pass.
  EXPECT_TRUE(fenv.WriteFile(Path("full2"), "data").IsIOError());
  EXPECT_TRUE(fenv.RemoveFile(Path("full")).ok());
  EXPECT_TRUE(fenv.ReadFile(Path("missing")).status().IsIOError());  // real
}

TEST_F(EnvTest, TransientFaultHealsAfterConfiguredFailures) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 2;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 2;
  FaultInjectionEnv fenv(env_, opts);
  EXPECT_TRUE(fenv.WriteFile(Path("t0"), "x").ok());
  EXPECT_TRUE(fenv.WriteFile(Path("t1"), "x").ok());
  EXPECT_TRUE(fenv.WriteFile(Path("t2"), "x").IsUnavailable());
  EXPECT_TRUE(fenv.WriteFile(Path("t2"), "x").IsUnavailable());
  EXPECT_TRUE(fenv.WriteFile(Path("t2"), "x").ok());  // healed
  EXPECT_EQ(fenv.faults_fired(), 2u);
}

TEST_F(EnvTest, OpCountCountsMutatingOpsOnly) {
  FaultInjectionEnv fenv(env_);
  ASSERT_TRUE(fenv.CreateDirs(Path("d")).ok());              // op 0
  ASSERT_TRUE(fenv.WriteFile(Path("d/f"), "x").ok());        // op 1
  ASSERT_TRUE(fenv.SyncFile(Path("d/f")).ok());              // op 2
  ASSERT_TRUE(fenv.ReadFile(Path("d/f")).ok());              // not counted
  ASSERT_TRUE(fenv.ListDir(Path("d")).ok());                 // not counted
  EXPECT_TRUE(fenv.FileExists(Path("d/f")));                 // not counted
  ASSERT_TRUE(fenv.RenameFile(Path("d/f"), Path("d/g")).ok());  // op 3
  ASSERT_TRUE(fenv.SyncDir(Path("d")).ok());                 // op 4
  ASSERT_TRUE(fenv.RemoveFile(Path("d/g")).ok());            // op 5
  ASSERT_TRUE(fenv.RemoveAll(Path("d")).ok());               // op 6
  EXPECT_EQ(fenv.op_count(), 7u);
  EXPECT_EQ(fenv.faults_fired(), 0u);
}

TEST_F(EnvTest, RetryTransientSucceedsWithinBudget) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 2;
  FaultInjectionEnv fenv(env_, opts);
  RetryPolicy policy;  // 4 attempts
  Status st = RetryTransient(&fenv, policy, [&] {
    return fenv.WriteFile(Path("r"), "payload");
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(fenv.sleep_count(), 2u);  // one backoff per transient failure
  EXPECT_GT(fenv.total_sleep_micros(), 0u);
  EXPECT_TRUE(env_->FileExists(Path("r")));
}

TEST_F(EnvTest, RetryTransientIsBounded) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 1'000;  // never heals within the budget
  FaultInjectionEnv fenv(env_, opts);
  RetryPolicy policy;
  policy.max_attempts = 4;
  Status st = RetryTransient(&fenv, policy, [&] {
    return fenv.WriteFile(Path("r"), "payload");
  });
  EXPECT_TRUE(st.IsUnavailable()) << st;
  // Exactly max_attempts tries, max_attempts - 1 backoffs: bounded.
  EXPECT_EQ(fenv.op_count(), 4u);
  EXPECT_EQ(fenv.sleep_count(), 3u);
}

TEST_F(EnvTest, DecorrelatedJitterSleepsStayWithinTheConfiguredBounds) {
  // Many long outages, each a fresh retry loop: every single backoff the
  // jittered policy requests lies in [initial, max], whatever the jitter
  // stream drew.
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 2'000;
  ASSERT_TRUE(policy.decorrelated_jitter);
  for (int run = 0; run < 50; ++run) {
    FaultInjectionEnv::Options opts;
    opts.fail_at_op = 0;
    opts.kind = FaultInjectionEnv::FaultKind::kTransient;
    opts.transient_failures = 1'000;
    FaultInjectionEnv fenv(env_, opts);
    Status st = RetryTransient(&fenv, policy, [&] {
      return fenv.WriteFile(Path("j"), "payload");
    });
    EXPECT_TRUE(st.IsUnavailable());
    const std::vector<uint64_t> sleeps = fenv.sleep_history();
    ASSERT_EQ(sleeps.size(), policy.max_attempts - 1);
    for (uint64_t s : sleeps) {
      EXPECT_GE(s, policy.initial_backoff_micros);
      EXPECT_LE(s, policy.max_backoff_micros);
    }
  }
}

TEST_F(EnvTest, DecorrelatedJitterDesynchronizesRetryLoops) {
  // The point of the jitter: two retry loops hit by the same fault must
  // not sleep in lockstep. With 7 draws from a wide range, identical
  // histories across two loops would be astronomically unlikely.
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 1'000'000;
  auto run_loop = [&] {
    FaultInjectionEnv::Options opts;
    opts.fail_at_op = 0;
    opts.kind = FaultInjectionEnv::FaultKind::kTransient;
    opts.transient_failures = 1'000;
    FaultInjectionEnv fenv(env_, opts);
    (void)RetryTransient(&fenv, policy, [&] {
      return fenv.WriteFile(Path("j2"), "payload");
    });
    return fenv.sleep_history();
  };
  EXPECT_NE(run_loop(), run_loop());
}

TEST_F(EnvTest, LegacyDoublingBackoffIsExactWhenJitterIsOff) {
  // decorrelated_jitter = false restores the deterministic schedule:
  // initial, 2x, 4x, ... capped at max -- byte-for-byte predictable.
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 1'000;
  policy.decorrelated_jitter = false;
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 1'000;
  FaultInjectionEnv fenv(env_, opts);
  Status st = RetryTransient(&fenv, policy, [&] {
    return fenv.WriteFile(Path("d"), "payload");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(fenv.sleep_history(),
            (std::vector<uint64_t>{100, 200, 400, 800, 1'000}));
}

TEST_F(EnvTest, RetryTransientDoesNotRetryHardErrors) {
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 0;  // hard error
  FaultInjectionEnv fenv(env_, opts);
  Status st = RetryTransient(&fenv, RetryPolicy{}, [&] {
    return fenv.WriteFile(Path("h"), "payload");
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(fenv.sleep_count(), 0u);
  EXPECT_EQ(fenv.op_count(), 1u);
}

// ---------------------------------------------------------------------------
// Snapshot format primitives
// ---------------------------------------------------------------------------

TEST(SnapshotFormatTest, Crc32KnownVectors) {
  // Standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(SnapshotFormatTest, KeyEscapingRoundTrips) {
  const std::string hostile[] = {
      "plain",
      "with spaces and / path \\ separators",
      "new\nline",
      "carriage\rreturn",
      "percent 100% done",
      std::string("embedded\0nul", 12),
      "\x01\x02\x7f",
      "",
  };
  for (const std::string& key : hostile) {
    std::string escaped = EscapeKey(key);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\r'), std::string::npos);
    auto back = UnescapeKey(escaped);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, key);
  }
}

TEST(SnapshotFormatTest, UnescapableGarbageRejectedWithTypedStatus) {
  EXPECT_TRUE(UnescapeKey("%").status().IsParseError());
  EXPECT_TRUE(UnescapeKey("%4").status().IsParseError());
  EXPECT_TRUE(UnescapeKey("%GZ").status().IsParseError());
  EXPECT_TRUE(UnescapeKey("ok%").status().IsParseError());
  EXPECT_TRUE(UnescapeKey("raw\nnewline").status().IsParseError());
}

TEST(SnapshotFormatTest, GenerationNames) {
  EXPECT_EQ(GenerationDirName(7), "gen-7");
  EXPECT_EQ(TempGenerationDirName(7), "gen-7.tmp");
  EXPECT_EQ(ParseGenerationDirName("gen-12"), 12u);
  EXPECT_EQ(ParseGenerationDirName("gen-"), std::nullopt);
  EXPECT_EQ(ParseGenerationDirName("gen-12.tmp"), std::nullopt);
  EXPECT_EQ(ParseGenerationDirName("gen-1x"), std::nullopt);
  EXPECT_EQ(ParseGenerationDirName("other"), std::nullopt);
  EXPECT_EQ(ParseTempGenerationDirName("gen-12.tmp"), 12u);
  EXPECT_EQ(ParseTempGenerationDirName("gen-12"), std::nullopt);
}

TEST(SnapshotFormatTest, ManifestRoundTrip) {
  SnapshotManifest m;
  ManifestCollection coll;
  coll.name = "dblp with\nnewline";
  coll.subdir = "c000000";
  coll.docs.push_back({"000000.xml", 42, 0xDEADBEEFu, "key one"});
  coll.docs.push_back({"000001.xml", 0, 0u, "key\ntwo %"});
  m.collections.push_back(coll);
  auto parsed = ParseManifest(m.Format());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->collections.size(), 1u);
  EXPECT_EQ(parsed->collections[0].name, coll.name);
  EXPECT_EQ(parsed->collections[0].subdir, "c000000");
  ASSERT_EQ(parsed->collections[0].docs.size(), 2u);
  EXPECT_EQ(parsed->collections[0].docs[0].bytes, 42u);
  EXPECT_EQ(parsed->collections[0].docs[0].crc32, 0xDEADBEEFu);
  EXPECT_EQ(parsed->collections[0].docs[1].key, "key\ntwo %");
}

TEST(SnapshotFormatTest, ManifestRejectsDamage) {
  SnapshotManifest m;
  ManifestCollection coll;
  coll.name = "c";
  coll.subdir = "c000000";
  coll.docs.push_back({"000000.xml", 5, 0x1234u, "k"});
  m.collections.push_back(coll);
  std::string full = m.Format();

  // Every strict prefix is rejected (truncation is always detected).
  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto r = ParseManifest(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " parsed";
  }
  // Unknown version.
  EXPECT_TRUE(ParseManifest("toss-snapshot 99\nend-snapshot\n")
                  .status()
                  .IsUnsupported());
  // Trailing garbage, doc-count mismatches, stray doc lines.
  EXPECT_FALSE(ParseManifest(full + "junk\n").ok());
  EXPECT_FALSE(
      ParseManifest("toss-snapshot 1\ncollection c0 2 name\n"
                    "doc f 1 ab k\nend-snapshot\n")
          .ok());
  EXPECT_FALSE(
      ParseManifest("toss-snapshot 1\ndoc f 1 ab k\nend-snapshot\n").ok());
  // Malformed escape in a key field -> typed ParseError.
  EXPECT_TRUE(
      ParseManifest("toss-snapshot 1\ncollection c0 1 name\n"
                    "doc f 1 ab %GZ\nend-snapshot\n")
          .status()
          .IsParseError());
}

}  // namespace
}  // namespace toss::store
