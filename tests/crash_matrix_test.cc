// Crash-recovery matrix for the generational snapshot store.
//
// The durability contract under test: for EVERY mutating I/O operation k
// performed by Database::Save, a crash (hard error or torn write) injected
// at op k leaves the directory in a state from which Open recovers exactly
// the pre-save or the post-save database -- deep-equal, never a torn
// hybrid -- and recovery is idempotent.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "store/database.h"
#include "store/env.h"
#include "store/snapshot.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::store {
namespace {

namespace fs = std::filesystem;

// A canonical fingerprint of a database: collection names, keys in
// insertion order, and each document's serialized bytes. Two databases
// with equal fingerprints answer every query identically.
std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.CollectionNames()) {
    auto coll = db.GetCollection(name);
    EXPECT_TRUE(coll.ok());
    out += "collection " + EscapeKey(name) + "\n";
    for (DocId id : (*coll)->AllDocs()) {
      out += "  key " + EscapeKey((*coll)->key(id)) + "\n";
      out += "  doc " + xml::Write((*coll)->document(id)) + "\n";
    }
  }
  return out;
}

Database MakeStateA() {
  Database db;
  auto dblp = db.CreateCollection("dblp");
  EXPECT_TRUE(dblp.ok());
  EXPECT_TRUE(
      (*dblp)->InsertXml("a1", "<inproceedings><author>Ullman</author>"
                               "<year>1998</year></inproceedings>")
          .ok());
  EXPECT_TRUE((*dblp)->InsertXml("a2", "<article><title>TAX</title></article>")
                  .ok());
  auto conf = db.CreateCollection("conf");
  EXPECT_TRUE(conf.ok());
  EXPECT_TRUE((*conf)->InsertXml("c1", "<conference>SIGMOD</conference>").ok());
  return db;
}

Database MakeStateB() {
  // B differs from A in every way a save can: a replaced document, a
  // removed document, a new document, and a whole new collection.
  Database db = MakeStateA();
  auto dblp = db.GetCollection("dblp");
  EXPECT_TRUE(dblp.ok());
  EXPECT_TRUE((*dblp)->Remove("a2").ok());
  EXPECT_TRUE(
      (*dblp)->InsertXml("a3", "<article><title>TOSS</title></article>").ok());
  auto extra = db.CreateCollection("extra");
  EXPECT_TRUE(extra.ok());
  EXPECT_TRUE((*extra)->InsertXml("weird / key\nwith newline", "<x/>").ok());
  return db;
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "toss_crash_matrix").string();
    fs::remove_all(dir_);
    a_ = MakeStateA();
    b_ = MakeStateB();
    fp_a_ = Fingerprint(a_);
    fp_b_ = Fingerprint(b_);
    ASSERT_NE(fp_a_, fp_b_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Fresh directory holding committed state A.
  void ResetDirToA() {
    fs::remove_all(dir_);
    ASSERT_TRUE(a_.Save(dir_).ok());
  }

  /// Mutating-op count of a clean Save of B over a committed A.
  size_t CountSaveOps() {
    ResetDirToA();
    FaultInjectionEnv counter(Env::Default());
    EXPECT_TRUE(b_.Save(dir_, &counter).ok());
    return counter.op_count();
  }

  std::string dir_;
  Database a_, b_;
  std::string fp_a_, fp_b_;
};

TEST_F(CrashMatrixTest, EveryFaultPointRecoversToOldOrNewState) {
  const size_t total_ops = CountSaveOps();
  ASSERT_GT(total_ops, 10u);  // the protocol really is multi-step

  const FaultInjectionEnv::FaultKind kinds[] = {
      FaultInjectionEnv::FaultKind::kHardError,
      FaultInjectionEnv::FaultKind::kTornWrite,
      FaultInjectionEnv::FaultKind::kNoSpace,
  };
  for (FaultInjectionEnv::FaultKind kind : kinds) {
    for (size_t k = 0; k < total_ops; ++k) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " fault at op " + std::to_string(k));
      ResetDirToA();
      FaultInjectionEnv::Options opts;
      opts.fail_at_op = k;
      opts.kind = kind;
      FaultInjectionEnv fenv(Env::Default(), opts);
      Status st = b_.Save(dir_, &fenv);
      // The save either failed (fault before/at commit) or succeeded
      // (fault landed in post-commit cleanup, which is best-effort).
      ASSERT_GE(fenv.faults_fired(), 1u);

      // Reopen with a clean env, as a restarted process would.
      RecoveryReport report;
      auto recovered = Database::Open(dir_, Env::Default(), &report);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      std::string fp = Fingerprint(*recovered);
      EXPECT_TRUE(fp == fp_a_ || fp == fp_b_)
          << "torn hybrid state recovered:\n" << fp;
      // A successful Save must never roll back to the old state.
      if (st.ok()) {
        EXPECT_EQ(fp, fp_b_);
      }

      // Recovery is idempotent: a second Open sees the same state and the
      // same degradation report.
      RecoveryReport report2;
      auto again = Database::Open(dir_, Env::Default(), &report2);
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(Fingerprint(*again), fp);
      EXPECT_EQ(report2.loaded_generation, report.loaded_generation);
      EXPECT_EQ(report2.discarded.size(), report.discarded.size());

      // And the store remains writable: a follow-up clean Save commits B
      // and collects any debris the crash left behind.
      ASSERT_TRUE(b_.Save(dir_).ok());
      auto final_db = Database::Open(dir_);
      ASSERT_TRUE(final_db.ok()) << final_db.status();
      EXPECT_EQ(Fingerprint(*final_db), fp_b_);
      bool stale_tmp = false;
      for (const auto& entry : fs::directory_iterator(dir_)) {
        if (ParseTempGenerationDirName(entry.path().filename().string())) {
          stale_tmp = true;
        }
      }
      EXPECT_FALSE(stale_tmp) << "Save left a stale gen-*.tmp behind";
    }
  }
}

TEST_F(CrashMatrixTest, TransientFaultsAreRetriedToSuccess) {
  const size_t total_ops = CountSaveOps();
  // A short transient outage at every op index is absorbed by the bounded
  // retry loop: the save succeeds and the backoff path really ran.
  for (size_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("transient fault at op " + std::to_string(k));
    ResetDirToA();
    FaultInjectionEnv::Options opts;
    opts.fail_at_op = k;
    opts.kind = FaultInjectionEnv::FaultKind::kTransient;
    opts.transient_failures = 2;  // below RetryPolicy::max_attempts
    FaultInjectionEnv fenv(Env::Default(), opts);
    ASSERT_TRUE(b_.Save(dir_, &fenv).ok());
    EXPECT_EQ(fenv.faults_fired(), 2u);
    EXPECT_EQ(fenv.sleep_count(), 2u);  // one backoff per transient failure
    auto recovered = Database::Open(dir_);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(Fingerprint(*recovered), fp_b_);
  }
}

TEST_F(CrashMatrixTest, PersistentTransientFaultFailsBoundedAndAtomic) {
  ResetDirToA();
  FaultInjectionEnv::Options opts;
  opts.fail_at_op = 5;
  opts.kind = FaultInjectionEnv::FaultKind::kTransient;
  opts.transient_failures = 1'000'000;  // outage outlasts the retry budget
  FaultInjectionEnv fenv(Env::Default(), opts);
  RetryPolicy policy;
  policy.max_attempts = 3;
  Status st = b_.Save(dir_, &fenv, policy);
  ASSERT_TRUE(st.IsUnavailable()) << st;
  // Bounded: the failing op was tried exactly max_attempts times.
  EXPECT_EQ(fenv.faults_fired(), policy.max_attempts);
  EXPECT_EQ(fenv.sleep_count(), policy.max_attempts - 1);
  // Atomic: the old state is fully intact.
  auto recovered = Database::Open(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Fingerprint(*recovered), fp_a_);
}

TEST_F(CrashMatrixTest, RepeatedCrashesAcrossSavesStillConverge) {
  // Crash several consecutive saves at different points, then recover:
  // debris from multiple generations must not confuse Open or Save.
  ResetDirToA();
  for (size_t k : {3u, 9u, 15u}) {
    FaultInjectionEnv::Options opts;
    opts.fail_at_op = k;
    opts.kind = FaultInjectionEnv::FaultKind::kTornWrite;
    FaultInjectionEnv fenv(Env::Default(), opts);
    (void)b_.Save(dir_, &fenv);  // most of these crash mid-save
    auto recovered = Database::Open(dir_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    std::string fp = Fingerprint(*recovered);
    EXPECT_TRUE(fp == fp_a_ || fp == fp_b_);
  }
  ASSERT_TRUE(b_.Save(dir_).ok());
  auto final_db = Database::Open(dir_);
  ASSERT_TRUE(final_db.ok());
  EXPECT_EQ(Fingerprint(*final_db), fp_b_);
}

TEST_F(CrashMatrixTest, ReloadSwapsStateInPlaceAndResetsTreeCaches) {
  ResetDirToA();
  Database db;
  ASSERT_TRUE(db.Reload(dir_).ok());
  auto coll = db.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  // Warm the decoded-tree cache.
  for (DocId id : (*coll)->AllDocs()) (void)(*coll)->DecodedTree(id);
  EXPECT_GT((*coll)->GetTreeCacheStats().entries, 0u);
  EXPECT_EQ(Fingerprint(db), fp_a_);

  // Commit B on disk, reload in place: contents swap, caches start cold.
  ASSERT_TRUE(b_.Save(dir_).ok());
  ASSERT_TRUE(db.Reload(dir_).ok());
  EXPECT_EQ(Fingerprint(db), fp_b_);
  auto fresh = db.GetCollection("dblp");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->GetTreeCacheStats().entries, 0u);
  EXPECT_EQ((*fresh)->GetTreeCacheStats().hits, 0u);

  // A failed reload leaves the in-memory state untouched.
  fs::remove_all(dir_);
  EXPECT_FALSE(db.Reload(dir_).ok());
  EXPECT_EQ(Fingerprint(db), fp_b_);
}

TEST_F(CrashMatrixTest, HostileKeysSurviveTheFullMatrixProtocol) {
  // Keys exercising every escape path, saved and recovered byte-exact.
  Database db;
  auto coll = db.CreateCollection("k");
  ASSERT_TRUE(coll.ok());
  const std::string keys[] = {
      "line\nbreak", "cr\rlf\n", "pct % pct %25", "path/sep\\both",
      "spaces  and\ttabs", std::string("nul\0inside", 10),
  };
  for (const std::string& key : keys) {
    ASSERT_TRUE((*coll)->InsertXml(key, "<v/>").ok());
  }
  ASSERT_TRUE(db.Save(dir_).ok());
  auto back = Database::Open(dir_);
  ASSERT_TRUE(back.ok()) << back.status();
  auto bcoll = back->GetCollection("k");
  ASSERT_TRUE(bcoll.ok());
  EXPECT_EQ((*bcoll)->size(), 6u);
  for (const std::string& key : keys) {
    EXPECT_TRUE((*bcoll)->FindKey(key).ok()) << EscapeKey(key);
  }
  EXPECT_EQ(Fingerprint(*back), Fingerprint(db));
}

// --- WAL fault matrix ------------------------------------------------------
//
// The ingest-side durability contract: for EVERY mutating I/O operation k
// of a durable session (reopen + a run of DurableInsert/Replace/Remove), a
// crash injected at op k leaves the directory in a state from which Open
// recovers exactly the state after some PREFIX of the mutations -- never a
// torn hybrid -- and every mutation that was ACKED (its Durable* call
// returned OK, meaning its fsync was acknowledged) is in that prefix.

class WalCrashMatrixTest : public CrashMatrixTest {
 protected:
  /// Seeds dir_ with a checkpointed durable database holding one document
  /// ("base"), so a session starts from a committed snapshot + empty log.
  void SeedDurableBase() {
    fs::remove_all(dir_);
    auto db = Database::OpenDurable(dir_, Env::Default());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->DurableInsert("dblp", "base", "<base/>").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  /// The session's mutation run, applied one-by-one while the previous
  /// mutation acked. Returns how many consecutive mutations acked.
  static size_t RunMutations(Database* db) {
    size_t acked = 0;
    if (db->DurableInsert("dblp", "m1", "<m1/>").ok()) acked = 1;
    if (acked == 1 && db->DurableReplace("dblp", "base", "<base2/>").ok()) {
      acked = 2;
    }
    if (acked == 2 && db->DurableRemove("dblp", "m1").ok()) acked = 3;
    return acked;
  }

  /// Fingerprints of the states after 0, 1, 2, and 3 of the mutations,
  /// built by replaying the same operation sequence on plain collections
  /// (so document insertion order matches a WAL replay's).
  std::vector<std::string> PrefixFingerprints() {
    std::vector<std::string> fps;
    Database db;
    auto coll = db.CreateCollection("dblp");
    EXPECT_TRUE(coll.ok());
    EXPECT_TRUE((*coll)->InsertXml("base", "<base/>").ok());
    fps.push_back(Fingerprint(db));
    EXPECT_TRUE((*coll)->InsertXml("m1", "<m1/>").ok());
    fps.push_back(Fingerprint(db));
    auto parsed = xml::Parse("<base2/>");
    EXPECT_TRUE(parsed.ok());
    EXPECT_TRUE((*coll)->Replace("base", *std::move(parsed)).ok());
    fps.push_back(Fingerprint(db));
    EXPECT_TRUE((*coll)->Remove("m1").ok());
    fps.push_back(Fingerprint(db));
    return fps;
  }

  /// Mutating-op count of a fault-free session over a fresh seed.
  size_t CountSessionOps() {
    SeedDurableBase();
    FaultInjectionEnv counter(Env::Default());
    auto db = Database::OpenDurable(dir_, &counter);
    EXPECT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(RunMutations(&*db), 3u);
    return counter.op_count();
  }
};

TEST_F(WalCrashMatrixTest, EveryFaultPointLeavesAnAckedConsistentPrefix) {
  const std::vector<std::string> prefix_fps = PrefixFingerprints();
  const size_t total_ops = CountSessionOps();
  ASSERT_GE(total_ops, 6u);  // >= one append + one fsync per mutation

  const FaultInjectionEnv::FaultKind kinds[] = {
      FaultInjectionEnv::FaultKind::kHardError,
      FaultInjectionEnv::FaultKind::kTornWrite,
      FaultInjectionEnv::FaultKind::kNoSpace,
  };
  for (FaultInjectionEnv::FaultKind kind : kinds) {
    for (size_t k = 0; k < total_ops; ++k) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " fault at op " + std::to_string(k));
      SeedDurableBase();
      FaultInjectionEnv::Options opts;
      opts.fail_at_op = k;
      opts.kind = kind;
      FaultInjectionEnv fenv(Env::Default(), opts);
      size_t acked = 0;
      {
        auto db = Database::OpenDurable(dir_, &fenv);
        ASSERT_TRUE(db.ok()) << db.status();  // open over a clean seed reads
        acked = RunMutations(&*db);
      }
      ASSERT_GE(fenv.faults_fired(), 1u);
      ASSERT_LT(acked, 3u);  // the fault landed inside some mutation

      // A restarted process recovers a prefix state containing every
      // acked mutation. (It may contain MORE: a record whose bytes landed
      // but whose fsync failed replays fine -- unacked-but-present is
      // allowed, acked-but-absent never.)
      RecoveryReport report;
      auto recovered = Database::Open(dir_, Env::Default(), &report);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      const std::string fp = Fingerprint(*recovered);
      const auto it = std::find(prefix_fps.begin(), prefix_fps.end(), fp);
      ASSERT_NE(it, prefix_fps.end())
          << "torn hybrid state recovered:\n" << fp;
      const size_t prefix_len =
          static_cast<size_t>(it - prefix_fps.begin());
      EXPECT_GE(prefix_len, acked)
          << "an acked mutation vanished after the crash";

      // Recovery is idempotent.
      auto again = Database::Open(dir_, Env::Default());
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(Fingerprint(*again), fp);

      // And a clean durable reopen heals (truncating any torn tail) and
      // completes the run: the remaining mutations land.
      {
        auto healed = Database::OpenDurable(dir_, Env::Default());
        ASSERT_TRUE(healed.ok()) << healed.status();
        if (prefix_len < 1) {
          ASSERT_TRUE(healed->DurableInsert("dblp", "m1", "<m1/>").ok());
        }
        if (prefix_len < 2) {
          ASSERT_TRUE(
              healed->DurableReplace("dblp", "base", "<base2/>").ok());
        }
        if (prefix_len < 3) {
          ASSERT_TRUE(healed->DurableRemove("dblp", "m1").ok());
        }
      }
      auto final_db = Database::Open(dir_);
      ASSERT_TRUE(final_db.ok()) << final_db.status();
      EXPECT_EQ(Fingerprint(*final_db), prefix_fps.back());
    }
  }
}

TEST_F(WalCrashMatrixTest, TransientFaultsAreAbsorbedByGroupCommitRetry) {
  const size_t total_ops = CountSessionOps();
  for (size_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("transient fault at op " + std::to_string(k));
    SeedDurableBase();
    FaultInjectionEnv::Options opts;
    opts.fail_at_op = k;
    opts.kind = FaultInjectionEnv::FaultKind::kTransient;
    opts.transient_failures = 2;  // below RetryPolicy::max_attempts
    FaultInjectionEnv fenv(Env::Default(), opts);
    {
      auto db = Database::OpenDurable(dir_, &fenv);
      ASSERT_TRUE(db.ok()) << db.status();
      EXPECT_EQ(RunMutations(&*db), 3u);  // the outage is invisible
    }
    EXPECT_EQ(fenv.faults_fired(), 2u);
    EXPECT_EQ(fenv.sleep_count(), 2u);  // one backoff per transient failure
    RecoveryReport report;
    auto recovered = Database::Open(dir_, Env::Default(), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_FALSE(report.wal->torn_tail);  // retries never tore the log
    EXPECT_EQ(Fingerprint(*recovered), PrefixFingerprints().back());
  }
}

TEST_F(CrashMatrixTest, SaveAndOpenRecordTraceSpans) {
  fs::remove_all(dir_);
  obs::Trace save_trace("save");
  {
    obs::Span root = save_trace.RootSpan();
    ASSERT_TRUE(a_.Save(dir_, Env::Default(), RetryPolicy{}, &root).ok());
  }
  std::vector<std::string> phases;
  for (const auto& c : save_trace.root().children) phases.push_back(c->name);
  EXPECT_EQ(phases, (std::vector<std::string>{"prepare", "write_docs",
                                              "commit", "cleanup"}));

  obs::Trace open_trace("open");
  {
    obs::Span root = open_trace.RootSpan();
    RecoveryReport report;
    auto db = Database::Open(dir_, Env::Default(), &report, &root);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_FALSE(report.degraded());
  }
  phases.clear();
  bool saw_generation = false;
  for (const auto& c : open_trace.root().children) phases.push_back(c->name);
  EXPECT_EQ(phases, (std::vector<std::string>{"scan", "load"}));
  for (const auto& [k, v] : open_trace.root().annotations) {
    if (k == "loaded_generation" && !v.empty()) saw_generation = true;
  }
  EXPECT_TRUE(saw_generation);
}

}  // namespace
}  // namespace toss::store
