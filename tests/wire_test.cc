// Wire-protocol units: request round-trips (struct -> JSON -> struct with
// nothing lost), strict rejection of malformed documents as typed errors
// (never a crash, never a silently-ignored field), and response
// serialization.

#include "service/wire.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tax/condition_parser.h"

namespace toss::service::wire {
namespace {

tax::PatternTree AuthorPattern() {
  tax::PatternTree pattern;
  const int root = pattern.AddRoot();
  pattern.AddChild(root, tax::EdgeKind::kPc);  // $2
  pattern.AddChild(2, tax::EdgeKind::kAd);     // $3 under $2
  auto cond = tax::ParseCondition(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$2.content ~ \"jeffrey ullman\"");
  EXPECT_TRUE(cond.ok());
  pattern.SetCondition(std::move(cond).value());
  return pattern;
}

/// The round-trip property, checked via double serialization: parse(dump(r))
/// must dump to the identical document.
void ExpectRoundTrips(const QueryRequest& request) {
  const std::string once = RequestJson(request);
  auto reparsed = ParseRequestText(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(RequestJson(*reparsed), once);
}

TEST(WireRequest, SelectRoundTrips) {
  QueryRequest req = QueryRequest::Select("dblp", AuthorPattern(), {1, 2});
  req.deadline_ms = 250;
  req.collect_trace = true;
  req.parallelism = 3;
  ExpectRoundTrips(req);
}

TEST(WireRequest, ProjectRoundTrips) {
  QueryRequest req = QueryRequest::Project("dblp", AuthorPattern(),
                                           {{1, false}, {2, true}});
  ExpectRoundTrips(req);
}

TEST(WireRequest, GroupByRoundTrips) {
  ExpectRoundTrips(QueryRequest::GroupBy("dblp", AuthorPattern(), 2, {1}));
}

TEST(WireRequest, JoinRoundTrips) {
  ExpectRoundTrips(
      QueryRequest::Join("dblp", "sigmod", AuthorPattern(), {2, 3}));
}

TEST(WireRequest, MutationsRoundTrip) {
  ExpectRoundTrips(QueryRequest::Insert("dblp", "k1", "<a>x</a>"));
  ExpectRoundTrips(QueryRequest::Replace("dblp", "k1", "<a>y</a>"));
  ExpectRoundTrips(QueryRequest::Remove("dblp", "k1"));
}

TEST(WireRequest, ParsedFieldsSurviveExactly) {
  QueryRequest req = QueryRequest::Select("dblp", AuthorPattern(), {1, 3});
  req.deadline_ms = 99;
  auto back = ParseRequestText(RequestJson(req));
  ASSERT_TRUE(back.ok());
  const auto* spec = std::get_if<SelectSpec>(&back->op);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->collection, "dblp");
  EXPECT_EQ(spec->sl, (std::vector<int>{1, 3}));
  EXPECT_EQ(back->deadline_ms, 99u);
  ASSERT_EQ(spec->pattern.node_count(), 3u);
  EXPECT_EQ(spec->pattern.node(1).edge_from_parent, tax::EdgeKind::kPc);
  EXPECT_EQ(spec->pattern.node(2).edge_from_parent, tax::EdgeKind::kAd);
  EXPECT_EQ(spec->pattern.condition().ToString(),
            AuthorPattern().condition().ToString());
}

TEST(WireRequest, TextQueryParses) {
  auto req = ParseRequestText(
      "{\"text\": \"SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \\\"inproceedings\\\" & $2.tag = \\\"author\\\"\", "
      "\"options\": {\"deadline_ms\": 50}}");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  const auto* spec = std::get_if<SelectSpec>(&req->op);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->collection, "dblp");
  EXPECT_EQ(req->deadline_ms, 50u);
}

// --- Typed rejection ---------------------------------------------------------

void ExpectRejected(const std::string& doc, StatusCode code) {
  auto parsed = ParseRequestText(doc);
  ASSERT_FALSE(parsed.ok()) << doc;
  EXPECT_EQ(parsed.status().code(), code)
      << doc << " -> " << parsed.status().ToString();
}

TEST(WireReject, NonJsonIsParseError) {
  ExpectRejected("not json at all", StatusCode::kParseError);
  ExpectRejected("{\"op\": \"select\"", StatusCode::kParseError);
  ExpectRejected("", StatusCode::kParseError);
}

TEST(WireReject, NonObjectIsInvalidArgument) {
  ExpectRejected("[1,2,3]", StatusCode::kInvalidArgument);
  ExpectRejected("42", StatusCode::kInvalidArgument);
}

TEST(WireReject, UnknownOpAndMissingOp) {
  ExpectRejected("{\"op\": \"teleport\"}", StatusCode::kInvalidArgument);
  ExpectRejected("{}", StatusCode::kInvalidArgument);
}

TEST(WireReject, UnknownKeysAreErrorsNotIgnored) {
  // A typo'd option must fail loudly -- this is the strictness contract.
  ExpectRejected(
      "{\"op\": \"remove\", \"collection\": \"c\", \"key\": \"k\", "
      "\"dead_line_ms\": 5}",
      StatusCode::kInvalidArgument);
  ExpectRejected(
      "{\"op\": \"remove\", \"collection\": \"c\", \"key\": \"k\", "
      "\"options\": {\"deadlineMs\": 5}}",
      StatusCode::kInvalidArgument);
}

TEST(WireReject, FieldsFromTheWrongOp) {
  // "sl" belongs to select/join/groupby, not remove; "xml" not to remove.
  ExpectRejected(
      "{\"op\": \"remove\", \"collection\": \"c\", \"key\": \"k\", "
      "\"sl\": [1]}",
      StatusCode::kInvalidArgument);
  ExpectRejected(
      "{\"op\": \"remove\", \"collection\": \"c\", \"key\": \"k\", "
      "\"xml\": \"<a/>\"}",
      StatusCode::kInvalidArgument);
}

TEST(WireReject, WrongTypes) {
  ExpectRejected("{\"op\": \"select\", \"collection\": 7, "
                 "\"pattern\": {\"nodes\": []}, \"sl\": [1]}",
                 StatusCode::kInvalidArgument);
  ExpectRejected("{\"op\": \"select\", \"collection\": \"c\", "
                 "\"pattern\": {\"nodes\": []}, \"sl\": [1.5]}",
                 StatusCode::kInvalidArgument);
  ExpectRejected("{\"op\": \"select\", \"collection\": \"c\", "
                 "\"pattern\": \"$1/$2\", \"sl\": [1]}",
                 StatusCode::kInvalidArgument);
  ExpectRejected("{\"text\": 42}", StatusCode::kInvalidArgument);
}

TEST(WireReject, OutOfRangePatternParents) {
  // Parent label 5 does not exist yet when $2 is declared.
  ExpectRejected(
      "{\"op\": \"select\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": [{\"parent\": 5, \"edge\": \"pc\"}]}, "
      "\"sl\": [1]}",
      StatusCode::kInvalidArgument);
  // A node may not parent itself ($2 naming parent 2).
  ExpectRejected(
      "{\"op\": \"select\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": [{\"parent\": 2, \"edge\": \"pc\"}]}, "
      "\"sl\": [1]}",
      StatusCode::kInvalidArgument);
  ExpectRejected(
      "{\"op\": \"select\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": [{\"parent\": 0, \"edge\": \"pc\"}]}, "
      "\"sl\": [1]}",
      StatusCode::kInvalidArgument);
}

TEST(WireReject, BadEdgeKind) {
  ExpectRejected(
      "{\"op\": \"select\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": [{\"parent\": 1, \"edge\": \"sibling\"}]}, "
      "\"sl\": [1]}",
      StatusCode::kInvalidArgument);
}

TEST(WireReject, UnparseableConditionIsParseError) {
  ExpectRejected(
      "{\"op\": \"select\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": [], \"condition\": \"$1.tag &&& what\"}, "
      "\"sl\": [1]}",
      StatusCode::kParseError);
}

TEST(WireReject, UnparseableTextIsParseError) {
  ExpectRejected("{\"text\": \"SELEKT everything\"}",
                 StatusCode::kParseError);
}

TEST(WireReject, WrongVersion) {
  ExpectRejected("{\"version\": 2, \"op\": \"remove\", "
                 "\"collection\": \"c\", \"key\": \"k\"}",
                 StatusCode::kInvalidArgument);
}

TEST(WireReject, NegativeOptionValues) {
  ExpectRejected(
      "{\"op\": \"remove\", \"collection\": \"c\", \"key\": \"k\", "
      "\"options\": {\"deadline_ms\": -5}}",
      StatusCode::kInvalidArgument);
}

TEST(WireReject, HostileDocumentsNeverCrash) {
  const char* hostile[] = {
      "{\"op\": \"select\"}",
      "{\"op\": \"join\", \"left\": \"a\"}",
      "{\"op\": \"project\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": []}, \"pl\": [{\"label\": true}]}",
      "{\"op\": \"groupby\", \"collection\": \"c\", "
      "\"pattern\": {\"nodes\": []}, \"group_label\": [], \"sl\": []}",
      "{\"options\": {\"deadline_ms\": 1}, \"op\": \"select\", "
      "\"collection\": \"c\", \"pattern\": {\"nodes\": "
      "[{\"parent\": 1}, {\"parent\": 1}, {\"parent\": 3}]}, \"sl\": "
      "[9999999999999]}",
      "{\"text\": \"\"}",
      "{\"pattern\": 1e308}",
  };
  for (const char* doc : hostile) {
    auto parsed = ParseRequestText(doc);
    EXPECT_FALSE(parsed.ok()) << doc;
  }
}

// --- Response ---------------------------------------------------------------

TEST(WireResponse, CarriesStatusStatsAndVersion) {
  QueryResponse resp;
  resp.status = Status::DeadlineExceeded("too slow");
  resp.stats.eval_ms = 1.5;
  resp.stats.result_trees = 0;
  resp.queue_wait_ms = 0.25;
  auto doc = common::JsonValue::Parse(ResponseJson(resp));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("version")->AsDouble(), 1.0);
  EXPECT_EQ(doc->Get("status")->Get("code")->AsString(), "DeadlineExceeded");
  EXPECT_EQ(doc->Get("status")->Get("message")->AsString(), "too slow");
  EXPECT_EQ(doc->Get("stats")->Get("eval_ms")->AsDouble(), 1.5);
  EXPECT_EQ(doc->Get("queue_wait_ms")->AsDouble(), 0.25);
  EXPECT_TRUE(doc->Get("trees")->is_array());
  EXPECT_EQ(doc->Get("trees")->size(), 0u);
  EXPECT_TRUE(doc->Get("trace")->is_null());
}

}  // namespace
}  // namespace toss::service::wire
