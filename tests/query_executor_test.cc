#include <gtest/gtest.h>

#include <algorithm>

#include "core/toss.h"

#include "eval/metrics.h"
#include "xml/xml_writer.h"

namespace toss::core {
namespace {

// Every query in this file goes through the QueryOptions path; these are
// the defaults (inline evaluation, no cancellation, no prepared cache).
const QueryOptions kOpts{};

class QueryExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dblp = db_.CreateCollection("dblp");
    ASSERT_TRUE(dblp.ok());
    const char* kPapers[] = {
        // One author canonical, venue short form.
        "<inproceedings gtid=\"10001\">"
        "<author gtid=\"1001\">Jeffrey Ullman</author>"
        "<title>Views</title>"
        "<booktitle>SIGMOD Conference</booktitle><year>1999</year>"
        "</inproceedings>",
        // Same author, middle-initial variant, venue full form.
        "<inproceedings gtid=\"10002\">"
        "<author gtid=\"1001\">Jeffrey D. Ullman</author>"
        "<title>Indexes</title>"
        "<booktitle>ACM SIGMOD International Conference on Management of "
        "Data</booktitle><year>2000</year>"
        "</inproceedings>",
        // Different author, same venue.
        "<inproceedings gtid=\"10003\">"
        "<author gtid=\"1002\">Serge Abiteboul</author>"
        "<title>Trees</title>"
        "<booktitle>SIGMOD Conference</booktitle><year>2000</year>"
        "</inproceedings>",
        // Same author at an unrelated venue.
        "<inproceedings gtid=\"10004\">"
        "<author gtid=\"1001\">Jeffrey Ullman</author>"
        "<title>Joins</title>"
        "<booktitle>SIGIR</booktitle><year>1998</year>"
        "</inproceedings>",
    };
    int i = 0;
    for (const char* p : kPapers) {
      ASSERT_TRUE((*dblp)->InsertXml("p" + std::to_string(i++), p).ok());
    }

    // Build the SEO from this instance's ontology.
    ontology::OntologyMakerOptions opts;
    opts.content_tags = {"author", "booktitle"};
    // One ontology for the whole collection (a multi-document instance).
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*dblp)->AllDocs()) {
      docs.push_back(&(*dblp)->document(id));
    }
    auto o = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(o.ok()) << o.status();
    builder_.AddInstanceOntology(std::move(o).value());
    builder_.SetMeasure(*sim::MakeMeasure("levenshtein"));
    builder_.SetEpsilon(3.0);
    auto seo = builder_.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = MakeBibliographicTypeSystem();
  }

  tax::PatternTree UllmanAtSigmod() {
    tax::PatternTree pt;
    int root = pt.AddRoot();
    pt.AddChild(root, tax::EdgeKind::kPc);
    pt.AddChild(root, tax::EdgeKind::kPc);
    pt.SetCondition(
        tax::ParseCondition(
            "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
            "$3.tag = \"booktitle\" & "
            "$2.content ~ \"Jeffrey Ullman\" & "
            "$3.content isa \"SIGMOD Conference\"")
            .value());
    return pt;
  }

  store::Database db_;
  SeoBuilder builder_;
  Seo seo_;
  TypeSystem types_;
};

TEST_F(QueryExecutorTest, TaxBaselineFindsExactMatchesOnly) {
  QueryExecutor tax_exec(&db_, nullptr, nullptr);
  EXPECT_FALSE(tax_exec.is_toss());
  ExecStats stats;
  auto r = tax_exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  // Exact author + contains(venue): only paper 10001.
  auto ids = ::toss::eval::ExtractRootProvenance(*r);
  EXPECT_EQ(ids, std::set<uint64_t>{10001});
  EXPECT_GT(stats.xpath_queries, 0u);
  EXPECT_GE(stats.TotalMs(), 0.0);
}

TEST_F(QueryExecutorTest, TossFindsVariantsAndVenueForms) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  EXPECT_TRUE(toss_exec.is_toss());
  ExecStats stats;
  auto r = toss_exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  // The middle-initial variant AND the full-venue-name paper both match.
  auto ids = ::toss::eval::ExtractRootProvenance(*r);
  EXPECT_EQ(ids, (std::set<uint64_t>{10001, 10002}));
  EXPECT_GT(stats.expanded_terms, 0u);
  EXPECT_LE(stats.candidate_docs, 4u);
}

TEST_F(QueryExecutorTest, TossAnswersContainTaxAnswers) {
  QueryExecutor tax_exec(&db_, nullptr, nullptr);
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  auto pattern = UllmanAtSigmod();
  auto tax_r = tax_exec.Select("dblp", pattern, {1}, kOpts);
  auto toss_r = toss_exec.Select("dblp", pattern, {1}, kOpts);
  ASSERT_TRUE(tax_r.ok());
  ASSERT_TRUE(toss_r.ok());
  auto tax_ids = ::toss::eval::ExtractRootProvenance(*tax_r);
  auto toss_ids = ::toss::eval::ExtractRootProvenance(*toss_r);
  EXPECT_TRUE(std::includes(toss_ids.begin(), toss_ids.end(),
                            tax_ids.begin(), tax_ids.end()));
}

TEST_F(QueryExecutorTest, CategoryQueryUsesIsaExpansion) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition("$1.tag = \"inproceedings\" & "
                          "$2.tag = \"booktitle\" & "
                          "$2.content isa \"database conference\"")
          .value());
  auto r = toss_exec.Select("dblp", pt, {1}, kOpts);
  ASSERT_TRUE(r.ok()) << r.status();
  auto ids = ::toss::eval::ExtractRootProvenance(*r);
  // All SIGMOD papers (either surface form) but not the SIGIR one.
  EXPECT_EQ(ids, (std::set<uint64_t>{10001, 10002, 10003}));
}

TEST_F(QueryExecutorTest, ProjectReturnsMatchedSubtrees) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  auto r = toss_exec.Project("dblp", UllmanAtSigmod(), {{2, false}}, kOpts);
  ASSERT_TRUE(r.ok()) << r.status();
  // Two author nodes (one per matched paper).
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].node(0).tag, "author");
}

TEST_F(QueryExecutorTest, RewritePushesDownExpandedTerms) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  size_t expanded = 0;
  auto xpaths = toss_exec.RewriteToXPaths(UllmanAtSigmod(), {}, &expanded);
  ASSERT_TRUE(xpaths.ok()) << xpaths.status();
  ASSERT_EQ(xpaths->size(), 3u);  // one per tagged label
  EXPECT_GT(expanded, 2u);
  bool has_disjunction = false;
  for (const auto& xp : *xpaths) {
    if (xp.find(" or ") != std::string::npos) has_disjunction = true;
  }
  EXPECT_TRUE(has_disjunction);
}

TEST_F(QueryExecutorTest, RangePredicatesPushDownToIndexScans) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition("$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
                          "$2.content >= \"1999\" & $2.content <= \"2000\"")
          .value());
  ExecStats stats;
  auto r = toss_exec.Select("dblp", pt, {1}, kOpts, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  // Papers 10001 (1999), 10002 (2000), 10003 (2000); 10004 is 1998.
  EXPECT_EQ(::toss::eval::ExtractRootProvenance(*r),
            (std::set<uint64_t>{10001, 10002, 10003}));
  EXPECT_EQ(stats.candidate_docs, 3u) << "range scan should prune p 10004";

  // Reversed operand order flips the comparison: "1999" <= $2.content.
  tax::PatternTree reversed;
  root = reversed.AddRoot();
  reversed.AddChild(root, tax::EdgeKind::kPc);
  reversed.SetCondition(
      tax::ParseCondition("$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
                          "\"1999\" <= $2.content")
          .value());
  auto r2 = toss_exec.Select("dblp", reversed, {1}, kOpts);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(::toss::eval::ExtractRootProvenance(*r2),
            (std::set<uint64_t>{10001, 10002, 10003}));
}

TEST_F(QueryExecutorTest, ExplainShowsPlan) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  auto plan = toss_exec.Explain("dblp", UllmanAtSigmod());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("TOSS"), std::string::npos);
  EXPECT_NE(plan->find("//author"), std::string::npos);
  EXPECT_NE(plan->find("Jeffrey D. Ullman"), std::string::npos)
      << "expanded variant must appear in the plan:\n" << *plan;
  EXPECT_NE(plan->find("candidates after intersection: 2"),
            std::string::npos)
      << *plan;

  QueryExecutor tax_exec(&db_, nullptr, nullptr);
  auto tax_plan = tax_exec.Explain("dblp", UllmanAtSigmod());
  ASSERT_TRUE(tax_plan.ok());
  EXPECT_NE(tax_plan->find("TAX"), std::string::npos);
  EXPECT_TRUE(toss_exec.Explain("ghost", UllmanAtSigmod()).status()
                  .IsNotFound());
}

TEST_F(QueryExecutorTest, JoinAcrossCollections) {
  auto sigmod = db_.CreateCollection("sigmod");
  ASSERT_TRUE(sigmod.ok());
  ASSERT_TRUE((*sigmod)
                  ->InsertXml("page0",
                              "<proceedingsPage><articles>"
                              "<article gtid=\"10001\">"
                              "<title>Views.</title></article>"
                              "<article gtid=\"99\">"
                              "<title>Nothing Alike Here</title></article>"
                              "</articles></proceedingsPage>")
                  .ok());
  QueryExecutor toss_exec(&db_, &seo_, &types_);

  tax::PatternTree pt;
  int root = pt.AddRoot();
  int left = pt.AddChild(root, tax::EdgeKind::kPc);
  pt.AddChild(left, tax::EdgeKind::kPc);
  int article = pt.AddChild(root, tax::EdgeKind::kAd);
  pt.AddChild(article, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition("$1.tag = \"tax_prod_root\" & "
                          "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
                          "$4.tag = \"article\" & $5.tag = \"title\" & "
                          "$3.content ~ $5.content")
          .value());
  ExecStats stats;
  auto r = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, kOpts, &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  // "Views" ~ "Views." at eps=3 via the measure fallback; nothing else.
  ASSERT_EQ(r->size(), 1u);
  auto ids = ::toss::eval::ExtractProvenance(*r, "inproceedings");
  EXPECT_EQ(ids, std::set<uint64_t>{10001});

  // TAX join: exact equality only -> empty.
  QueryExecutor tax_exec(&db_, nullptr, nullptr);
  auto tr = tax_exec.Join("dblp", "sigmod", pt, {2, 4}, kOpts);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr->empty());
}

TEST_F(QueryExecutorTest, JoinRequiresProductShapedPattern) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  tax::PatternTree pt;
  pt.AddRoot();
  auto r = toss_exec.Join("dblp", "dblp", pt, {}, kOpts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(QueryExecutorTest, UnknownCollectionIsNotFound) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  auto r = toss_exec.Select("nope", UllmanAtSigmod(), {1}, kOpts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Trace-enabled execution (EXPLAIN ANALYZE through the options path: pass a
// live root span, read the trace back).
// ---------------------------------------------------------------------------

/// Each tree rendered to canonical XML: the byte-identical comparison
/// between plain and trace-enabled results (same trees, same order).
std::vector<std::string> Serialize(const tax::TreeCollection& trees) {
  std::vector<std::string> out;
  out.reserve(trees.size());
  for (const auto& t : trees) out.push_back(xml::Write(t.ToXml()));
  return out;
}

/// The root's direct child names, in creation order.
std::vector<std::string> ChildNames(const obs::TraceNode& root) {
  std::vector<std::string> out;
  for (const auto& c : root.children) out.push_back(c->name);
  return out;
}

TEST_F(QueryExecutorTest, TracedSelectMatchesPlainExecute) {
  for (bool toss : {false, true}) {
    QueryExecutor exec(&db_, toss ? &seo_ : nullptr,
                       toss ? &types_ : nullptr);
    ExecStats stats;
    auto plain = exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts, &stats);
    ASSERT_TRUE(plain.ok()) << plain.status();

    obs::Trace trace("select(dblp)");
    ExecStats traced_stats;
    Result<tax::TreeCollection> traced = tax::TreeCollection{};
    {
      obs::Span root_span = trace.RootSpan();
      traced = exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts,
                           &traced_stats, &root_span);
    }
    ASSERT_TRUE(traced.ok()) << traced.status();

    // Golden: byte-identical answers in identical order.
    EXPECT_EQ(Serialize(*plain), Serialize(*traced));
    EXPECT_EQ(traced_stats.xpath_queries, stats.xpath_queries);
    EXPECT_EQ(traced_stats.candidate_docs, stats.candidate_docs);
    EXPECT_EQ(traced_stats.result_trees, stats.result_trees);

    // Trace structure: the three instrumented phases, all closed.
    const obs::TraceNode& root = trace.root();
    EXPECT_GT(root.duration_nanos, 0u);
    EXPECT_EQ(ChildNames(root),
              (std::vector<std::string>{"rewrite", "store_scan", "eval"}));
    for (const auto& c : root.children) EXPECT_GT(c->duration_nanos, 0u);
    double cov = trace.CoverageFraction();
    EXPECT_GT(cov, 0.0);
    EXPECT_LE(cov, 1.0);

    // Pretty output carries the phase tree.
    std::string pretty = trace.Pretty();
    EXPECT_NE(pretty.find("store_scan"), std::string::npos) << pretty;
  }
}

TEST_F(QueryExecutorTest, TracedSelectAnnotatesThePhases) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  obs::Trace trace("select(dblp)");
  ExecStats stats;
  {
    obs::Span root_span = trace.RootSpan();
    auto r = toss_exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts, &stats,
                              &root_span);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const obs::TraceNode& root = trace.root();
  auto annotation = [](const obs::TraceNode& n, const std::string& key) {
    for (const auto& [k, v] : n.annotations) {
      if (k == key) return v;
    }
    return std::string();
  };
  EXPECT_EQ(annotation(*root.children[0], "xpath_queries"),
            std::to_string(stats.xpath_queries));
  EXPECT_EQ(annotation(*root.children[0], "expanded_terms"),
            std::to_string(stats.expanded_terms));
  EXPECT_EQ(annotation(*root.children[1], "candidate_docs"),
            std::to_string(stats.candidate_docs));
  EXPECT_FALSE(annotation(*root.children[1], "index_pruning_ratio").empty());
  EXPECT_EQ(annotation(*root.children[2], "result_trees"),
            std::to_string(stats.result_trees));
  // Decoded-tree cache deltas are recorded on the eval phase.
  EXPECT_FALSE(annotation(*root.children[2], "tree_cache_misses").empty());
}

TEST_F(QueryExecutorTest, TracedProjectAndGroupByMatchPlainExecute) {
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  auto plain_p =
      toss_exec.Project("dblp", UllmanAtSigmod(), {{2, false}}, kOpts);
  obs::Trace trace_p("project(dblp)");
  Result<tax::TreeCollection> traced_p = tax::TreeCollection{};
  {
    obs::Span root_span = trace_p.RootSpan();
    traced_p = toss_exec.Project("dblp", UllmanAtSigmod(), {{2, false}},
                                 kOpts, nullptr, &root_span);
  }
  ASSERT_TRUE(plain_p.ok()) << plain_p.status();
  ASSERT_TRUE(traced_p.ok()) << traced_p.status();
  EXPECT_EQ(Serialize(*plain_p), Serialize(*traced_p));
  EXPECT_EQ(ChildNames(trace_p.root()),
            (std::vector<std::string>{"rewrite", "store_scan", "eval"}));

  auto plain_g = toss_exec.GroupBy("dblp", UllmanAtSigmod(), 3, {1}, kOpts);
  obs::Trace trace_g("groupby(dblp)");
  Result<tax::TreeCollection> traced_g = tax::TreeCollection{};
  {
    obs::Span root_span = trace_g.RootSpan();
    traced_g = toss_exec.GroupBy("dblp", UllmanAtSigmod(), 3, {1}, kOpts,
                                 nullptr, &root_span);
  }
  ASSERT_TRUE(plain_g.ok()) << plain_g.status();
  ASSERT_TRUE(traced_g.ok()) << traced_g.status();
  EXPECT_EQ(Serialize(*plain_g), Serialize(*traced_g));
}

TEST_F(QueryExecutorTest, TracedJoinMatchesPlainExecute) {
  auto sigmod = db_.CreateCollection("sigmod");
  ASSERT_TRUE(sigmod.ok());
  ASSERT_TRUE((*sigmod)
                  ->InsertXml("page0",
                              "<proceedingsPage><articles>"
                              "<article gtid=\"10001\">"
                              "<title>Views.</title></article>"
                              "</articles></proceedingsPage>")
                  .ok());
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  tax::PatternTree pt;
  int root = pt.AddRoot();
  int left = pt.AddChild(root, tax::EdgeKind::kPc);
  pt.AddChild(left, tax::EdgeKind::kPc);
  int article = pt.AddChild(root, tax::EdgeKind::kAd);
  pt.AddChild(article, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition("$1.tag = \"tax_prod_root\" & "
                          "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
                          "$4.tag = \"article\" & $5.tag = \"title\" & "
                          "$3.content ~ $5.content")
          .value());
  auto plain = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, kOpts);
  obs::Trace trace("join(dblp,sigmod)");
  Result<tax::TreeCollection> traced = tax::TreeCollection{};
  {
    obs::Span root_span = trace.RootSpan();
    traced = toss_exec.Join("dblp", "sigmod", pt, {2, 4}, kOpts, nullptr,
                            &root_span);
  }
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_EQ(Serialize(*plain), Serialize(*traced));
  EXPECT_EQ(ChildNames(trace.root()),
            (std::vector<std::string>{"candidates_left", "candidates_right",
                                      "decode_right", "eval"}));
}

TEST_F(QueryExecutorTest, OperatorsInvariantUnderSymbolFastPaths) {
  // Select / Project / GroupBy answers must be byte-identical with the
  // interner's id comparison fast paths disabled: ids accelerate term
  // equality and ~, they never change it. Covers TAX (exact ~) and TOSS
  // (ontology + measure ~) semantics.
  QueryExecutor tax_exec(&db_, nullptr, nullptr);
  QueryExecutor toss_exec(&db_, &seo_, &types_);
  struct Run {
    std::vector<std::string> select, project, group;
  };
  auto run_all = [&](const QueryExecutor& exec) {
    Run out;
    auto s = exec.Select("dblp", UllmanAtSigmod(), {1}, kOpts);
    EXPECT_TRUE(s.ok()) << s.status();
    if (s.ok()) out.select = Serialize(*s);
    auto p = exec.Project("dblp", UllmanAtSigmod(), {{2, false}}, kOpts);
    EXPECT_TRUE(p.ok()) << p.status();
    if (p.ok()) out.project = Serialize(*p);
    auto g = exec.GroupBy("dblp", UllmanAtSigmod(), 3, {1}, kOpts);
    EXPECT_TRUE(g.ok()) << g.status();
    if (g.ok()) out.group = Serialize(*g);
    return out;
  };
  for (QueryExecutor* exec : {&tax_exec, &toss_exec}) {
    SetSymbolFastPaths(true);
    Run fast = run_all(*exec);
    SetSymbolFastPaths(false);
    Run slow = run_all(*exec);
    SetSymbolFastPaths(true);
    EXPECT_EQ(fast.select, slow.select);
    EXPECT_EQ(fast.project, slow.project);
    EXPECT_EQ(fast.group, slow.group);
    EXPECT_FALSE(fast.select.empty());
    EXPECT_FALSE(fast.project.empty());
    EXPECT_FALSE(fast.group.empty());
  }
}

}  // namespace
}  // namespace toss::core
