// Loopback tests of the HTTP edge (DESIGN.md §16): a real HttpServer over
// real sockets in front of a real TossService. The central guarantee is
// the golden one -- an HTTP-issued query returns byte-identical trees to
// the in-process Run for the same request -- plus transport behavior:
// keep-alive, pipelining, concurrent connections, admission (429/503),
// deadlines (504), routing (404/405), and the telemetry endpoint.
//
// This binary carries the service_smoke label, so it also runs under
// ThreadSanitizer in CI: the loop-thread / worker-pool handoff and the
// concurrent-client tests are exactly the races TSan is here to watch.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/toss.h"
#include "data/bib_generator.h"
#include "net/http_server.h"
#include "net/toss_handler.h"
#include "service/toss_service.h"
#include "service/wire.h"

namespace toss::net {
namespace {

// --- A tiny blocking test client --------------------------------------------

class TestClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  ~TestClient() { Close(); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Half-close: "request done, now send me the answer" (HTTP/1.0 idiom).
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Abortive close: RST instead of FIN, so the server's next write on
  /// this connection fails immediately.
  void AbortiveClose() {
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    Close();
  }

  bool SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  struct Response {
    int status = -1;
    std::string body;
    std::string connection;  ///< value of the Connection header
  };

  /// Reads one Content-Length-framed response off the stream.
  Response ReadResponse() {
    Response out;
    size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return out;
    }
    const std::string head = buf_.substr(0, head_end);
    out.status = std::atoi(head.c_str() + strlen("HTTP/1.1 "));
    const size_t conn_pos = head.find("Connection: ");
    if (conn_pos != std::string::npos) {
      const size_t eol = head.find("\r\n", conn_pos);
      out.connection = head.substr(conn_pos + strlen("Connection: "),
                                   eol - conn_pos - strlen("Connection: "));
    }
    const size_t clen_pos = head.find("Content-Length: ");
    EXPECT_NE(clen_pos, std::string::npos);
    const size_t body_len = static_cast<size_t>(
        std::atol(head.c_str() + clen_pos + strlen("Content-Length: ")));
    while (buf_.size() < head_end + 4 + body_len) {
      if (!Fill()) return out;
    }
    out.body = buf_.substr(head_end + 4, body_len);
    buf_.erase(0, head_end + 4 + body_len);
    return out;
  }

  Response Get(const std::string& target) {
    EXPECT_TRUE(SendRaw("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n"));
    return ReadResponse();
  }

  Response Post(const std::string& target, const std::string& body) {
    EXPECT_TRUE(SendRaw("POST " + target + " HTTP/1.1\r\nHost: t\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body));
    return ReadResponse();
  }

 private:
  bool Fill() {
    char chunk[8192];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

// --- Fixture -----------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::BibConfig cfg;
    cfg.seed = 314;
    cfg.num_papers = 60;
    cfg.num_people = 20;
    world_ = data::GenerateWorld(cfg);
    ASSERT_TRUE(data::LoadIntoCollection(
                    &db_, "dblp", data::EmitDblp(world_, 0, 60, cfg))
                    .ok());

    auto coll = db_.GetCollection("dblp");
    ASSERT_TRUE(coll.ok());
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = data::DblpContentTags();
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok());
    core::SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    b.SetEpsilon(3.0);
    auto seo = b.Build();
    ASSERT_TRUE(seo.ok());
    seo_ = std::move(seo).value();
    types_ = core::MakeBibliographicTypeSystem();
  }

  /// Starts a server over a fresh service; both live until TearDown.
  uint16_t Serve(service::ServiceOptions svc_opts = {},
                 ServerOptions srv_opts = {}) {
    service_ = std::make_unique<service::TossService>(&db_, &seo_, &types_,
                                                      svc_opts);
    server_ = std::make_unique<HttpServer>(MakeTossHandler(service_.get()),
                                           srv_opts);
    Status s = server_->Start();
    EXPECT_TRUE(s.ok()) << s;
    return server_->port();
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  static service::QueryRequest AuthorSelect() {
    tax::PatternTree pattern;
    const int root = pattern.AddRoot();
    pattern.AddChild(root, tax::EdgeKind::kPc);
    pattern.SetCondition(
        tax::ParseCondition("$1.tag = \"inproceedings\" & "
                            "$2.tag = \"author\"")
            .value());
    return service::QueryRequest::Select("dblp", std::move(pattern), {1});
  }

  data::BibWorld world_;
  store::Database db_;
  core::Seo seo_;
  core::TypeSystem types_;
  std::unique_ptr<service::TossService> service_;
  std::unique_ptr<HttpServer> server_;
};

// --- The golden test ---------------------------------------------------------

TEST_F(NetServerTest, HttpQueryIsByteIdenticalToInProcessRun) {
  const uint16_t port = Serve();

  // In-process reference: a private service over the same world.
  service::TossService reference(&db_, &seo_, &types_);
  service::QueryResponse direct = reference.Run(AuthorSelect());
  ASSERT_TRUE(direct.ok()) << direct.status;
  ASSERT_GT(direct.trees.size(), 0u);

  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  TestClient::Response http =
      client.Post("/v1/query", service::wire::RequestJson(AuthorSelect()));
  EXPECT_EQ(http.status, 200);

  auto doc = common::JsonValue::Parse(http.body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const common::JsonValue* trees = doc->Get("trees");
  ASSERT_NE(trees, nullptr);
  ASSERT_EQ(trees->size(), direct.trees.size());
  for (size_t i = 0; i < direct.trees.size(); ++i) {
    // Byte-identical: the wire's canonical XML rendering of each answer
    // tree equals the in-process rendering, string == string.
    EXPECT_EQ(trees->At(i)->AsString(), xml::Write(direct.trees[i].ToXml()))
        << "tree " << i;
  }
  EXPECT_EQ(doc->Get("status")->Get("code")->AsString(), "OK");
}

// --- Routing -----------------------------------------------------------------

TEST_F(NetServerTest, HealthzAnswers) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  TestClient::Response r = client.Get("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "{\"status\":\"ok\"}");
}

TEST_F(NetServerTest, TelemetryEndpointReturnsTheFullDump) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  // Prime at least one request record.
  EXPECT_EQ(
      client.Post("/v1/query", service::wire::RequestJson(AuthorSelect()))
          .status,
      200);
  TestClient::Response r = client.Get("/v1/telemetry");
  EXPECT_EQ(r.status, 200);
  auto doc = common::JsonValue::Parse(r.body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_NE(doc->Get("metrics"), nullptr);
  EXPECT_NE(doc->Get("flight_recorder"), nullptr);
  EXPECT_NE(doc->Get("build"), nullptr);
}

TEST_F(NetServerTest, UnknownRouteIs404WrongMethodIs405) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  EXPECT_EQ(client.Get("/v2/query").status, 404);
  EXPECT_EQ(client.Get("/v1/query").status, 405);
  EXPECT_EQ(client.Post("/healthz", "{}").status, 405);
}

TEST_F(NetServerTest, MalformedJsonIs400WithWireErrorBody) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  TestClient::Response r = client.Post("/v1/query", "this is not json");
  EXPECT_EQ(r.status, 400);
  auto doc = common::JsonValue::Parse(r.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status")->Get("code")->AsString(), "ParseError");
}

TEST_F(NetServerTest, MutationOnQueryRouteIs400) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  const std::string body = service::wire::RequestJson(
      service::QueryRequest::Remove("dblp", "paper-1"));
  TestClient::Response r = client.Post("/v1/query", body);
  EXPECT_EQ(r.status, 400);
  // And the mutate route refuses reads symmetrically.
  r = client.Post("/v1/mutate",
                  service::wire::RequestJson(AuthorSelect()));
  EXPECT_EQ(r.status, 400);
}

TEST_F(NetServerTest, MutateRouteOnReadOnlyServiceReportsInvalid) {
  // The fixture service is read-only (const Database*); a well-formed
  // mutation must travel the whole path and come back 400, not crash.
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  const std::string body = service::wire::RequestJson(
      service::QueryRequest::Remove("dblp", "paper-1"));
  TestClient::Response r = client.Post("/v1/mutate", body);
  EXPECT_EQ(r.status, 400);
}

// --- Transport behavior ------------------------------------------------------

TEST_F(NetServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  for (int i = 0; i < 10; ++i) {
    TestClient::Response r = client.Get("/healthz");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.connection, "keep-alive");
  }
}

TEST_F(NetServerTest, PipelinedRequestsAnswerInOrder) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  const std::string query = service::wire::RequestJson(AuthorSelect());
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    burst += "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: " +
             std::to_string(query.size()) + "\r\n\r\n" + query;
  }
  ASSERT_TRUE(client.SendRaw(burst));
  for (int i = 0; i < 5; ++i) {
    TestClient::Response health = client.ReadResponse();
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "{\"status\":\"ok\"}");
    TestClient::Response query_resp = client.ReadResponse();
    EXPECT_EQ(query_resp.status, 200);
    EXPECT_NE(query_resp.body.find("\"trees\""), std::string::npos);
  }
}

TEST_F(NetServerTest, HalfCloseAfterCompleteRequestStillGetsAnswered) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  client.ShutdownWrite();
  TestClient::Response r = client.ReadResponse();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "{\"status\":\"ok\"}");
}

TEST_F(NetServerTest, AbortiveClientDisconnectDoesNotKillTheServer) {
  const uint16_t port = Serve();
  // Clients that RST right after the request make the server's response
  // write hit a dead socket; without MSG_NOSIGNAL that raises SIGPIPE,
  // whose default disposition would take down this whole process.
  for (int i = 0; i < 8; ++i) {
    TestClient rude;
    ASSERT_TRUE(rude.Connect(port));
    ASSERT_TRUE(rude.SendRaw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
    rude.AbortiveClose();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  TestClient polite;
  ASSERT_TRUE(polite.Connect(port));
  EXPECT_EQ(polite.Get("/healthz").status, 200);
}

TEST_F(NetServerTest, UnknownRouteBodyEscapesTheTarget) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  // Quotes and backslashes pass the parser's target check; the 404 body
  // must still be valid JSON.
  TestClient::Response r = client.Get("/no\"such\\route");
  EXPECT_EQ(r.status, 404);
  auto doc = common::JsonValue::Parse(r.body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_NE(doc->Get("error"), nullptr);
  EXPECT_NE(doc->Get("error")->AsString().find("/no\"such\\route"),
            std::string::npos);
}

TEST_F(NetServerTest, ParseErrorAnswersOnceAndCloses) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  ASSERT_TRUE(client.SendRaw("NONSENSE\r\n\r\n"));
  TestClient::Response r = client.ReadResponse();
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.connection, "close");
}

TEST_F(NetServerTest, OversizeBodyIs413) {
  ServerOptions srv;
  srv.limits.max_body_bytes = 1024;
  const uint16_t port = Serve({}, srv);
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  ASSERT_TRUE(client.SendRaw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 999999\r\n\r\n"));
  TestClient::Response r = client.ReadResponse();
  EXPECT_EQ(r.status, 413);
  EXPECT_EQ(r.connection, "close");
}

TEST_F(NetServerTest, ConnectionLimitAnswers503AndCloses) {
  ServerOptions srv;
  srv.max_connections = 2;
  const uint16_t port = Serve({}, srv);
  TestClient a, b;
  ASSERT_TRUE(a.Connect(port));
  ASSERT_TRUE(b.Connect(port));
  // Make both connections real (registered) before the third arrives.
  EXPECT_EQ(a.Get("/healthz").status, 200);
  EXPECT_EQ(b.Get("/healthz").status, 200);
  TestClient c;
  ASSERT_TRUE(c.Connect(port));  // TCP accept succeeds...
  TestClient::Response r = c.ReadResponse();  // ...but the server says no
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.connection, "close");
  // The admitted connections keep working.
  EXPECT_EQ(a.Get("/healthz").status, 200);
}

// --- Service semantics through the edge --------------------------------------

TEST_F(NetServerTest, SaturatedServiceSheds429) {
  service::ServiceOptions tiny;
  tiny.max_inflight = 1;
  tiny.max_queue = 0;
  ServerOptions srv;
  srv.worker_threads = 8;
  const uint16_t port = Serve(tiny, srv);

  const std::string query = service::wire::RequestJson(AuthorSelect());
  const size_t kClients = 8;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      TestClient client;
      ASSERT_TRUE(client.Connect(port));
      for (int i = 0; i < 5; ++i) {
        switch (client.Post("/v1/query", query).status) {
          case 200: ok.fetch_add(1); break;
          case 429: shed.fetch_add(1); break;
          default: other.fetch_add(1); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  // 8 concurrent clients against max_inflight=1/max_queue=0 must shed.
  EXPECT_GT(shed.load(), 0);
}

TEST_F(NetServerTest, ExpiredDeadlineIs504) {
  // A 1 ms deadline expires while queued behind an occupied single slot;
  // the wire carries deadline_ms, the service turns it into a token, and
  // DeadlineExceeded maps to 504 at the edge.
  service::ServiceOptions tiny;
  tiny.max_inflight = 1;
  tiny.max_queue = 8;
  ServerOptions srv;
  srv.worker_threads = 4;
  const uint16_t port2 = Serve(tiny, srv);
  TestClient blocker, late;
  ASSERT_TRUE(blocker.Connect(port2));
  ASSERT_TRUE(late.Connect(port2));

  service::QueryRequest slow = AuthorSelect();
  service::QueryRequest quick = AuthorSelect();
  quick.deadline_ms = 1;
  // Fire a slow-ish request, then a 1 ms-deadline request that will wait
  // behind it in the admission queue and expire there.
  std::thread hog([&] {
    EXPECT_EQ(
        blocker.Post("/v1/query", service::wire::RequestJson(slow)).status,
        200);
  });
  // Give the hog a head start into the single slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TestClient::Response r =
      late.Post("/v1/query", service::wire::RequestJson(quick));
  hog.join();
  // Either the deadline fired in the queue (504) or the request slipped in
  // before the hog (200); both are legal interleavings, but the common one
  // under load is 504 and the status must never be anything else.
  EXPECT_TRUE(r.status == 504 || r.status == 200) << r.status;
  if (r.status == 504) {
    auto body = common::JsonValue::Parse(r.body);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->Get("status")->Get("code")->AsString(),
              "DeadlineExceeded");
  }
}

TEST_F(NetServerTest, ManyConcurrentConnectionsAllAnswer) {
  ServerOptions srv;
  srv.max_connections = 256;
  srv.worker_threads = 8;
  const uint16_t port = Serve({}, srv);
  const std::string query = service::wire::RequestJson(AuthorSelect());

  const size_t kThreads = 8;
  const size_t kConnsPerThread = 9;  // 72 concurrent connections total
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<TestClient> conns(kConnsPerThread);
      for (auto& c : conns) ASSERT_TRUE(c.Connect(port));
      // Every connection sends before any reads: all 72 are concurrently
      // live on the server.
      for (auto& c : conns) {
        ASSERT_TRUE(c.SendRaw(
            "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: " +
            std::to_string(query.size()) + "\r\n\r\n" + query));
      }
      for (auto& c : conns) {
        if (c.ReadResponse().status == 200) answered.fetch_add(1);
      }
      // Second round on the same (keep-alive) sockets.
      for (auto& c : conns) {
        if (c.Get("/healthz").status == 200) answered.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(answered.load(),
            static_cast<int>(2 * kThreads * kConnsPerThread));
}

TEST_F(NetServerTest, TraceRequestedOverTheWireComesBack) {
  const uint16_t port = Serve();
  TestClient client;
  ASSERT_TRUE(client.Connect(port));
  service::QueryRequest req = AuthorSelect();
  req.collect_trace = true;
  TestClient::Response r =
      client.Post("/v1/query", service::wire::RequestJson(req));
  EXPECT_EQ(r.status, 200);
  auto doc = common::JsonValue::Parse(r.body);
  ASSERT_TRUE(doc.ok());
  const common::JsonValue* trace = doc->Get("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->is_object()) << "collect_trace must embed the trace";
}

}  // namespace
}  // namespace toss::net
