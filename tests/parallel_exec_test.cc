// The parallel evaluation path must return exactly the sequential answers,
// in the same order, for both TAX and TOSS semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "eval/metrics.h"

namespace toss::core {
namespace {

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::BibConfig cfg;
    cfg.seed = 314;
    cfg.num_papers = 120;
    cfg.num_people = 30;
    world_ = data::GenerateWorld(cfg);
    ASSERT_TRUE(data::LoadIntoCollection(
                    &db_, "dblp", data::EmitDblp(world_, 0, 120, cfg))
                    .ok());
    auto coll = db_.GetCollection("dblp");
    ASSERT_TRUE(coll.ok());
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = data::DblpContentTags();
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    ASSERT_TRUE(onto.ok());
    SeoBuilder b;
    b.AddInstanceOntology(std::move(onto).value());
    b.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    b.SetEpsilon(3.0);
    auto seo = b.Build();
    ASSERT_TRUE(seo.ok()) << seo.status();
    seo_ = std::move(seo).value();
    types_ = MakeBibliographicTypeSystem();

    auto queries = data::MakeSelectionWorkload(world_, 0, 120, 5, 7);
    ASSERT_TRUE(queries.ok());
    queries_ = std::move(queries).value();
  }

  /// The options-path width knob for one call.
  static QueryOptions Width(size_t threads) {
    QueryOptions o;
    o.parallelism = threads;
    return o;
  }

  data::BibWorld world_;
  store::Database db_;
  Seo seo_;
  TypeSystem types_;
  std::vector<data::SelectionQuery> queries_;
};

TEST_F(ParallelExecTest, ParallelSelectMatchesSequentialExactly) {
  for (bool use_toss : {false, true}) {
    QueryExecutor seq(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    QueryExecutor par(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    par.SetParallelism(4);
    EXPECT_EQ(par.parallelism(), 4u);
    for (const auto& q : queries_) {
      auto rs = seq.Select("dblp", q.pattern, q.sl, Width(1));
      auto rp = par.Select("dblp", q.pattern, q.sl, Width(4));
      ASSERT_TRUE(rs.ok()) << rs.status();
      ASSERT_TRUE(rp.ok()) << rp.status();
      ASSERT_EQ(rs->size(), rp->size()) << q.name;
      for (size_t i = 0; i < rs->size(); ++i) {
        EXPECT_TRUE((*rs)[i].Equals((*rp)[i]))
            << q.name << " tree " << i << " differs";
      }
    }
  }
}

TEST_F(ParallelExecTest, ParallelismOfOneIsSequentialPath) {
  QueryExecutor exec(&db_, &seo_, &types_);
  exec.SetParallelism(0);  // clamped to 1
  EXPECT_EQ(exec.parallelism(), 1u);
  auto r = exec.Select("dblp", queries_[0].pattern, queries_[0].sl,
                       Width(exec.parallelism()));
  EXPECT_TRUE(r.ok());
}

TEST_F(ParallelExecTest, StatsStillPopulatedInParallelMode) {
  QueryExecutor par(&db_, &seo_, &types_);
  par.SetParallelism(4);
  ExecStats stats;
  auto r = par.Select("dblp", queries_[0].pattern, queries_[0].sl, Width(4),
                      &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.xpath_queries, 0u);
  EXPECT_EQ(stats.result_trees, r->size());
  EXPECT_GE(stats.eval_ms, 0.0);
}

TEST_F(ParallelExecTest, ManyThreadsOnFewDocsFallsBack) {
  // Fewer docs than 2*threads: the sequential path runs; results valid.
  QueryExecutor par(&db_, &seo_, &types_);
  par.SetParallelism(64);
  auto r = par.Select("dblp", queries_[0].pattern, queries_[0].sl,
                      Width(64));
  ASSERT_TRUE(r.ok());
}

void ExpectSameTrees(const tax::TreeCollection& a,
                     const tax::TreeCollection& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].Equals(b[i])) << what << " tree " << i << " differs";
  }
}

TEST_F(ParallelExecTest, ParallelProjectMatchesSequentialExactly) {
  for (bool use_toss : {false, true}) {
    QueryExecutor seq(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    QueryExecutor par(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    par.SetParallelism(4);
    for (const auto& q : queries_) {
      std::vector<tax::ProjectItem> pl;
      for (int label : q.sl) pl.push_back({label, false});
      if (pl.empty()) pl.push_back({1, true});
      auto rs = seq.Project("dblp", q.pattern, pl, Width(1));
      auto rp = par.Project("dblp", q.pattern, pl, Width(4));
      ASSERT_TRUE(rs.ok()) << rs.status();
      ASSERT_TRUE(rp.ok()) << rp.status();
      ExpectSameTrees(*rs, *rp, q.name.c_str());
    }
  }
}

TEST_F(ParallelExecTest, ParallelGroupByMatchesSequentialExactly) {
  // Group papers by publication year; groups must come back in the same
  // first-occurrence order with identical members.
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(tax::ParseCondition(
                      "$1.tag = \"inproceedings\" & $2.tag = \"year\"")
                      .value());
  for (bool use_toss : {false, true}) {
    QueryExecutor seq(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    QueryExecutor par(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    par.SetParallelism(4);
    auto rs = seq.GroupBy("dblp", pt, 2, {1}, Width(1));
    auto rp = par.GroupBy("dblp", pt, 2, {1}, Width(4));
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_TRUE(rp.ok()) << rp.status();
    EXPECT_GT(rs->size(), 1u) << "fixture should span several years";
    ExpectSameTrees(*rs, *rp, "group-by-year");
  }
}

TEST_F(ParallelExecTest, ParallelJoinMatchesSequentialExactly) {
  // Self-join a small slice on equal publication year: enough pairs to
  // exercise the pool on both sides without a quadratic blowup.
  data::BibConfig cfg;
  cfg.seed = 314;
  cfg.num_papers = 120;
  cfg.num_people = 30;
  ASSERT_TRUE(data::LoadIntoCollection(&db_, "mini",
                                       data::EmitDblp(world_, 0, 15, cfg))
                  .ok());
  tax::PatternTree pt;
  int root = pt.AddRoot();
  int left = pt.AddChild(root, tax::EdgeKind::kPc);
  pt.AddChild(left, tax::EdgeKind::kPc);
  int right_sub = pt.AddChild(root, tax::EdgeKind::kPc);
  pt.AddChild(right_sub, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition("$1.tag = \"tax_prod_root\" & "
                          "$2.tag = \"inproceedings\" & $3.tag = \"year\" & "
                          "$4.tag = \"inproceedings\" & $5.tag = \"year\" & "
                          "$3.content = $5.content")
          .value());
  for (bool use_toss : {false, true}) {
    QueryExecutor seq(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    QueryExecutor par(&db_, use_toss ? &seo_ : nullptr,
                      use_toss ? &types_ : nullptr);
    par.SetParallelism(4);
    auto rs = seq.Join("mini", "mini", pt, {2, 4}, Width(1));
    auto rp = par.Join("mini", "mini", pt, {2, 4}, Width(4));
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_TRUE(rp.ok()) << rp.status();
    EXPECT_GT(rs->size(), 0u) << "same-year pairs must exist";
    ExpectSameTrees(*rs, *rp, "join-on-year");
  }
}

TEST_F(ParallelExecTest, WorkerErrorAbortsPoolAndMatchesSequentialError) {
  // An ill-typed ordering atom (unknown literal type) raises the same
  // TypeError in every document; the pool must stop and surface it.
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(tax::ParseCondition(
                      "$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
                      "$2.content < \"2525\":bogus_type")
                      .value());
  QueryExecutor seq(&db_, &seo_, &types_);
  QueryExecutor par(&db_, &seo_, &types_);
  par.SetParallelism(4);
  auto rs = seq.Select("dblp", pt, {1}, Width(1));
  auto rp = par.Select("dblp", pt, {1}, Width(4));
  ASSERT_FALSE(rs.ok());
  ASSERT_FALSE(rp.ok());
  EXPECT_EQ(rs.status().code(), rp.status().code());
  EXPECT_EQ(rs.status().message(), rp.status().message());
}

TEST_F(ParallelExecTest, ConcurrentQueriesOnOneExecutorMatchSequential) {
  // One executor, many client threads: construction froze the shared
  // read-only state, so concurrent Select calls must return exactly the
  // sequential answers (the service layer's core guarantee).
  QueryExecutor exec(&db_, &seo_, &types_);
  std::vector<tax::TreeCollection> want;
  for (const auto& q : queries_) {
    auto r = exec.Select("dblp", q.pattern, q.sl, Width(1));
    ASSERT_TRUE(r.ok()) << r.status();
    want.push_back(std::move(r).value());
  }
  constexpr size_t kThreads = 4;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (size_t qi = 0; qi < queries_.size(); ++qi) {
        auto r = exec.Select("dblp", queries_[qi].pattern, queries_[qi].sl,
                             Width(1));
        if (!r.ok() || r->size() != want[qi].size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < want[qi].size(); ++i) {
          if (!(*r)[i].Equals(want[qi][i])) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ParallelExecTest, RepeatedQueriesHitTheDecodedTreeCache) {
  auto coll = db_.GetCollection("dblp");
  ASSERT_TRUE(coll.ok());
  QueryExecutor par(&db_, &seo_, &types_);
  par.SetParallelism(4);
  ASSERT_TRUE(par.Select("dblp", queries_[0].pattern, queries_[0].sl,
                         Width(4))
                  .ok());
  auto first = (*coll)->GetTreeCacheStats();
  EXPECT_GT(first.misses, 0u);
  ASSERT_TRUE(par.Select("dblp", queries_[0].pattern, queries_[0].sl,
                         Width(4))
                  .ok());
  auto second = (*coll)->GetTreeCacheStats();
  EXPECT_EQ(second.misses, first.misses) << "second run must decode nothing";
  EXPECT_GT(second.hits, first.hits);
}

}  // namespace
}  // namespace toss::core
