#include <gtest/gtest.h>

#include "tax/condition_parser.h"
#include "tax/operators.h"
#include "tax/tax_semantics.h"
#include "xml/xml_parser.h"

namespace toss::tax {
namespace {

DataTree FromXml(const char* text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return DataTree::FromXml(*doc, doc->root());
}

TreeCollection Dblp() {
  TreeCollection coll;
  coll.push_back(FromXml(
      "<inproceedings><author>Paolo Ciancarini</author>"
      "<author>Robert Tolksdorf</author>"
      "<title>Coordinating Multiagent Applications</title>"
      "<year>1999</year></inproceedings>"));
  coll.push_back(FromXml(
      "<inproceedings><author>Ernesto Damiani</author>"
      "<title>Securing XML Documents</title>"
      "<year>2000</year></inproceedings>"));
  coll.push_back(FromXml(
      "<inproceedings><author>Paolo Ciancarini</author>"
      "<title>Another Paper</title>"
      "<year>1999</year></inproceedings>"));
  return coll;
}

PatternTree AuthorsOf1999() {
  // Paper Example 5's intent: authors of papers published in 1999.
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kPc);  // $2 author
  pt.AddChild(root, EdgeKind::kPc);  // $3 year
  pt.SetCondition(ParseCondition("$1.tag = \"inproceedings\" & "
                                 "$2.tag = \"author\" & $3.tag = \"year\" & "
                                 "$3.content = \"1999\"")
                      .value());
  return pt;
}

TEST(SelectTest, ReturnsWitnessTreesWithSlExpansion) {
  TaxSemantics sem;
  TreeCollection dblp = Dblp();
  PatternTree pt = AuthorsOf1999();
  // SL = {1}: full papers.
  auto r = Select(dblp, pt, {1}, sem);
  ASSERT_TRUE(r.ok()) << r.status();
  // Papers 1 and 3 match; duplicates from the two authors of paper 1
  // collapse because SL-expansion makes their witnesses identical.
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].node(0).tag, "inproceedings");
  EXPECT_EQ((*r)[0].size(), 5u);  // full first paper
}

TEST(SelectTest, WithoutSlKeepsDistinctWitnesses) {
  TaxSemantics sem;
  auto r = Select(Dblp(), AuthorsOf1999(), {}, sem);
  ASSERT_TRUE(r.ok());
  // Three embeddings (two authors on paper 1, one on paper 3), but the
  // witness for (paper 3, Paolo, 1999) is value-equal to the one for
  // (paper 1, Paolo, 1999), so set semantics collapses them to two trees.
  EXPECT_EQ(r->size(), 2u);
}

TEST(SelectTest, NoMatchesYieldsEmpty) {
  TaxSemantics sem;
  PatternTree pt;
  pt.AddRoot();
  pt.SetCondition(ParseCondition("$1.tag = \"phdthesis\"").value());
  auto r = Select(Dblp(), pt, {1}, sem);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(ProjectTest, KeepsMatchedNodesAsSeparateTrees) {
  TaxSemantics sem;
  // Paper Example 5 / Figure 5: project the authors.
  auto r = Project(Dblp(), AuthorsOf1999(), {{2, false}}, sem);
  ASSERT_TRUE(r.ok()) << r.status();
  // Three author nodes, but "Paolo Ciancarini" appears twice -> dedup = 2.
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].node(0).tag, "author");
  EXPECT_EQ((*r)[0].size(), 1u);
  EXPECT_EQ((*r)[0].node(0).content, "Paolo Ciancarini");
  EXPECT_EQ((*r)[1].node(0).content, "Robert Tolksdorf");
}

TEST(ProjectTest, HierarchicalRelationshipsPreserved) {
  TaxSemantics sem;
  // Project both the paper and its author: author stays nested.
  auto r = Project(Dblp(), AuthorsOf1999(), {{1, false}, {2, false}}, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);  // one tree per matching paper
  const DataTree& first = (*r)[0];
  EXPECT_EQ(first.node(first.root()).tag, "inproceedings");
  ASSERT_EQ(first.node(first.root()).children.size(), 2u);  // both authors
  EXPECT_EQ(first.node(first.node(first.root()).children[0]).tag, "author");
}

TEST(ProjectTest, KeepSubtreeBringsDescendants) {
  TaxSemantics sem;
  auto r = Project(Dblp(), AuthorsOf1999(), {{1, true}}, sem);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].size(), 5u);  // whole paper subtree
}

TEST(ProductTest, PairsEveryTreeUnderFreshRoot) {
  TreeCollection left = Dblp();
  TreeCollection right;
  right.push_back(FromXml("<article><title>T</title></article>"));
  right.push_back(FromXml("<article><title>U</title></article>"));
  TreeCollection prod = Product(left, right);
  ASSERT_EQ(prod.size(), 6u);
  const DataTree& t = prod[0];
  EXPECT_EQ(t.node(t.root()).tag, kProductRootTag);
  ASSERT_EQ(t.node(t.root()).children.size(), 2u);
  EXPECT_EQ(t.node(t.node(t.root()).children[0]).tag, "inproceedings");
  EXPECT_EQ(t.node(t.node(t.root()).children[1]).tag, "article");
  EXPECT_TRUE(Product({}, right).empty());
}

TEST(JoinTest, ProductPlusSelection) {
  TaxSemantics sem;
  TreeCollection left = Dblp();
  TreeCollection right;
  right.push_back(FromXml(
      "<article><title>Securing XML Documents</title></article>"));
  right.push_back(FromXml("<article><title>Unrelated</title></article>"));

  // Join on equal titles (TAX ~ = exact equality).
  PatternTree pt;
  int root = pt.AddRoot();
  int l = pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(l, EdgeKind::kPc);  // $3 dblp title
  int r2 = pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(r2, EdgeKind::kPc);  // $5 article title
  pt.SetCondition(
      ParseCondition("$1.tag = \"tax_prod_root\" & "
                     "$2.tag = \"inproceedings\" & $3.tag = \"title\" & "
                     "$4.tag = \"article\" & $5.tag = \"title\" & "
                     "$3.content ~ $5.content")
          .value());
  auto joined = Join(left, right, pt, {2, 4}, sem);
  ASSERT_TRUE(joined.ok()) << joined.status();
  ASSERT_EQ(joined->size(), 1u);
  // The joined tree holds both full operands under the product root.
  const DataTree& t = (*joined)[0];
  EXPECT_EQ(t.node(t.root()).tag, kProductRootTag);
  EXPECT_EQ(t.node(t.root()).children.size(), 2u);
}

TEST(GroupByTest, GroupsWitnessesByNodeContent) {
  TaxSemantics sem;
  TreeCollection dblp = Dblp();
  // Group papers by year.
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kPc);  // $2 year
  pt.SetCondition(
      ParseCondition("$1.tag = \"inproceedings\" & $2.tag = \"year\"")
          .value());
  auto r = GroupBy(dblp, pt, 2, {1}, sem);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 2u);  // years 1999 and 2000
  // First-occurrence order: 1999 first.
  EXPECT_EQ((*r)[0].node(0).tag, kGroupRootTag);
  EXPECT_EQ((*r)[0].node(0).content, "1999");
  EXPECT_EQ((*r)[0].node(0).provenance, 2u);  // two 1999 papers
  EXPECT_EQ((*r)[0].node(0).children.size(), 2u);
  EXPECT_EQ((*r)[1].node(0).content, "2000");
  EXPECT_EQ((*r)[1].node(0).provenance, 1u);
  // Members are full papers (SL = {1}).
  NodeId member = (*r)[0].node(0).children[0];
  EXPECT_EQ((*r)[0].node(member).tag, "inproceedings");
}

TEST(GroupByTest, UnknownLabelRejected) {
  TaxSemantics sem;
  PatternTree pt;
  pt.AddRoot();
  pt.SetCondition(Condition::True());
  EXPECT_TRUE(GroupBy(Dblp(), pt, 9, {}, sem).status().IsInvalidArgument());
}

TEST(GroupByTest, EmptyInputYieldsNoGroups) {
  TaxSemantics sem;
  PatternTree pt;
  pt.AddRoot();
  pt.SetCondition(Condition::True());
  auto r = GroupBy({}, pt, 1, {}, sem);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(SetOpsTest, UnionIntersectDifference) {
  TreeCollection a = Dblp();
  TreeCollection b;
  b.push_back(a[1]);  // shared tree
  b.push_back(FromXml("<inproceedings><title>New</title></inproceedings>"));

  TreeCollection u = Union(a, b);
  EXPECT_EQ(u.size(), 4u);
  TreeCollection i = Intersect(a, b);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_TRUE(i[0].Equals(a[1]));
  TreeCollection d = Difference(a, b);
  EXPECT_EQ(d.size(), 2u);
  TreeCollection d2 = Difference(b, a);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].node(0).children.size(), 1u);
}

TEST(SetOpsTest, UnionDeduplicatesWithinAndAcross) {
  TreeCollection a = Dblp();
  TreeCollection twice = a;
  twice.insert(twice.end(), a.begin(), a.end());
  EXPECT_EQ(Union(twice, {}).size(), a.size());
  EXPECT_EQ(Union(twice, twice).size(), a.size());
}

TEST(SetOpsTest, AlgebraicIdentities) {
  TreeCollection a = Dblp();
  TreeCollection b;
  b.push_back(a[0]);
  // A - B and A ∩ B partition A.
  EXPECT_EQ(Difference(a, b).size() + Intersect(a, b).size(), a.size());
  // A ∪ A = A; A - A = ∅; A ∩ A = A.
  EXPECT_EQ(Union(a, a).size(), a.size());
  EXPECT_TRUE(Difference(a, a).empty());
  EXPECT_EQ(Intersect(a, a).size(), a.size());
}

TEST(SelectTest, SelectionDistributesOverUnion) {
  TaxSemantics sem;
  TreeCollection all = Dblp();
  TreeCollection left{all[0], all[1]};
  TreeCollection right{all[2]};
  PatternTree pt = AuthorsOf1999();
  auto whole = Select(Union(left, right), pt, {1}, sem);
  auto split_l = Select(left, pt, {1}, sem);
  auto split_r = Select(right, pt, {1}, sem);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(split_l.ok());
  ASSERT_TRUE(split_r.ok());
  TreeCollection merged = Union(*split_l, *split_r);
  ASSERT_EQ(whole->size(), merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_TRUE((*whole)[i].Equals(merged[i]));
  }
}

}  // namespace
}  // namespace toss::tax
