# Empty compiler generated dependencies file for query_language_test.
# This may be replaced when dependencies are built.
