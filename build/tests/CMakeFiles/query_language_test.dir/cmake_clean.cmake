file(REMOVE_RECURSE
  "CMakeFiles/query_language_test.dir/query_language_test.cc.o"
  "CMakeFiles/query_language_test.dir/query_language_test.cc.o.d"
  "query_language_test"
  "query_language_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
