# Empty dependencies file for pairwise_test.
# This may be replaced when dependencies are built.
