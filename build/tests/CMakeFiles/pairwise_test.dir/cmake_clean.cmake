file(REMOVE_RECURSE
  "CMakeFiles/pairwise_test.dir/pairwise_test.cc.o"
  "CMakeFiles/pairwise_test.dir/pairwise_test.cc.o.d"
  "pairwise_test"
  "pairwise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
