
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pairwise_test.cc" "tests/CMakeFiles/pairwise_test.dir/pairwise_test.cc.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/toss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/toss_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/toss_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/toss_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/toss_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/toss_store.dir/DependInfo.cmake"
  "/root/repo/build/src/tax/CMakeFiles/toss_tax.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/toss_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
