file(REMOVE_RECURSE
  "CMakeFiles/bulk_loader_test.dir/bulk_loader_test.cc.o"
  "CMakeFiles/bulk_loader_test.dir/bulk_loader_test.cc.o.d"
  "bulk_loader_test"
  "bulk_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
