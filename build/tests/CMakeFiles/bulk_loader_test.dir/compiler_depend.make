# Empty compiler generated dependencies file for bulk_loader_test.
# This may be replaced when dependencies are built.
