# Empty dependencies file for seo_test.
# This may be replaced when dependencies are built.
