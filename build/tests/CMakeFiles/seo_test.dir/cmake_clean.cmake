file(REMOVE_RECURSE
  "CMakeFiles/seo_test.dir/seo_test.cc.o"
  "CMakeFiles/seo_test.dir/seo_test.cc.o.d"
  "seo_test"
  "seo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
