# Empty compiler generated dependencies file for fusion_test.
# This may be replaced when dependencies are built.
