# Empty dependencies file for toss_condition_ops_test.
# This may be replaced when dependencies are built.
