file(REMOVE_RECURSE
  "CMakeFiles/toss_condition_ops_test.dir/toss_condition_ops_test.cc.o"
  "CMakeFiles/toss_condition_ops_test.dir/toss_condition_ops_test.cc.o.d"
  "toss_condition_ops_test"
  "toss_condition_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_condition_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
