file(REMOVE_RECURSE
  "CMakeFiles/tax_data_tree_test.dir/tax_data_tree_test.cc.o"
  "CMakeFiles/tax_data_tree_test.dir/tax_data_tree_test.cc.o.d"
  "tax_data_tree_test"
  "tax_data_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tax_data_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
