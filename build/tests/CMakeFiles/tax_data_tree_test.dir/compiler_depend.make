# Empty compiler generated dependencies file for tax_data_tree_test.
# This may be replaced when dependencies are built.
