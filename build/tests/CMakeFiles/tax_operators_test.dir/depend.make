# Empty dependencies file for tax_operators_test.
# This may be replaced when dependencies are built.
