file(REMOVE_RECURSE
  "CMakeFiles/tax_operators_test.dir/tax_operators_test.cc.o"
  "CMakeFiles/tax_operators_test.dir/tax_operators_test.cc.o.d"
  "tax_operators_test"
  "tax_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tax_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
