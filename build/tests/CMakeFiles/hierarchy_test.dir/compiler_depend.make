# Empty compiler generated dependencies file for hierarchy_test.
# This may be replaced when dependencies are built.
