file(REMOVE_RECURSE
  "CMakeFiles/generator_test.dir/generator_test.cc.o"
  "CMakeFiles/generator_test.dir/generator_test.cc.o.d"
  "generator_test"
  "generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
