# Empty dependencies file for ontology_maker_test.
# This may be replaced when dependencies are built.
