file(REMOVE_RECURSE
  "CMakeFiles/ontology_maker_test.dir/ontology_maker_test.cc.o"
  "CMakeFiles/ontology_maker_test.dir/ontology_maker_test.cc.o.d"
  "ontology_maker_test"
  "ontology_maker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_maker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
