# Empty compiler generated dependencies file for tax_condition_test.
# This may be replaced when dependencies are built.
