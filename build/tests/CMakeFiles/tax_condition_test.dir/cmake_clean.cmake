file(REMOVE_RECURSE
  "CMakeFiles/tax_condition_test.dir/tax_condition_test.cc.o"
  "CMakeFiles/tax_condition_test.dir/tax_condition_test.cc.o.d"
  "tax_condition_test"
  "tax_condition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tax_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
