# Empty compiler generated dependencies file for types_test.
# This may be replaced when dependencies are built.
