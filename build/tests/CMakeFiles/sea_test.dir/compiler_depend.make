# Empty compiler generated dependencies file for sea_test.
# This may be replaced when dependencies are built.
