file(REMOVE_RECURSE
  "CMakeFiles/sea_test.dir/sea_test.cc.o"
  "CMakeFiles/sea_test.dir/sea_test.cc.o.d"
  "sea_test"
  "sea_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
