file(REMOVE_RECURSE
  "CMakeFiles/parallel_exec_test.dir/parallel_exec_test.cc.o"
  "CMakeFiles/parallel_exec_test.dir/parallel_exec_test.cc.o.d"
  "parallel_exec_test"
  "parallel_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
