# Empty dependencies file for parallel_exec_test.
# This may be replaced when dependencies are built.
