file(REMOVE_RECURSE
  "CMakeFiles/seo_semantics_test.dir/seo_semantics_test.cc.o"
  "CMakeFiles/seo_semantics_test.dir/seo_semantics_test.cc.o.d"
  "seo_semantics_test"
  "seo_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seo_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
