# Empty compiler generated dependencies file for seo_semantics_test.
# This may be replaced when dependencies are built.
