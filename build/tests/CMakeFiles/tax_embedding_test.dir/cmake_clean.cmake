file(REMOVE_RECURSE
  "CMakeFiles/tax_embedding_test.dir/tax_embedding_test.cc.o"
  "CMakeFiles/tax_embedding_test.dir/tax_embedding_test.cc.o.d"
  "tax_embedding_test"
  "tax_embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tax_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
