# Empty dependencies file for tax_embedding_test.
# This may be replaced when dependencies are built.
