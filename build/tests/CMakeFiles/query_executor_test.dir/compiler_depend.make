# Empty compiler generated dependencies file for query_executor_test.
# This may be replaced when dependencies are built.
