file(REMOVE_RECURSE
  "CMakeFiles/query_executor_test.dir/query_executor_test.cc.o"
  "CMakeFiles/query_executor_test.dir/query_executor_test.cc.o.d"
  "query_executor_test"
  "query_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
