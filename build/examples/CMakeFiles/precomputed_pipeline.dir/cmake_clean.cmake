file(REMOVE_RECURSE
  "CMakeFiles/precomputed_pipeline.dir/precomputed_pipeline.cpp.o"
  "CMakeFiles/precomputed_pipeline.dir/precomputed_pipeline.cpp.o.d"
  "precomputed_pipeline"
  "precomputed_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precomputed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
