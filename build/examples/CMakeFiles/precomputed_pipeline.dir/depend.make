# Empty dependencies file for precomputed_pipeline.
# This may be replaced when dependencies are built.
