# Empty compiler generated dependencies file for tossql_shell.
# This may be replaced when dependencies are built.
