file(REMOVE_RECURSE
  "CMakeFiles/tossql_shell.dir/tossql_shell.cpp.o"
  "CMakeFiles/tossql_shell.dir/tossql_shell.cpp.o.d"
  "tossql_shell"
  "tossql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tossql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
