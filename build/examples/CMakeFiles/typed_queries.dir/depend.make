# Empty dependencies file for typed_queries.
# This may be replaced when dependencies are built.
