file(REMOVE_RECURSE
  "CMakeFiles/typed_queries.dir/typed_queries.cpp.o"
  "CMakeFiles/typed_queries.dir/typed_queries.cpp.o.d"
  "typed_queries"
  "typed_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
