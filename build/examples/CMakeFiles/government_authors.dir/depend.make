# Empty dependencies file for government_authors.
# This may be replaced when dependencies are built.
