file(REMOVE_RECURSE
  "CMakeFiles/government_authors.dir/government_authors.cpp.o"
  "CMakeFiles/government_authors.dir/government_authors.cpp.o.d"
  "government_authors"
  "government_authors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/government_authors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
