file(REMOVE_RECURSE
  "CMakeFiles/bibliography_join.dir/bibliography_join.cpp.o"
  "CMakeFiles/bibliography_join.dir/bibliography_join.cpp.o.d"
  "bibliography_join"
  "bibliography_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
