# Empty compiler generated dependencies file for bibliography_join.
# This may be replaced when dependencies are built.
