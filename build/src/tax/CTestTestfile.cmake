# CMake generated Testfile for 
# Source directory: /root/repo/src/tax
# Build directory: /root/repo/build/src/tax
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
