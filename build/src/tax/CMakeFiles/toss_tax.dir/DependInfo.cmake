
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tax/condition.cc" "src/tax/CMakeFiles/toss_tax.dir/condition.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/condition.cc.o.d"
  "/root/repo/src/tax/condition_parser.cc" "src/tax/CMakeFiles/toss_tax.dir/condition_parser.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/condition_parser.cc.o.d"
  "/root/repo/src/tax/data_tree.cc" "src/tax/CMakeFiles/toss_tax.dir/data_tree.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/data_tree.cc.o.d"
  "/root/repo/src/tax/embedding.cc" "src/tax/CMakeFiles/toss_tax.dir/embedding.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/embedding.cc.o.d"
  "/root/repo/src/tax/operators.cc" "src/tax/CMakeFiles/toss_tax.dir/operators.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/operators.cc.o.d"
  "/root/repo/src/tax/pattern_tree.cc" "src/tax/CMakeFiles/toss_tax.dir/pattern_tree.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/pattern_tree.cc.o.d"
  "/root/repo/src/tax/tax_semantics.cc" "src/tax/CMakeFiles/toss_tax.dir/tax_semantics.cc.o" "gcc" "src/tax/CMakeFiles/toss_tax.dir/tax_semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/toss_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
