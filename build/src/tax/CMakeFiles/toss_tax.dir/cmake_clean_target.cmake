file(REMOVE_RECURSE
  "libtoss_tax.a"
)
