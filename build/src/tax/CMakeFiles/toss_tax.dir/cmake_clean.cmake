file(REMOVE_RECURSE
  "CMakeFiles/toss_tax.dir/condition.cc.o"
  "CMakeFiles/toss_tax.dir/condition.cc.o.d"
  "CMakeFiles/toss_tax.dir/condition_parser.cc.o"
  "CMakeFiles/toss_tax.dir/condition_parser.cc.o.d"
  "CMakeFiles/toss_tax.dir/data_tree.cc.o"
  "CMakeFiles/toss_tax.dir/data_tree.cc.o.d"
  "CMakeFiles/toss_tax.dir/embedding.cc.o"
  "CMakeFiles/toss_tax.dir/embedding.cc.o.d"
  "CMakeFiles/toss_tax.dir/operators.cc.o"
  "CMakeFiles/toss_tax.dir/operators.cc.o.d"
  "CMakeFiles/toss_tax.dir/pattern_tree.cc.o"
  "CMakeFiles/toss_tax.dir/pattern_tree.cc.o.d"
  "CMakeFiles/toss_tax.dir/tax_semantics.cc.o"
  "CMakeFiles/toss_tax.dir/tax_semantics.cc.o.d"
  "libtoss_tax.a"
  "libtoss_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
