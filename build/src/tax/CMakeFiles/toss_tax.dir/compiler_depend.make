# Empty compiler generated dependencies file for toss_tax.
# This may be replaced when dependencies are built.
