file(REMOVE_RECURSE
  "CMakeFiles/toss_store.dir/btree.cc.o"
  "CMakeFiles/toss_store.dir/btree.cc.o.d"
  "CMakeFiles/toss_store.dir/collection.cc.o"
  "CMakeFiles/toss_store.dir/collection.cc.o.d"
  "CMakeFiles/toss_store.dir/database.cc.o"
  "CMakeFiles/toss_store.dir/database.cc.o.d"
  "CMakeFiles/toss_store.dir/key_encoding.cc.o"
  "CMakeFiles/toss_store.dir/key_encoding.cc.o.d"
  "libtoss_store.a"
  "libtoss_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
