# Empty dependencies file for toss_store.
# This may be replaced when dependencies are built.
