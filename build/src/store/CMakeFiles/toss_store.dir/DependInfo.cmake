
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/btree.cc" "src/store/CMakeFiles/toss_store.dir/btree.cc.o" "gcc" "src/store/CMakeFiles/toss_store.dir/btree.cc.o.d"
  "/root/repo/src/store/collection.cc" "src/store/CMakeFiles/toss_store.dir/collection.cc.o" "gcc" "src/store/CMakeFiles/toss_store.dir/collection.cc.o.d"
  "/root/repo/src/store/database.cc" "src/store/CMakeFiles/toss_store.dir/database.cc.o" "gcc" "src/store/CMakeFiles/toss_store.dir/database.cc.o.d"
  "/root/repo/src/store/key_encoding.cc" "src/store/CMakeFiles/toss_store.dir/key_encoding.cc.o" "gcc" "src/store/CMakeFiles/toss_store.dir/key_encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/toss_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/tax/CMakeFiles/toss_tax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
