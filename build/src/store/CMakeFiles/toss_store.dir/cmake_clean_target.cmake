file(REMOVE_RECURSE
  "libtoss_store.a"
)
