# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("sim")
subdirs("lexicon")
subdirs("ontology")
subdirs("store")
subdirs("tax")
subdirs("core")
subdirs("data")
subdirs("eval")
