file(REMOVE_RECURSE
  "libtoss_sim.a"
)
