
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/measure_registry.cc" "src/sim/CMakeFiles/toss_sim.dir/measure_registry.cc.o" "gcc" "src/sim/CMakeFiles/toss_sim.dir/measure_registry.cc.o.d"
  "/root/repo/src/sim/node_measure.cc" "src/sim/CMakeFiles/toss_sim.dir/node_measure.cc.o" "gcc" "src/sim/CMakeFiles/toss_sim.dir/node_measure.cc.o.d"
  "/root/repo/src/sim/pairwise.cc" "src/sim/CMakeFiles/toss_sim.dir/pairwise.cc.o" "gcc" "src/sim/CMakeFiles/toss_sim.dir/pairwise.cc.o.d"
  "/root/repo/src/sim/soft_tfidf.cc" "src/sim/CMakeFiles/toss_sim.dir/soft_tfidf.cc.o" "gcc" "src/sim/CMakeFiles/toss_sim.dir/soft_tfidf.cc.o.d"
  "/root/repo/src/sim/string_measure.cc" "src/sim/CMakeFiles/toss_sim.dir/string_measure.cc.o" "gcc" "src/sim/CMakeFiles/toss_sim.dir/string_measure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
