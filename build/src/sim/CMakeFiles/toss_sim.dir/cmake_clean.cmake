file(REMOVE_RECURSE
  "CMakeFiles/toss_sim.dir/measure_registry.cc.o"
  "CMakeFiles/toss_sim.dir/measure_registry.cc.o.d"
  "CMakeFiles/toss_sim.dir/node_measure.cc.o"
  "CMakeFiles/toss_sim.dir/node_measure.cc.o.d"
  "CMakeFiles/toss_sim.dir/pairwise.cc.o"
  "CMakeFiles/toss_sim.dir/pairwise.cc.o.d"
  "CMakeFiles/toss_sim.dir/soft_tfidf.cc.o"
  "CMakeFiles/toss_sim.dir/soft_tfidf.cc.o.d"
  "CMakeFiles/toss_sim.dir/string_measure.cc.o"
  "CMakeFiles/toss_sim.dir/string_measure.cc.o.d"
  "libtoss_sim.a"
  "libtoss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
