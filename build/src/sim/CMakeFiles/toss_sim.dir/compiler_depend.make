# Empty compiler generated dependencies file for toss_sim.
# This may be replaced when dependencies are built.
