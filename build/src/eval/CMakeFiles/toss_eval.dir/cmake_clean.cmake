file(REMOVE_RECURSE
  "CMakeFiles/toss_eval.dir/metrics.cc.o"
  "CMakeFiles/toss_eval.dir/metrics.cc.o.d"
  "libtoss_eval.a"
  "libtoss_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
