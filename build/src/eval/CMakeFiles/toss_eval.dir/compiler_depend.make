# Empty compiler generated dependencies file for toss_eval.
# This may be replaced when dependencies are built.
