file(REMOVE_RECURSE
  "libtoss_eval.a"
)
