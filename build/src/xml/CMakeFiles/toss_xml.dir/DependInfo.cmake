
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/xml_document.cc" "src/xml/CMakeFiles/toss_xml.dir/xml_document.cc.o" "gcc" "src/xml/CMakeFiles/toss_xml.dir/xml_document.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/xml/CMakeFiles/toss_xml.dir/xml_parser.cc.o" "gcc" "src/xml/CMakeFiles/toss_xml.dir/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/xml/CMakeFiles/toss_xml.dir/xml_writer.cc.o" "gcc" "src/xml/CMakeFiles/toss_xml.dir/xml_writer.cc.o.d"
  "/root/repo/src/xml/xpath.cc" "src/xml/CMakeFiles/toss_xml.dir/xpath.cc.o" "gcc" "src/xml/CMakeFiles/toss_xml.dir/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
