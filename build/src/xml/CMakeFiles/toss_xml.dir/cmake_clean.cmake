file(REMOVE_RECURSE
  "CMakeFiles/toss_xml.dir/xml_document.cc.o"
  "CMakeFiles/toss_xml.dir/xml_document.cc.o.d"
  "CMakeFiles/toss_xml.dir/xml_parser.cc.o"
  "CMakeFiles/toss_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/toss_xml.dir/xml_writer.cc.o"
  "CMakeFiles/toss_xml.dir/xml_writer.cc.o.d"
  "CMakeFiles/toss_xml.dir/xpath.cc.o"
  "CMakeFiles/toss_xml.dir/xpath.cc.o.d"
  "libtoss_xml.a"
  "libtoss_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
