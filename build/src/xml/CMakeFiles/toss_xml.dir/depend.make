# Empty dependencies file for toss_xml.
# This may be replaced when dependencies are built.
