file(REMOVE_RECURSE
  "libtoss_xml.a"
)
