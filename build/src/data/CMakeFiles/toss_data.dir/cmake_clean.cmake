file(REMOVE_RECURSE
  "CMakeFiles/toss_data.dir/bib_generator.cc.o"
  "CMakeFiles/toss_data.dir/bib_generator.cc.o.d"
  "CMakeFiles/toss_data.dir/bulk_loader.cc.o"
  "CMakeFiles/toss_data.dir/bulk_loader.cc.o.d"
  "CMakeFiles/toss_data.dir/entities.cc.o"
  "CMakeFiles/toss_data.dir/entities.cc.o.d"
  "CMakeFiles/toss_data.dir/workload.cc.o"
  "CMakeFiles/toss_data.dir/workload.cc.o.d"
  "libtoss_data.a"
  "libtoss_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
