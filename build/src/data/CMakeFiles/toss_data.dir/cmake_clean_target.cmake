file(REMOVE_RECURSE
  "libtoss_data.a"
)
