# Empty dependencies file for toss_data.
# This may be replaced when dependencies are built.
