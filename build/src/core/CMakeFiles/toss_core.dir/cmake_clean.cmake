file(REMOVE_RECURSE
  "CMakeFiles/toss_core.dir/query_executor.cc.o"
  "CMakeFiles/toss_core.dir/query_executor.cc.o.d"
  "CMakeFiles/toss_core.dir/query_language.cc.o"
  "CMakeFiles/toss_core.dir/query_language.cc.o.d"
  "CMakeFiles/toss_core.dir/seo.cc.o"
  "CMakeFiles/toss_core.dir/seo.cc.o.d"
  "CMakeFiles/toss_core.dir/seo_io.cc.o"
  "CMakeFiles/toss_core.dir/seo_io.cc.o.d"
  "CMakeFiles/toss_core.dir/seo_semantics.cc.o"
  "CMakeFiles/toss_core.dir/seo_semantics.cc.o.d"
  "CMakeFiles/toss_core.dir/types.cc.o"
  "CMakeFiles/toss_core.dir/types.cc.o.d"
  "libtoss_core.a"
  "libtoss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
