file(REMOVE_RECURSE
  "libtoss_core.a"
)
