
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/query_executor.cc" "src/core/CMakeFiles/toss_core.dir/query_executor.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/query_executor.cc.o.d"
  "/root/repo/src/core/query_language.cc" "src/core/CMakeFiles/toss_core.dir/query_language.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/query_language.cc.o.d"
  "/root/repo/src/core/seo.cc" "src/core/CMakeFiles/toss_core.dir/seo.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/seo.cc.o.d"
  "/root/repo/src/core/seo_io.cc" "src/core/CMakeFiles/toss_core.dir/seo_io.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/seo_io.cc.o.d"
  "/root/repo/src/core/seo_semantics.cc" "src/core/CMakeFiles/toss_core.dir/seo_semantics.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/seo_semantics.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/toss_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/toss_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/toss_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/toss_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/toss_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/toss_store.dir/DependInfo.cmake"
  "/root/repo/build/src/tax/CMakeFiles/toss_tax.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
