# Empty compiler generated dependencies file for toss_core.
# This may be replaced when dependencies are built.
