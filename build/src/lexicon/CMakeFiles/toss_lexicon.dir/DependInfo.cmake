
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexicon/builtin_lexicon.cc" "src/lexicon/CMakeFiles/toss_lexicon.dir/builtin_lexicon.cc.o" "gcc" "src/lexicon/CMakeFiles/toss_lexicon.dir/builtin_lexicon.cc.o.d"
  "/root/repo/src/lexicon/lexicon.cc" "src/lexicon/CMakeFiles/toss_lexicon.dir/lexicon.cc.o" "gcc" "src/lexicon/CMakeFiles/toss_lexicon.dir/lexicon.cc.o.d"
  "/root/repo/src/lexicon/lexicon_io.cc" "src/lexicon/CMakeFiles/toss_lexicon.dir/lexicon_io.cc.o" "gcc" "src/lexicon/CMakeFiles/toss_lexicon.dir/lexicon_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
