# Empty dependencies file for toss_lexicon.
# This may be replaced when dependencies are built.
