file(REMOVE_RECURSE
  "libtoss_lexicon.a"
)
