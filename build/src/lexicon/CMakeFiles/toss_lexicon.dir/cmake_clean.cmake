file(REMOVE_RECURSE
  "CMakeFiles/toss_lexicon.dir/builtin_lexicon.cc.o"
  "CMakeFiles/toss_lexicon.dir/builtin_lexicon.cc.o.d"
  "CMakeFiles/toss_lexicon.dir/lexicon.cc.o"
  "CMakeFiles/toss_lexicon.dir/lexicon.cc.o.d"
  "CMakeFiles/toss_lexicon.dir/lexicon_io.cc.o"
  "CMakeFiles/toss_lexicon.dir/lexicon_io.cc.o.d"
  "libtoss_lexicon.a"
  "libtoss_lexicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_lexicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
