file(REMOVE_RECURSE
  "libtoss_common.a"
)
