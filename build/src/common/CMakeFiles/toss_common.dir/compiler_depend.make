# Empty compiler generated dependencies file for toss_common.
# This may be replaced when dependencies are built.
