file(REMOVE_RECURSE
  "CMakeFiles/toss_common.dir/random.cc.o"
  "CMakeFiles/toss_common.dir/random.cc.o.d"
  "CMakeFiles/toss_common.dir/status.cc.o"
  "CMakeFiles/toss_common.dir/status.cc.o.d"
  "CMakeFiles/toss_common.dir/string_util.cc.o"
  "CMakeFiles/toss_common.dir/string_util.cc.o.d"
  "CMakeFiles/toss_common.dir/worker_pool.cc.o"
  "CMakeFiles/toss_common.dir/worker_pool.cc.o.d"
  "libtoss_common.a"
  "libtoss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
