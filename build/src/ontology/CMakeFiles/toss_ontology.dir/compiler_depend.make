# Empty compiler generated dependencies file for toss_ontology.
# This may be replaced when dependencies are built.
