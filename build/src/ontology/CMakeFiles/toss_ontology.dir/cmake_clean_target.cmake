file(REMOVE_RECURSE
  "libtoss_ontology.a"
)
