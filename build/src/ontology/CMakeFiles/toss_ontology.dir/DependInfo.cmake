
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/fusion.cc" "src/ontology/CMakeFiles/toss_ontology.dir/fusion.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/fusion.cc.o.d"
  "/root/repo/src/ontology/hierarchy.cc" "src/ontology/CMakeFiles/toss_ontology.dir/hierarchy.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/hierarchy.cc.o.d"
  "/root/repo/src/ontology/hierarchy_io.cc" "src/ontology/CMakeFiles/toss_ontology.dir/hierarchy_io.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/hierarchy_io.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/ontology/CMakeFiles/toss_ontology.dir/ontology.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/ontology.cc.o.d"
  "/root/repo/src/ontology/ontology_maker.cc" "src/ontology/CMakeFiles/toss_ontology.dir/ontology_maker.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/ontology_maker.cc.o.d"
  "/root/repo/src/ontology/sea.cc" "src/ontology/CMakeFiles/toss_ontology.dir/sea.cc.o" "gcc" "src/ontology/CMakeFiles/toss_ontology.dir/sea.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/toss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/toss_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/toss_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
