file(REMOVE_RECURSE
  "CMakeFiles/toss_ontology.dir/fusion.cc.o"
  "CMakeFiles/toss_ontology.dir/fusion.cc.o.d"
  "CMakeFiles/toss_ontology.dir/hierarchy.cc.o"
  "CMakeFiles/toss_ontology.dir/hierarchy.cc.o.d"
  "CMakeFiles/toss_ontology.dir/hierarchy_io.cc.o"
  "CMakeFiles/toss_ontology.dir/hierarchy_io.cc.o.d"
  "CMakeFiles/toss_ontology.dir/ontology.cc.o"
  "CMakeFiles/toss_ontology.dir/ontology.cc.o.d"
  "CMakeFiles/toss_ontology.dir/ontology_maker.cc.o"
  "CMakeFiles/toss_ontology.dir/ontology_maker.cc.o.d"
  "CMakeFiles/toss_ontology.dir/sea.cc.o"
  "CMakeFiles/toss_ontology.dir/sea.cc.o.d"
  "libtoss_ontology.a"
  "libtoss_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
