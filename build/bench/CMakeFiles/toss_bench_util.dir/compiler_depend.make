# Empty compiler generated dependencies file for toss_bench_util.
# This may be replaced when dependencies are built.
