file(REMOVE_RECURSE
  "libtoss_bench_util.a"
)
