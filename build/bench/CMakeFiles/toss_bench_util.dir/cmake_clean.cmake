file(REMOVE_RECURSE
  "CMakeFiles/toss_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/toss_bench_util.dir/bench_util.cc.o.d"
  "libtoss_bench_util.a"
  "libtoss_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toss_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
