# Empty compiler generated dependencies file for ablation_fusion.
# This may be replaced when dependencies are built.
