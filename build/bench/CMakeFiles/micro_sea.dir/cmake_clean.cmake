file(REMOVE_RECURSE
  "CMakeFiles/micro_sea.dir/micro_sea.cc.o"
  "CMakeFiles/micro_sea.dir/micro_sea.cc.o.d"
  "micro_sea"
  "micro_sea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
