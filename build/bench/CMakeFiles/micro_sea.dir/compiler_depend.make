# Empty compiler generated dependencies file for micro_sea.
# This may be replaced when dependencies are built.
