# Empty dependencies file for ablation_index.
# This may be replaced when dependencies are built.
