file(REMOVE_RECURSE
  "CMakeFiles/ablation_index.dir/ablation_index.cc.o"
  "CMakeFiles/ablation_index.dir/ablation_index.cc.o.d"
  "ablation_index"
  "ablation_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
