file(REMOVE_RECURSE
  "CMakeFiles/ablation_measures.dir/ablation_measures.cc.o"
  "CMakeFiles/ablation_measures.dir/ablation_measures.cc.o.d"
  "ablation_measures"
  "ablation_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
