# Empty compiler generated dependencies file for ablation_measures.
# This may be replaced when dependencies are built.
