file(REMOVE_RECURSE
  "CMakeFiles/ablation_range.dir/ablation_range.cc.o"
  "CMakeFiles/ablation_range.dir/ablation_range.cc.o.d"
  "ablation_range"
  "ablation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
