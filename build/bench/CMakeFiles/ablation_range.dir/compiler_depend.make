# Empty compiler generated dependencies file for ablation_range.
# This may be replaced when dependencies are built.
