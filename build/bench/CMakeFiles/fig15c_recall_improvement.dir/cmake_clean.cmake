file(REMOVE_RECURSE
  "CMakeFiles/fig15c_recall_improvement.dir/fig15c_recall_improvement.cc.o"
  "CMakeFiles/fig15c_recall_improvement.dir/fig15c_recall_improvement.cc.o.d"
  "fig15c_recall_improvement"
  "fig15c_recall_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15c_recall_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
