# Empty dependencies file for fig15c_recall_improvement.
# This may be replaced when dependencies are built.
