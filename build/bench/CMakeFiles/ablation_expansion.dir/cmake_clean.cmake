file(REMOVE_RECURSE
  "CMakeFiles/ablation_expansion.dir/ablation_expansion.cc.o"
  "CMakeFiles/ablation_expansion.dir/ablation_expansion.cc.o.d"
  "ablation_expansion"
  "ablation_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
