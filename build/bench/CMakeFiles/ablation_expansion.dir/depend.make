# Empty dependencies file for ablation_expansion.
# This may be replaced when dependencies are built.
