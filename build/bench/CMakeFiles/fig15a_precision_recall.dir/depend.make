# Empty dependencies file for fig15a_precision_recall.
# This may be replaced when dependencies are built.
