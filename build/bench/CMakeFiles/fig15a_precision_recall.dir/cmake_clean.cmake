file(REMOVE_RECURSE
  "CMakeFiles/fig15a_precision_recall.dir/fig15a_precision_recall.cc.o"
  "CMakeFiles/fig15a_precision_recall.dir/fig15a_precision_recall.cc.o.d"
  "fig15a_precision_recall"
  "fig15a_precision_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
