# Empty dependencies file for fig15b_quality.
# This may be replaced when dependencies are built.
