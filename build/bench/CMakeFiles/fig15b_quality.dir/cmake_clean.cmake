file(REMOVE_RECURSE
  "CMakeFiles/fig15b_quality.dir/fig15b_quality.cc.o"
  "CMakeFiles/fig15b_quality.dir/fig15b_quality.cc.o.d"
  "fig15b_quality"
  "fig15b_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15b_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
