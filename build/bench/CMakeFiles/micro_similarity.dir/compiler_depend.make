# Empty compiler generated dependencies file for micro_similarity.
# This may be replaced when dependencies are built.
