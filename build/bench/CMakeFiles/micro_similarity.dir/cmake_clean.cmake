file(REMOVE_RECURSE
  "CMakeFiles/micro_similarity.dir/micro_similarity.cc.o"
  "CMakeFiles/micro_similarity.dir/micro_similarity.cc.o.d"
  "micro_similarity"
  "micro_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
