# Empty dependencies file for fig16b_join_scalability.
# This may be replaced when dependencies are built.
