file(REMOVE_RECURSE
  "CMakeFiles/fig16b_join_scalability.dir/fig16b_join_scalability.cc.o"
  "CMakeFiles/fig16b_join_scalability.dir/fig16b_join_scalability.cc.o.d"
  "fig16b_join_scalability"
  "fig16b_join_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_join_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
