# Empty dependencies file for fig16a_selection_scalability.
# This may be replaced when dependencies are built.
