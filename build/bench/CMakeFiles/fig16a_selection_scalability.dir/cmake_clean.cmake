file(REMOVE_RECURSE
  "CMakeFiles/fig16a_selection_scalability.dir/fig16a_selection_scalability.cc.o"
  "CMakeFiles/fig16a_selection_scalability.dir/fig16a_selection_scalability.cc.o.d"
  "fig16a_selection_scalability"
  "fig16a_selection_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_selection_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
