# Empty compiler generated dependencies file for micro_embedding.
# This may be replaced when dependencies are built.
