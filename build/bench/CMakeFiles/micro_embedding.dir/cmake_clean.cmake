file(REMOVE_RECURSE
  "CMakeFiles/micro_embedding.dir/micro_embedding.cc.o"
  "CMakeFiles/micro_embedding.dir/micro_embedding.cc.o.d"
  "micro_embedding"
  "micro_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
