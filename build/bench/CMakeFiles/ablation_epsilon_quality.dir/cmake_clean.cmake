file(REMOVE_RECURSE
  "CMakeFiles/ablation_epsilon_quality.dir/ablation_epsilon_quality.cc.o"
  "CMakeFiles/ablation_epsilon_quality.dir/ablation_epsilon_quality.cc.o.d"
  "ablation_epsilon_quality"
  "ablation_epsilon_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epsilon_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
