# Empty dependencies file for ablation_epsilon_quality.
# This may be replaced when dependencies are built.
