# Empty custom commands generated dependencies file for bench_smoke.
# This may be replaced when dependencies are built.
