file(REMOVE_RECURSE
  "CMakeFiles/bench_smoke"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
