# Empty compiler generated dependencies file for fig16c_epsilon_sweep.
# This may be replaced when dependencies are built.
