file(REMOVE_RECURSE
  "CMakeFiles/fig16c_epsilon_sweep.dir/fig16c_epsilon_sweep.cc.o"
  "CMakeFiles/fig16c_epsilon_sweep.dir/fig16c_epsilon_sweep.cc.o.d"
  "fig16c_epsilon_sweep"
  "fig16c_epsilon_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16c_epsilon_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
