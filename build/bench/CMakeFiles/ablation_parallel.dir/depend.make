# Empty dependencies file for ablation_parallel.
# This may be replaced when dependencies are built.
