// Reproduces Fig. 16(b): scalability of the join of DBLP and the SIGMOD
// proceedings pages (5 tag conditions + 1 similarTo) as the total data size
// grows.
//
// Paper's reported shape: near-linear growth, with a super-linear kick at
// the largest sizes where the intermediate result (the cross product)
// starts to dominate; TOSS sits above TAX by a growing but modest margin.

#include <cstdio>

#include "bench/bench_util.h"
#include "service/toss_service.h"

using namespace toss;

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<size_t> kSizes =
      smoke ? std::vector<size_t>{50}
            : std::vector<size_t>{100, 200, 400, 800, 1600};

  data::BibConfig cfg;
  cfg.seed = 17;
  cfg.num_people = smoke ? 25 : 120;
  cfg.num_papers = kSizes.back();
  data::BibWorld world = data::GenerateWorld(cfg);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  tax::PatternTree pattern = data::MakeTitleJoinPattern();

  std::printf("Fig 16(b): join scalability (5 tag + 1 similarTo; ms)\n");
  std::printf("%8s %12s %10s %10s %10s\n", "papers", "total-bytes", "TAX",
              "TOSS(e2)", "pairs");

  for (size_t size : kSizes) {
    store::Database db;
    bench::CheckOk(
        data::LoadIntoCollection(&db, "dblp",
                                 data::EmitDblp(world, 0, size, cfg)),
        "load dblp");
    bench::CheckOk(
        data::LoadIntoCollection(&db, "sigmod",
                                 data::EmitSigmod(world, 0, size, cfg)),
        "load sigmod");
    auto dblp = db.GetCollection("dblp");
    auto sigmod = db.GetCollection("sigmod");
    bench::CheckOk(dblp.status(), "dblp");
    bench::CheckOk(sigmod.status(), "sigmod");
    size_t bytes = (*dblp)->ApproxByteSize() + (*sigmod)->ApproxByteSize();

    service::TossService tax_svc(&db, nullptr, nullptr);
    double tax_ms = bench::MeasureAdaptiveMs(
        "fig16b/tax_" + std::to_string(size), [&] {
          service::QueryResponse r = tax_svc.Run(
              service::QueryRequest::Join("dblp", "sigmod", pattern, {2, 4}));
          bench::CheckOk(r.status, "tax join");
        });

    ontology::Ontology donto =
        bench::CollectionOntology(db, "dblp", data::DblpContentTags());
    ontology::Ontology sonto =
        bench::CollectionOntology(db, "sigmod", data::SigmodContentTags());
    core::SeoBuilder builder;
    builder.AddInstanceOntology(std::move(donto));
    builder.AddInstanceOntology(std::move(sonto));
    builder.AddConstraints(ontology::kPartOf,
                           ontology::Eq("booktitle", 0, "conference", 1));
    builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
    builder.SetEpsilon(2.0);
    auto seo = builder.Build();
    bench::CheckOk(seo.status(), "seo");
    service::TossService toss_svc(&db, &*seo, &types);
    size_t toss_trees = 0;
    double toss_ms = bench::MeasureAdaptiveMs(
        "fig16b/toss_" + std::to_string(size), [&] {
          service::QueryResponse r = toss_svc.Run(
              service::QueryRequest::Join("dblp", "sigmod", pattern, {2, 4}));
          bench::CheckOk(r.status, "toss join");
          toss_trees = r.trees.size();
        });

    std::printf("%8zu %12zu %10.2f %10.2f %10zu\n", size, bytes, tax_ms,
                toss_ms, toss_trees);
  }
  std::printf(
      "\nExpected shape: ~linear then super-linear at the largest point\n"
      "(cross-product intermediate results start to dominate, as in the\n"
      "paper); TOSS above TAX, finding strictly more pairs.\n");
  return 0;
}
