// Ablation: answer quality of the Fig. 15 workload under different
// similarity measures at a fixed threshold axis. The paper's framework
// "can plug in any similarity implementation"; this quantifies how much
// the choice matters on bibliographic name/venue data.
//
// Notable comparisons:
//  * levenshtein vs guarded-levenshtein isolates the short-acronym
//    precision hazard documented in DESIGN.md (raw edit distance merges
//    "VLDB"/"ICDE" at eps=3);
//  * person-name (the rule-based measure) catches initials forms
//    ("J. Ullman") that no edit measure reaches at small eps;
//  * jaro-winkler / monge-elkan run on their own scaled axes, shown at a
//    comparable operating point.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  const bool smoke = toss::bench::SmokeMode();
  toss::bench::Fig15Fixture fixture(smoke ? 2 : 3, smoke ? 30 : 100,
                                    smoke ? 2 : 4, 2004);

  struct Config {
    const char* measure;
    double epsilon;
  };
  const Config kConfigs[] = {
      {"", 0},  // TAX baseline
      {"levenshtein", 2},
      {"levenshtein", 3},
      {"guarded-levenshtein", 2},
      {"guarded-levenshtein", 3},
      {"damerau", 3},
      {"person-name", 2.5},
      {"jaro-winkler", 2},
      {"monge-elkan", 2},
      {"jaccard", 5},
      {"qgram-cosine", 3},
      {"soft-tfidf", 1.5},
  };

  std::printf("Measure ablation on the Fig. 15 workload "
              "(%zu queries, averages)\n",
              fixture.query_count());
  std::printf("%-28s %8s %10s %8s %9s\n", "measure(eps)", "prec", "recall",
              "quality", "returned");
  for (const auto& config : kConfigs) {
    std::string label = config.measure[0] == '\0'
                            ? "TAX (exact)"
                            : std::string(config.measure) + "(" +
                                  std::to_string(config.epsilon).substr(0, 3) +
                                  ")";
    auto metrics = fixture.Evaluate(config.measure, config.epsilon);
    if (!metrics.ok()) {
      std::printf("%-28s -- %s\n", label.c_str(),
                  metrics.status().ToString().c_str());
      continue;
    }
    auto avg = toss::bench::Average(*metrics);
    std::printf("%-28s %8.3f %10.3f %8.3f %9zu\n", label.c_str(),
                avg.precision, avg.recall, avg.quality, avg.returned);
  }
  std::printf(
      "\nExpected: guarded-levenshtein(3) dominates raw levenshtein(3) on\n"
      "precision at equal recall; person-name reaches initials variants\n"
      "that edit distance cannot.\n");
  return 0;
}
