// Reproduces Fig. 15(c): how much TOSS improves recall over TAX, normalized
// by precision -- the paper plots (R_toss * P_toss) / (R_tax * P_tax), i.e.
// the growth of precision-weighted recall. For most queries TOSS(3) should
// more than double the normalized recall.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  const bool smoke = toss::bench::SmokeMode();
  auto outcomes = smoke ? toss::bench::RunFig15Workload(2, 30, 2, 2004)
                        : toss::bench::RunFig15Workload(3, 100, 4, 2004);

  std::printf(
      "Fig 15(c): normalized recall improvement (P*R ratio vs TAX)\n");
  std::printf("%-44s %10s %10s\n", "query", "e2/TAX", "e3/TAX");
  size_t doubled = 0;
  for (const auto& o : outcomes) {
    double base = o.tax.precision * o.tax.recall;
    auto ratio = [&](const toss::eval::PrMetrics& m) {
      double v = m.precision * m.recall;
      return base > 0 ? v / base : (v > 0 ? -1.0 : 1.0);  // -1 = from zero
    };
    double r2 = ratio(o.toss2);
    double r3 = ratio(o.toss3);
    auto fmt = [](double r, char* buf, size_t len) {
      if (r < 0) {
        std::snprintf(buf, len, "inf");
      } else {
        std::snprintf(buf, len, "%.2fx", r);
      }
    };
    char b2[16], b3[16];
    fmt(r2, b2, sizeof(b2));
    fmt(r3, b3, sizeof(b3));
    std::printf("%-44s %10s %10s\n", o.query.c_str(), b2, b3);
    if (r3 < 0 || r3 >= 2.0) ++doubled;
  }
  std::printf(
      "\nTOSS(3) at least doubles normalized recall on %zu of %zu queries\n"
      "(paper: \"most of the queries get their normalized recall more than"
      " doubled\").\n",
      doubled, outcomes.size());
  return 0;
}
