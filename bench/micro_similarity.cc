// Micro-benchmark: every registered string-similarity measure on
// name-length and title-length inputs, plus the banded (bounded)
// Levenshtein fast path SEA relies on.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "sim/measure_registry.h"

namespace {

using toss::Random;
using toss::sim::MakeMeasure;

std::vector<std::pair<std::string, std::string>> MakePairs(size_t len) {
  Random rng(123);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.push_back({rng.AlphaString(len), rng.AlphaString(len)});
  }
  return pairs;
}

void BM_Measure(benchmark::State& state, const std::string& name,
                size_t len) {
  auto measure = MakeMeasure(name);
  if (!measure.ok()) {
    state.SkipWithError("unknown measure");
    return;
  }
  auto pairs = MakePairs(len);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize((*measure)->Distance(a, b));
  }
}

void BM_BoundedLevenshtein(benchmark::State& state) {
  auto measure = *MakeMeasure("levenshtein");
  auto pairs = MakePairs(static_cast<size_t>(state.range(0)));
  double bound = static_cast<double>(state.range(1));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(measure->BoundedDistance(a, b, bound));
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : toss::sim::MeasureNames()) {
    benchmark::RegisterBenchmark(("BM_" + name + "/len=16").c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Measure(s, name, 16);
                                 });
    benchmark::RegisterBenchmark(("BM_" + name + "/len=64").c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Measure(s, name, 64);
                                 });
  }
  benchmark::RegisterBenchmark("BM_BoundedLevenshtein", BM_BoundedLevenshtein)
      ->Args({64, 3})
      ->Args({64, 8})
      ->Args({256, 3});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
