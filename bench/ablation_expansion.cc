// Ablation: cost of phase (i) -- rewriting a pattern tree into XPath with
// SEO term expansion -- as the SEO grows. The Fig. 16 experiments attribute
// the TAX/TOSS gap to "accesses to the ontology"; this isolates that cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using namespace toss;

struct Setup {
  store::Database db;
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  std::vector<core::Seo> seos;  // by padding level
  data::BibWorld world;

  Setup() {
    data::BibConfig cfg;
    cfg.seed = 3;
    cfg.num_papers = 400;
    cfg.num_people = 80;
    world = data::GenerateWorld(cfg);
    bench::CheckOk(
        data::LoadIntoCollection(&db, "dblp",
                                 data::EmitDblp(world, 0, 400, cfg)),
        "load");
    ontology::Ontology base =
        bench::CollectionOntology(db, "dblp", data::DblpContentTags());
    for (size_t pad : {size_t{0}, size_t{500}, size_t{2000}}) {
      ontology::Ontology inflated = base;
      data::InflateOntology(&inflated, pad, 42);
      seos.push_back(
          bench::BuildSeo({std::move(inflated)}, "levenshtein", 3.0));
    }
  }
};

Setup& GetSetup() {
  static Setup setup;
  return setup;
}

void BM_Rewrite(benchmark::State& state) {
  auto& setup = GetSetup();
  const core::Seo& seo = setup.seos[static_cast<size_t>(state.range(0))];
  core::QueryExecutor exec(&setup.db, &seo, &setup.types);
  tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
      setup.world.venues[0].short_name, setup.world.venues[0].category);
  size_t expanded = 0;
  for (auto _ : state) {
    auto r = exec.RewriteToXPaths(pattern, {}, &expanded);
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["seo_nodes"] =
      static_cast<double>(seo.TotalNodeCount());
}

BENCHMARK(BM_Rewrite)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
