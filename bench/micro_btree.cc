// Micro-benchmark: the store's B+-tree value index -- point inserts/gets
// and range scans across tree sizes, vs a std::map baseline for context.

#include <benchmark/benchmark.h>

#include <map>
#include <set>

#include "common/random.h"
#include "store/btree.h"
#include "store/key_encoding.h"

namespace {

using toss::Random;
using toss::store::BPlusTree;
using toss::store::DocId;

std::vector<std::string> MakeKeys(size_t n) {
  Random rng(77);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(*toss::store::EncodeOrderedInt(
        std::to_string(rng.UniformRange(0, 1000000))));
  }
  return keys;
}

void BM_BTreeInsert(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    BPlusTree tree;
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.Insert(keys[i], static_cast<DocId>(i));
    }
    benchmark::DoNotOptimize(tree.key_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BTreeGet(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  BPlusTree tree;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<DocId>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(keys[i++ % keys.size()]));
  }
}

void BM_BTreeRangeScan(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  BPlusTree tree;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], static_cast<DocId>(i));
  }
  auto lo = *toss::store::EncodeOrderedInt("250000");
  auto hi = *toss::store::EncodeOrderedInt("750000");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.DocsInRange(lo, hi).size());
  }
}

void BM_StdMapInsertBaseline(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::map<std::string, std::set<DocId>> map;
    for (size_t i = 0; i < keys.size(); ++i) {
      map[keys[i]].insert(static_cast<DocId>(i));
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdMapInsertBaseline)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BTreeGet)->Arg(1000)->Arg(100000);
BENCHMARK(BM_BTreeRangeScan)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
