// Shared setup for the figure-reproduction benches: world generation,
// store loading, ontology construction, SEO building, and the Fig. 15
// per-query evaluation loop.

#ifndef TOSS_BENCH_BENCH_UTIL_H_
#define TOSS_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "eval/metrics.h"

namespace toss::bench {

/// Dies with a message when a Status is not OK (benches have no callers to
/// propagate to).
void CheckOk(const Status& status, const char* what);

/// True when the TOSS_BENCH_SMOKE environment variable is set and not "0":
/// benches shrink to their smallest configuration so the `bench_smoke`
/// ctest label exercises every harness end-to-end in seconds. Smoke runs
/// gate correctness, not numbers, so JSON reporting is disabled.
bool SmokeMode();

/// Merges {`name`: `median_ms`} into the machine-readable bench report --
/// a flat JSON object of bench name -> median wall milliseconds, written
/// to BENCH_PR10.json at the repo root (override the path with the
/// TOSS_BENCH_JSON environment variable). Re-recording a name overwrites
/// its value; entries from other benches are preserved. At process exit
/// the final obs::Metrics() snapshot is merged in too, as flat
/// "metrics/<name>" keys (histograms flatten to count/mean_ms/p99_ms).
/// No-op in smoke mode.
void RecordBenchMs(const std::string& name, double median_ms);

/// Times `body` with adaptive repetitions: one run if it takes >= 50 ms
/// (single-shot medians of long runs are stable enough), otherwise `body`
/// repeats until ~1 s of measured time has accumulated or 31 samples,
/// whichever comes first, and the median of all samples is reported. This
/// keeps sub-50 ms points (which a faster engine makes the common case)
/// from being dominated by scheduler noise. Records the median under
/// `name` via RecordBenchMs plus the sample count as "meta/reps/<name>",
/// and returns the median. Smoke mode runs `body` exactly once and
/// records nothing.
double MeasureAdaptiveMs(const std::string& name,
                         const std::function<void()>& body);

/// Median of a small sample (by copy; benches pass 3-5 runs).
double Median(std::vector<double> xs);

template <typename T>
T CheckResult(Result<T> r, const char* what) {
  CheckOk(r.status(), what);
  return std::move(r).value();
}

/// Builds the single fused ontology of a loaded collection.
ontology::Ontology CollectionOntology(const store::Database& db,
                                      const std::string& collection,
                                      std::vector<std::string> content_tags);

/// Builds an SEO over the given instance ontologies.
core::Seo BuildSeo(std::vector<ontology::Ontology> ontologies,
                   const std::string& measure, double epsilon);

/// Outcome of one Fig. 15 query under one system.
struct QueryOutcome {
  std::string query;
  eval::PrMetrics tax;
  eval::PrMetrics toss2;  ///< epsilon = 2
  eval::PrMetrics toss3;  ///< epsilon = 3
};

/// The paper's Section 6 "recall and precision" experiment: `datasets`
/// collections of `papers_per_dataset` papers, `queries_per_dataset`
/// selection queries each (1 isa + 1 similarTo + 3 tag conditions),
/// evaluated under TAX, TOSS(eps=2) and TOSS(eps=3) against ground truth.
std::vector<QueryOutcome> RunFig15Workload(size_t datasets,
                                           size_t papers_per_dataset,
                                           size_t queries_per_dataset,
                                           uint64_t seed);

/// Reusable Fig. 15 setup: datasets, per-dataset ontologies, and queries
/// built once; Evaluate() then sweeps (measure, epsilon) configurations
/// for the measure/epsilon ablation benches.
class Fig15Fixture {
 public:
  Fig15Fixture(size_t datasets, size_t papers_per_dataset,
               size_t queries_per_dataset, uint64_t seed);
  ~Fig15Fixture();
  Fig15Fixture(const Fig15Fixture&) = delete;
  Fig15Fixture& operator=(const Fig15Fixture&) = delete;

  /// Per-query metrics under TOSS with the given measure and epsilon;
  /// `measure` == "" runs the TAX baseline. Similarity-inconsistent
  /// configurations return Status::Inconsistent.
  Result<std::vector<eval::PrMetrics>> Evaluate(const std::string& measure,
                                                double epsilon) const;

  /// Evaluate() across all of `epsilons` (result i matches epsilons[i]),
  /// but with each dataset's SEO built through core::SeoSweeper: fusion and
  /// the pairwise distance scan run once at max(epsilons) instead of once
  /// per epsilon. Per-epsilon results are identical to Evaluate()'s,
  /// including Inconsistent entries for rejected thresholds.
  std::vector<Result<std::vector<eval::PrMetrics>>> EvaluateSweep(
      const std::string& measure, const std::vector<double>& epsilons) const;

  size_t query_count() const;

  /// Human-readable query intents, in Evaluate()'s result order.
  std::vector<std::string> QueryNames() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Averages of a metric vector.
eval::PrMetrics Average(const std::vector<eval::PrMetrics>& ms);

}  // namespace toss::bench

#endif  // TOSS_BENCH_BENCH_UTIL_H_
