// Ablation: speedup of the executor's parallel phase-(iii) evaluation as
// worker threads grow. The per-document work (XML -> DataTree conversion +
// embedding enumeration) is embarrassingly parallel; the dedup merge is
// sequential, bounding the scaling.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace toss;

int main() {
  data::BibConfig cfg;
  cfg.seed = 21;
  cfg.num_papers = 6000;
  cfg.num_people = 250;
  data::BibWorld world = data::GenerateWorld(cfg);
  store::Database db;
  bench::CheckOk(data::LoadIntoCollection(
                     &db, "dblp", data::EmitDblp(world, 0, 6000, cfg)),
                 "load");
  ontology::Ontology onto =
      bench::CollectionOntology(db, "dblp", data::DblpContentTags());
  core::Seo seo = bench::BuildSeo({std::move(onto)}, "guarded-levenshtein",
                                  3.0);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  // A broad query so phase (iii) touches many documents.
  tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
      world.venues[0].short_name, world.venues[0].category);

  std::printf("Parallel evaluation ablation (6000 papers, broad selection;"
              " hw threads: %u)\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %9s\n", "threads", "time-ms", "speedup");
  double base_ms = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    core::QueryExecutor exec(&db, &seo, &types);
    exec.SetParallelism(threads);
    // Warm once, then time the better of three runs.
    bench::CheckOk(exec.Select("dblp", pattern, {1}, nullptr).status(),
                   "warmup");
    double best = 1e18;
    for (int run = 0; run < 3; ++run) {
      Timer timer;
      auto r = exec.Select("dblp", pattern, {1}, nullptr);
      bench::CheckOk(r.status(), "select");
      best = std::min(best, timer.ElapsedMillis());
    }
    if (threads == 1) base_ms = best;
    std::printf("%8zu %10.2f %8.2fx\n", threads, best, base_ms / best);
  }
  return 0;
}
