// Ablation: speedup of the executor's parallel phase-(iii) evaluation as
// worker threads grow. The per-document work (decoded-tree lookup +
// embedding enumeration) is embarrassingly parallel; the dedup merge is
// sequential, bounding the scaling. The first (1-thread) timing loop warms
// the decoded-tree cache, so higher thread counts measure evaluation, not
// XML decoding.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

using namespace toss;

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t papers = smoke ? 300 : 6000;

  data::BibConfig cfg;
  cfg.seed = 21;
  cfg.num_papers = papers;
  cfg.num_people = smoke ? 40 : 250;
  data::BibWorld world = data::GenerateWorld(cfg);
  store::Database db;
  bench::CheckOk(data::LoadIntoCollection(
                     &db, "dblp", data::EmitDblp(world, 0, papers, cfg)),
                 "load");
  ontology::Ontology onto =
      bench::CollectionOntology(db, "dblp", data::DblpContentTags());
  core::Seo seo = bench::BuildSeo({std::move(onto)}, "guarded-levenshtein",
                                  3.0);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  // A broad query so phase (iii) touches many documents.
  tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
      world.venues[0].short_name, world.venues[0].category);

  std::printf("Parallel evaluation ablation (%zu papers, broad selection;"
              " hw threads: %u)\n",
              papers, std::thread::hardware_concurrency());
  // Speedups only make sense relative to the machine's real parallelism;
  // record it so readers of the report can interpret the ratios.
  bench::RecordBenchMs("meta/hw_threads",
                       std::thread::hardware_concurrency());
  std::printf("%8s %10s %9s\n", "threads", "median-ms", "speedup");
  double base_ms = 0;
  std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  for (size_t threads : thread_counts) {
    core::QueryExecutor exec(&db, &seo, &types);
    core::QueryOptions opts;
    opts.parallelism = threads;
    // Warm once (fills the decoded-tree cache), then let the adaptive
    // driver pick the repetition count for a stable median.
    bench::CheckOk(exec.Select("dblp", pattern, {1}, opts).status(),
                   "warmup");
    double median = bench::MeasureAdaptiveMs(
        "ablation_parallel/select_" + std::to_string(threads) + "t", [&] {
          bench::CheckOk(exec.Select("dblp", pattern, {1}, opts).status(),
                         "select");
        });
    if (threads == 1) base_ms = median;
    std::printf("%8zu %10.2f %8.2fx\n", threads, median, base_ms / median);
    if (threads == 4) {
      bench::RecordBenchMs("ablation_parallel/speedup_4t",
                           base_ms / median);
    }
  }
  return 0;
}
