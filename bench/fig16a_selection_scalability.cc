// Reproduces Fig. 16(a): scalability of conjunctive selection queries
// (2 isa + 4 tag-matching conditions) on DBLP data, varying the XML data
// size, and -- for TOSS only -- the ontology size.
//
// Paper's reported shape: time grows roughly linearly with data size; the
// TOSS curves sit a little above TAX (ontology accesses), nearly
// independent of ontology size; TAX/TOSS difference grows slowly with data
// size.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/toss_service.h"

using namespace toss;

namespace {

/// One timed run: all six venue-scalability queries, total milliseconds.
double RunQueries(service::TossService& svc, const std::string& coll,
                  const data::BibWorld& world) {
  Timer timer;
  for (const auto& venue : world.venues) {
    tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
        venue.short_name, venue.category);
    service::QueryResponse r =
        svc.Run(service::QueryRequest::Select(coll, pattern, {1}));
    bench::CheckOk(r.status, "Select");
  }
  return timer.ElapsedMillis();
}

/// EXPLAIN ANALYZE (collect_trace) over the same six queries: the minimum
/// fraction of each query's wall time accounted for by the trace tree's
/// phase spans. The observability acceptance bar is >= 0.95 across the
/// Fig. 16(a) queries.
double MinTraceCoverage(service::TossService& svc, const std::string& coll,
                        const data::BibWorld& world) {
  double min_cov = 1.0;
  for (const auto& venue : world.venues) {
    service::QueryRequest req = service::QueryRequest::Select(
        coll,
        data::MakeScalabilitySelectionPattern(venue.short_name,
                                              venue.category),
        {1});
    req.collect_trace = true;
    service::QueryResponse r = svc.Run(req);
    bench::CheckOk(r.status, "traced Select");
    min_cov = std::min(min_cov, r.trace->CoverageFraction());
  }
  return min_cov;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<size_t> kSizes =
      smoke ? std::vector<size_t>{400}
            : std::vector<size_t>{1000, 2000, 4000, 8000, 16000};
  const std::vector<size_t> kOntologyPadding =
      smoke ? std::vector<size_t>{0} : std::vector<size_t>{0, 500, 1500};

  data::BibConfig cfg;
  cfg.seed = 16;
  cfg.num_people = smoke ? 60 : 400;
  cfg.num_papers = kSizes.back();
  data::BibWorld world = data::GenerateWorld(cfg);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  std::printf("Fig 16(a): selection scalability (6 conjunctive queries,\n"
              "           2 isa + 4 tag conditions each; times in ms)\n");
  std::printf("%8s %10s %9s", "papers", "bytes", "TAX");
  for (size_t pad : kOntologyPadding) {
    std::printf("  TOSS(o+%zu)", pad);
  }
  std::printf("\n");

  double min_coverage = 1.0;
  for (size_t size : kSizes) {
    store::Database db;
    bench::CheckOk(
        data::LoadIntoCollection(&db, "dblp",
                                 data::EmitDblp(world, 0, size, cfg)),
        "LoadIntoCollection");
    auto coll = db.GetCollection("dblp");
    bench::CheckOk(coll.status(), "GetCollection");
    size_t bytes = (*coll)->ApproxByteSize();

    service::TossService tax_svc(&db, nullptr, nullptr);
    double tax_ms =
        bench::MeasureAdaptiveMs("fig16a/tax_" + std::to_string(size),
                                 [&] { RunQueries(tax_svc, "dblp", world); });
    min_coverage =
        std::min(min_coverage, MinTraceCoverage(tax_svc, "dblp", world));

    std::printf("%8zu %10zu %9.2f", size, bytes, tax_ms);
    ontology::Ontology base =
        bench::CollectionOntology(db, "dblp", data::DblpContentTags());
    for (size_t pad : kOntologyPadding) {
      ontology::Ontology inflated = base;
      data::InflateOntology(&inflated, pad, 99);
      core::Seo seo = bench::BuildSeo({std::move(inflated)}, "levenshtein",
                                      3.0);
      service::TossService toss_svc(&db, &seo, &types);
      double toss_ms;
      if (pad == 0) {
        toss_ms = bench::MeasureAdaptiveMs(
            "fig16a/toss_" + std::to_string(size),
            [&] { RunQueries(toss_svc, "dblp", world); });
        min_coverage = std::min(min_coverage,
                                MinTraceCoverage(toss_svc, "dblp", world));
      } else {
        toss_ms = RunQueries(toss_svc, "dblp", world);
      }
      std::printf(" %11.2f", toss_ms);
    }
    std::printf("\n");
  }
  bench::RecordBenchMs("fig16a/trace_coverage_min", min_coverage * 100.0);
  std::printf(
      "\nEXPLAIN ANALYZE trace coverage (min over all queries): %.1f%%\n"
      "\nExpected shape: ~linear growth in data size; TOSS above TAX by a\n"
      "near-constant ontology-access overhead, insensitive to padding.\n",
      min_coverage * 100.0);
  return 0;
}
