// Reproduces Fig. 15(b): answer quality sqrt(precision * recall) of TAX and
// TOSS, plotted by the paper against sqrt(TAX recall) per query. TOSS(3)
// should dominate TAX on (nearly) every query.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  const bool smoke = toss::bench::SmokeMode();
  auto outcomes = smoke ? toss::bench::RunFig15Workload(2, 30, 2, 2004)
                        : toss::bench::RunFig15Workload(3, 100, 4, 2004);

  std::printf("Fig 15(b): quality = sqrt(P*R), by sqrt(TAX recall)\n");
  std::printf("%-44s %12s %9s %9s %9s\n", "query", "sqrt(TAX.R)", "Q.TAX",
              "Q.e2", "Q.e3");
  size_t toss3_wins = 0;
  double q_tax = 0, q_e2 = 0, q_e3 = 0;
  for (const auto& o : outcomes) {
    std::printf("%-44s %12.3f %9.3f %9.3f %9.3f\n", o.query.c_str(),
                std::sqrt(o.tax.recall), o.tax.quality, o.toss2.quality,
                o.toss3.quality);
    if (o.toss3.quality >= o.tax.quality) ++toss3_wins;
    q_tax += o.tax.quality;
    q_e2 += o.toss2.quality;
    q_e3 += o.toss3.quality;
  }
  double n = static_cast<double>(outcomes.size());
  std::printf("%-44s %12s %9.3f %9.3f %9.3f\n", "AVERAGE", "", q_tax / n,
              q_e2 / n, q_e3 / n);
  std::printf(
      "\nTOSS(3) quality >= TAX quality on %zu of %zu queries\n"
      "(paper: all queries except the 3 whose correct answers number <= 3"
      " papers,\n where TAX already achieves recall 1).\n",
      toss3_wins, outcomes.size());
  return 0;
}
