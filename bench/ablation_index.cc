// Ablation: the store's index-backed document pruning on vs off, for the
// three plan-hint classes (value equality, term containment, tag
// existence). Validates the planner design called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace {

using namespace toss;

struct Fixture {
  store::Database db;
  const store::Collection* coll = nullptr;

  Fixture() {
    data::BibConfig cfg;
    cfg.seed = 5;
    cfg.num_papers = 2000;
    cfg.num_people = 150;
    data::BibWorld world = data::GenerateWorld(cfg);
    bench::CheckOk(
        data::LoadIntoCollection(&db, "dblp",
                                 data::EmitDblp(world, 0, 2000, cfg)),
        "load");
    coll = *db.GetCollection("dblp");
  }
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void RunQuery(benchmark::State& state, const char* xpath,
              bool use_indexes) {
  auto& f = GetFixture();
  auto compiled = xml::XPath::Compile(xpath);
  bench::CheckOk(compiled.status(), "compile");
  for (auto _ : state) {
    auto matches = f.coll->Query(*compiled, use_indexes, nullptr);
    benchmark::DoNotOptimize(matches.size());
  }
}

void BM_ValueEquality_Indexed(benchmark::State& state) {
  RunQuery(state, "//inproceedings[booktitle='VLDB'][year='1999']", true);
}
void BM_ValueEquality_Scan(benchmark::State& state) {
  RunQuery(state, "//inproceedings[booktitle='VLDB'][year='1999']", false);
}
void BM_TermContains_Indexed(benchmark::State& state) {
  RunQuery(state, "//title[contains(., 'Semistructured')]", true);
}
void BM_TermContains_Scan(benchmark::State& state) {
  RunQuery(state, "//title[contains(., 'Semistructured')]", false);
}
void BM_TagOnly_Indexed(benchmark::State& state) {
  RunQuery(state, "//booktitle", true);
}
void BM_TagOnly_Scan(benchmark::State& state) {
  RunQuery(state, "//booktitle", false);
}

BENCHMARK(BM_ValueEquality_Indexed);
BENCHMARK(BM_ValueEquality_Scan);
BENCHMARK(BM_TermContains_Indexed);
BENCHMARK(BM_TermContains_Scan);
BENCHMARK(BM_TagOnly_Indexed);
BENCHMARK(BM_TagOnly_Scan);

}  // namespace

BENCHMARK_MAIN();
