// Ablation: canonical-fusion runtime as the number of hierarchies and of
// interoperation constraints grows (the SCC-condensation construction of
// Defs. 5-6).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ontology/fusion.h"

namespace {

using namespace toss;
using ontology::Hierarchy;
using ontology::InteropConstraint;

/// A random DAG hierarchy of n terms named t<i>-<salt>.
Hierarchy MakeHierarchy(size_t n, int salt, uint64_t seed) {
  Random rng(seed);
  Hierarchy h;
  for (size_t i = 0; i < n; ++i) {
    h.AddNode({"t" + std::to_string(i) + "-" + std::to_string(salt)});
    if (i > 0 && rng.Bernoulli(0.6)) {
      (void)h.AddEdge(static_cast<ontology::HNodeId>(i),
                      static_cast<ontology::HNodeId>(rng.Uniform(i)));
    }
  }
  return h;
}

void BM_Fusion(benchmark::State& state) {
  size_t hierarchies = static_cast<size_t>(state.range(0));
  size_t terms = static_cast<size_t>(state.range(1));
  size_t constraints = static_cast<size_t>(state.range(2));

  std::vector<Hierarchy> hs;
  for (size_t i = 0; i < hierarchies; ++i) {
    hs.push_back(MakeHierarchy(terms, static_cast<int>(i), 100 + i));
  }
  std::vector<const Hierarchy*> ptrs;
  for (const auto& h : hs) ptrs.push_back(&h);

  // Equality constraints between consecutive hierarchies on shared
  // indexes (term t<k>-<i> == t<k>-<i+1>).
  Random rng(9);
  std::vector<InteropConstraint> ics;
  for (size_t c = 0; c < constraints; ++c) {
    int i = static_cast<int>(c % (hierarchies - 1));
    size_t k = rng.Uniform(terms);
    ontology::Append(
        &ics, ontology::Eq("t" + std::to_string(k) + "-" + std::to_string(i),
                           i,
                           "t" + std::to_string(k) + "-" +
                               std::to_string(i + 1),
                           i + 1));
  }

  for (auto _ : state) {
    auto r = ontology::Fuse(ptrs, ics);
    benchmark::DoNotOptimize(r.ok());
  }
}

BENCHMARK(BM_Fusion)
    ->Args({2, 100, 10})
    ->Args({2, 400, 10})
    ->Args({2, 1600, 10})
    ->Args({4, 400, 10})
    ->Args({8, 400, 10})
    ->Args({2, 400, 100})
    ->Args({2, 400, 300})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
