// Micro-benchmark: SEA (the Similarity Enhancement Algorithm, Fig. 12) as
// a function of hierarchy size and epsilon. The paper gives the complexity
// O(|S|*|S'|) + O(|S|*|S'|^2); the pairwise distance scan with the banded
// Levenshtein dominates at realistic sizes.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace {

using toss::Random;
using toss::ontology::Hierarchy;

/// A flat-ish hierarchy of n name-like terms with some variant clusters
/// (every 4th term is an edit of its predecessor) and a shallow order.
Hierarchy MakeHierarchy(size_t n, uint64_t seed) {
  Random rng(seed);
  Hierarchy h;
  std::string prev;
  for (size_t i = 0; i < n; ++i) {
    std::string term;
    if (i % 4 == 3 && !prev.empty()) {
      term = prev;
      term[rng.Uniform(term.size())] = 'z';  // near-duplicate
    } else {
      term = rng.AlphaString(8 + rng.Uniform(8));
    }
    h.AddNode({term});
    prev = term;
    if (i > 0 && rng.Bernoulli(0.3)) {
      (void)h.AddEdge(static_cast<toss::ontology::HNodeId>(i),
                      static_cast<toss::ontology::HNodeId>(rng.Uniform(i)));
    }
  }
  return h;
}

void BM_Sea(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  double eps = static_cast<double>(state.range(1));
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  for (auto _ : state) {
    auto r = toss::ontology::SimilarityEnhance(h, lev, eps);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}

BENCHMARK(BM_Sea)
    ->Args({100, 1})
    ->Args({200, 1})
    ->Args({400, 1})
    ->Args({800, 1})
    ->Args({400, 0})
    ->Args({400, 2})
    ->Args({400, 3})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
