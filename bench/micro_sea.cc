// Micro-benchmark: SEA (the Similarity Enhancement Algorithm, Fig. 12) as
// a function of hierarchy size and epsilon. The paper gives the complexity
// O(|S|*|S'|) + O(|S|*|S'|^2); the pairwise distance scan with the banded
// Levenshtein dominates at realistic sizes.
//
// Variants:
//   BM_Sea                 -- the production path: signature admission
//                             filters + bitset clique/order pipeline.
//   BM_SeaNaive            -- filters and parallel fan-out disabled; the
//                             gap to BM_Sea is the filter win.
//   BM_SeaSweepIndependent -- an epsilon sweep as independent
//                             SimilarityEnhance calls (re-scanning pairs
//                             per epsilon).
//   BM_SeaSweep            -- the same sweep through SimilaritySweep
//                             (pairwise matrix computed once, thresholded
//                             per epsilon).
// Results are written to the bench report via RecordBenchMs on the median
// aggregate.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace {

using toss::Random;
using toss::ontology::Hierarchy;

/// A flat-ish hierarchy of n name-like terms with some variant clusters
/// (every 4th term is an edit of its predecessor) and a shallow order.
Hierarchy MakeHierarchy(size_t n, uint64_t seed) {
  Random rng(seed);
  Hierarchy h;
  std::string prev;
  for (size_t i = 0; i < n; ++i) {
    std::string term;
    if (i % 4 == 3 && !prev.empty()) {
      term = prev;
      term[rng.Uniform(term.size())] = 'z';  // near-duplicate
    } else {
      term = rng.AlphaString(8 + rng.Uniform(8));
    }
    h.AddNode({term});
    prev = term;
    if (i > 0 && rng.Bernoulli(0.3)) {
      (void)h.AddEdge(static_cast<toss::ontology::HNodeId>(i),
                      static_cast<toss::ontology::HNodeId>(rng.Uniform(i)));
    }
  }
  return h;
}

const std::vector<double>& SweepEpsilons() {
  static const std::vector<double> eps = {0.0, 1.0, 2.0, 3.0};
  return eps;
}

void RunSea(benchmark::State& state, const toss::ontology::SeaOptions& opts) {
  size_t n = static_cast<size_t>(state.range(0));
  double eps = static_cast<double>(state.range(1));
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  for (auto _ : state) {
    auto r = toss::ontology::SimilarityEnhance(h, lev, eps, opts);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}

void BM_Sea(benchmark::State& state) { RunSea(state, {}); }

void BM_SeaNaive(benchmark::State& state) {
  toss::ontology::SeaOptions opts;
  opts.use_filters = false;
  opts.parallel = false;
  RunSea(state, opts);
}

void BM_SeaSweepIndependent(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  for (auto _ : state) {
    for (double eps : SweepEpsilons()) {
      auto r = toss::ontology::SimilarityEnhance(h, lev, eps);
      benchmark::DoNotOptimize(r.ok());
    }
  }
}

void BM_SeaSweep(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  const double max_eps = SweepEpsilons().back();
  for (auto _ : state) {
    auto sweep = toss::ontology::SimilaritySweep::Create(h, lev, max_eps);
    for (double eps : SweepEpsilons()) {
      auto r = sweep.value().Enhance(eps);
      benchmark::DoNotOptimize(r.ok());
    }
  }
}

BENCHMARK(BM_Sea)
    ->Args({100, 1})
    ->Args({200, 1})
    ->Args({400, 1})
    ->Args({800, 1})
    ->Args({400, 0})
    ->Args({400, 2})
    ->Args({400, 3})
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(3)
    ->ReportAggregatesOnly(true)
    ->Complexity(benchmark::oNSquared);

BENCHMARK(BM_SeaNaive)
    ->Args({400, 1})
    ->Args({800, 1})
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(3)
    ->ReportAggregatesOnly(true);

BENCHMARK(BM_SeaSweepIndependent)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(3)
    ->ReportAggregatesOnly(true);

BENCHMARK(BM_SeaSweep)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(3)
    ->ReportAggregatesOnly(true);

/// Console reporting plus RecordBenchMs on every *_median aggregate.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::string name = run.benchmark_name();
      const std::string suffix = "_median";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
        toss::bench::RecordBenchMs(
            "micro_sea/" + name.substr(0, name.size() - suffix.size()),
            run.GetAdjustedRealTime());
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
