// Micro-benchmark: SEA (the Similarity Enhancement Algorithm, Fig. 12) as
// a function of hierarchy size and epsilon. The paper gives the complexity
// O(|S|*|S'|) + O(|S|*|S'|^2); the pairwise distance scan with the banded
// Levenshtein dominates at realistic sizes.
//
// Variants:
//   BM_Sea                 -- the production path: signature admission
//                             filters + bitset clique/order pipeline.
//   BM_SeaNaive            -- filters and parallel fan-out disabled; the
//                             gap to BM_Sea is the filter win.
//   BM_SeaSweepIndependent -- an epsilon sweep as independent
//                             SimilarityEnhance calls (re-scanning pairs
//                             per epsilon).
//   BM_SeaSweep            -- the same sweep through SimilaritySweep
//                             (pairwise matrix computed once, thresholded
//                             per epsilon).
// Timing goes through bench::MeasureAdaptiveMs (sub-50ms points repeat
// until their median stabilises); medians land in the bench report under
// the same keys the old google-benchmark harness recorded.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace {

using toss::Random;
using toss::ontology::Hierarchy;

/// A flat-ish hierarchy of n name-like terms with some variant clusters
/// (every 4th term is an edit of its predecessor) and a shallow order.
Hierarchy MakeHierarchy(size_t n, uint64_t seed) {
  Random rng(seed);
  Hierarchy h;
  std::string prev;
  for (size_t i = 0; i < n; ++i) {
    std::string term;
    if (i % 4 == 3 && !prev.empty()) {
      term = prev;
      term[rng.Uniform(term.size())] = 'z';  // near-duplicate
    } else {
      term = rng.AlphaString(8 + rng.Uniform(8));
    }
    h.AddNode({term});
    prev = term;
    if (i > 0 && rng.Bernoulli(0.3)) {
      (void)h.AddEdge(static_cast<toss::ontology::HNodeId>(i),
                      static_cast<toss::ontology::HNodeId>(rng.Uniform(i)));
    }
  }
  return h;
}

const std::vector<double>& SweepEpsilons() {
  static const std::vector<double> eps = {0.0, 1.0, 2.0, 3.0};
  return eps;
}

/// Key format matches the old google-benchmark aggregate names:
/// "micro_sea/BM_Sea/<n>/<eps>".
std::string Key(const char* variant, size_t n, int eps) {
  return std::string("micro_sea/") + variant + "/" + std::to_string(n) +
         "/" + std::to_string(eps);
}

double RunSea(const char* variant, size_t n, int eps,
              const toss::ontology::SeaOptions& opts) {
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  return toss::bench::MeasureAdaptiveMs(Key(variant, n, eps), [&] {
    auto r = toss::ontology::SimilarityEnhance(h, lev,
                                               static_cast<double>(eps),
                                               opts);
    toss::bench::CheckOk(r.status(), "SimilarityEnhance");
  });
}

double RunSweepIndependent(size_t n) {
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  return toss::bench::MeasureAdaptiveMs(
      std::string("micro_sea/BM_SeaSweepIndependent/") + std::to_string(n),
      [&] {
        for (double eps : SweepEpsilons()) {
          auto r = toss::ontology::SimilarityEnhance(h, lev, eps);
          toss::bench::CheckOk(r.status(), "SimilarityEnhance");
        }
      });
}

double RunSweep(size_t n) {
  Hierarchy h = MakeHierarchy(n, 7);
  toss::sim::LevenshteinMeasure lev;
  const double max_eps = SweepEpsilons().back();
  return toss::bench::MeasureAdaptiveMs(
      std::string("micro_sea/BM_SeaSweep/") + std::to_string(n), [&] {
        auto sweep = toss::ontology::SimilaritySweep::Create(h, lev, max_eps);
        toss::bench::CheckOk(sweep.status(), "SimilaritySweep::Create");
        for (double eps : SweepEpsilons()) {
          auto r = sweep.value().Enhance(eps);
          toss::bench::CheckOk(r.status(), "Enhance");
        }
      });
}

}  // namespace

int main() {
  const bool smoke = toss::bench::SmokeMode();

  struct Config { size_t n; int eps; };
  const std::vector<Config> kSeaConfigs =
      smoke ? std::vector<Config>{{100, 1}}
            : std::vector<Config>{{100, 1}, {200, 1}, {400, 1}, {800, 1},
                                  {400, 0}, {400, 2}, {400, 3}};
  const std::vector<Config> kNaiveConfigs =
      smoke ? std::vector<Config>{{100, 1}}
            : std::vector<Config>{{400, 1}, {800, 1}};
  const std::vector<size_t> kSweepSizes =
      smoke ? std::vector<size_t>{100} : std::vector<size_t>{400, 800};

  std::printf("SEA micro-bench (median ms)\n%-24s %6s %4s %10s\n",
              "variant", "n", "eps", "ms");
  for (const Config& c : kSeaConfigs) {
    double ms = RunSea("BM_Sea", c.n, c.eps, {});
    std::printf("%-24s %6zu %4d %10.3f\n", "BM_Sea", c.n, c.eps, ms);
  }
  for (const Config& c : kNaiveConfigs) {
    toss::ontology::SeaOptions opts;
    opts.use_filters = false;
    opts.parallel = false;
    double ms = RunSea("BM_SeaNaive", c.n, c.eps, opts);
    std::printf("%-24s %6zu %4d %10.3f\n", "BM_SeaNaive", c.n, c.eps, ms);
  }
  for (size_t n : kSweepSizes) {
    double ms = RunSweepIndependent(n);
    std::printf("%-24s %6zu %4s %10.3f\n", "BM_SeaSweepIndependent", n, "-",
                ms);
  }
  for (size_t n : kSweepSizes) {
    double ms = RunSweep(n);
    std::printf("%-24s %6zu %4s %10.3f\n", "BM_SeaSweep", n, "-", ms);
  }
  return 0;
}
