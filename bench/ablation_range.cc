// Ablation: range-predicate pushdown. Year-range selections
// ($n.content >= lo & $n.content <= hi) either scan every document or,
// with the B+-tree numeric index, touch only documents inside the range.
// Sweeps range selectivity to show when the index matters.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace toss;

namespace {

tax::PatternTree YearRangePattern(int lo, int hi) {
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);
  pt.SetCondition(
      tax::ParseCondition(
          "$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
          "$2.content >= \"" + std::to_string(lo) + "\" & "
          "$2.content <= \"" + std::to_string(hi) + "\"")
          .value());
  return pt;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t papers = smoke ? 400 : 8000;
  data::BibConfig cfg;
  cfg.seed = 23;
  cfg.num_papers = papers;
  cfg.num_people = smoke ? 50 : 250;
  cfg.year_min = 1980;
  cfg.year_max = 2003;
  data::BibWorld world = data::GenerateWorld(cfg);
  store::Database db;
  bench::CheckOk(data::LoadIntoCollection(
                     &db, "dblp", data::EmitDblp(world, 0, papers, cfg)),
                 "load");
  core::QueryExecutor exec(&db, nullptr, nullptr);  // TAX suffices here

  struct Sweep {
    int lo, hi;
  };
  const Sweep kSweeps[] = {
      {1999, 1999}, {1998, 2000}, {1990, 2000}, {1980, 2003},
  };
  std::printf("Range-pushdown ablation (%zu papers; selection with a "
              "year range; ms, best of 3)\n",
              papers);
  std::printf("%14s %12s %12s %10s\n", "range", "pushdown", "no-index",
              "matches");
  for (const auto& sweep : kSweeps) {
    tax::PatternTree pattern = YearRangePattern(sweep.lo, sweep.hi);
    core::ExecStats stats;
    auto warm =
        exec.Select("dblp", pattern, {1}, core::QueryOptions{}, &stats);
    bench::CheckOk(warm.status(), "select");
    double with_index = 1e18;
    for (int i = 0; i < 3; ++i) {
      Timer t;
      bench::CheckOk(exec.Select("dblp", pattern, {1}, core::QueryOptions{}).status(),
                     "select");
      with_index = std::min(with_index, t.ElapsedMillis());
    }
    // Baseline: evaluate against all documents through the raw algebra
    // (what the executor would do without candidate pruning).
    auto coll = db.GetCollection("dblp");
    bench::CheckOk(coll.status(), "coll");
    double no_index = 1e18;
    for (int i = 0; i < 3; ++i) {
      Timer t;
      tax::TreeCollection trees;
      for (store::DocId id : (*coll)->AllDocs()) {
        trees.push_back(tax::DataTree::FromXml(
            (*coll)->document(id), (*coll)->document(id).root()));
      }
      tax::TaxSemantics sem;
      auto r = tax::Select(trees, pattern, {1}, sem);
      bench::CheckOk(r.status(), "select");
      no_index = std::min(no_index, t.ElapsedMillis());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%d-%d", sweep.lo, sweep.hi);
    std::printf("%14s %12.2f %12.2f %10zu\n", label, with_index, no_index,
                warm->size());
  }
  std::printf(
      "\nExpected: pushdown wins big on selective ranges and converges to\n"
      "the scan cost as the range covers the whole collection.\n");
  return 0;
}
