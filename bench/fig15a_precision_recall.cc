// Reproduces Fig. 15(a): precision and recall of TAX vs TOSS (eps=2, 3) on
// 12 selection queries over 3 datasets of 100 papers each. Each query has
// 1 isa + 1 similarTo + 3 tag-matching conditions; for TAX, isa degrades
// to "contains" and similarTo to exact match (the paper's baseline setup).
//
// Paper's reported shape: TAX precision always 1.0 with recall < 0.5 for
// 75% of queries; TOSS(eps=3) averages P=0.942 / R=0.843; TOSS(eps=2)
// averages P=0.987 / R=0.596 (higher precision, lower recall than eps=3).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using toss::bench::QueryOutcome;
  const bool smoke = toss::bench::SmokeMode();
  auto outcomes = toss::bench::RunFig15Workload(
      /*datasets=*/smoke ? 2 : 3, /*papers_per_dataset=*/smoke ? 30 : 100,
      /*queries_per_dataset=*/smoke ? 2 : 4, /*seed=*/2004);

  std::printf("Fig 15(a): precision / recall per query\n");
  std::printf("%-44s %7s %7s | %7s %7s | %7s %7s\n", "query", "TAX.P",
              "TAX.R", "e2.P", "e2.R", "e3.P", "e3.R");
  double tp = 0, tr = 0, p2 = 0, r2 = 0, p3 = 0, r3 = 0;
  size_t low_recall_tax = 0;
  for (const auto& o : outcomes) {
    std::printf("%-44s %7.3f %7.3f | %7.3f %7.3f | %7.3f %7.3f\n",
                o.query.c_str(), o.tax.precision, o.tax.recall,
                o.toss2.precision, o.toss2.recall, o.toss3.precision,
                o.toss3.recall);
    tp += o.tax.precision;
    tr += o.tax.recall;
    p2 += o.toss2.precision;
    r2 += o.toss2.recall;
    p3 += o.toss3.precision;
    r3 += o.toss3.recall;
    if (o.tax.recall < 0.5) ++low_recall_tax;
  }
  double n = static_cast<double>(outcomes.size());
  std::printf("%-44s %7.3f %7.3f | %7.3f %7.3f | %7.3f %7.3f\n", "AVERAGE",
              tp / n, tr / n, p2 / n, r2 / n, p3 / n, r3 / n);
  std::printf(
      "\nTAX recall < 0.5 on %zu of %zu queries (paper: 75%%).\n"
      "Paper averages: TOSS(3) P=0.942 R=0.843; TOSS(2) P=0.987 R=0.596; "
      "TAX P=1.0.\n",
      low_recall_tax, outcomes.size());
  return 0;
}
