// Multi-client throughput of the query service (DESIGN.md §11): the same
// Fig. 16(a)-style selection workload driven through TossService::Run by 1
// client thread and by `max_inflight + queue` worth of concurrent clients.
//
// What this measures (and records into the bench report):
//   service_throughput/single_query_ms   median per-query latency, 1 client
//   service_throughput/multi_query_ms    median per-query latency, N clients
//   service_throughput/qps_1client       completed queries/s, 1 client
//   service_throughput/qps_multi        completed queries/s, N clients
//   service_throughput/queue_wait_p_ms   mean reported queue wait, N clients
// plus, via the atexit metrics merge, the service instruments themselves
// (service.inflight / service.shed / service.deadline_exceeded /
// service.queue_wait_ns). The shed and deadline counters are exercised by
// two deterministic epilogues: a saturated max_inflight=1/max_queue=0
// service, and a request whose deadline has already expired.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/toss_service.h"

using namespace toss;

namespace {

std::vector<service::QueryRequest> MakeWorkload(const data::BibWorld& world,
                                                size_t rounds) {
  std::vector<service::QueryRequest> out;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& venue : world.venues) {
      out.push_back(service::QueryRequest::Select(
          "dblp",
          data::MakeScalabilitySelectionPattern(venue.short_name,
                                                venue.category),
          {1}));
    }
  }
  return out;
}

/// Runs every request in `reqs` through `svc`, appending each query's
/// latency to `lat_ms` and queue wait to `wait_ms` (both pre-sized by the
/// caller; `base` is this client's slot).
void RunClient(service::TossService& svc,
               const std::vector<service::QueryRequest>& reqs,
               std::vector<double>& lat_ms, std::vector<double>& wait_ms,
               size_t base) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    Timer t;
    service::QueryResponse resp = svc.Run(reqs[i]);
    bench::CheckOk(resp.status, "service Run");
    lat_ms[base + i] = t.ElapsedMillis();
    wait_ms[base + i] = resp.queue_wait_ms;
  }
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kPapers = smoke ? 150 : 800;
  const size_t kRounds = smoke ? 2 : 8;
  const size_t kClients = 4;

  data::BibConfig cfg;
  cfg.seed = 19;
  cfg.num_people = smoke ? 30 : 120;
  cfg.num_papers = kPapers;
  data::BibWorld world = data::GenerateWorld(cfg);

  store::Database db;
  bench::CheckOk(
      data::LoadIntoCollection(&db, "dblp",
                               data::EmitDblp(world, 0, kPapers, cfg)),
      "load dblp");
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  core::Seo seo = bench::BuildSeo(
      {bench::CollectionOntology(db, "dblp", data::DblpContentTags())},
      "levenshtein", 3.0);

  service::ServiceOptions options;
  options.max_inflight = kClients;
  service::TossService svc(&db, &seo, &types, options);

  const std::vector<service::QueryRequest> reqs = MakeWorkload(world, kRounds);

  // 1 client, sequential.
  std::vector<double> lat1(reqs.size()), wait1(reqs.size());
  Timer t1;
  RunClient(svc, reqs, lat1, wait1, 0);
  double wall1_ms = t1.ElapsedMillis();

  // kClients concurrent clients, each running the full workload.
  std::vector<double> latn(kClients * reqs.size());
  std::vector<double> waitn(kClients * reqs.size());
  Timer tn;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RunClient(svc, reqs, latn, waitn, c * reqs.size());
    });
  }
  for (auto& th : clients) th.join();
  double walln_ms = tn.ElapsedMillis();

  double mean_wait = 0;
  for (double w : waitn) mean_wait += w;
  mean_wait /= static_cast<double>(waitn.size());

  // Deterministic shed: a single-slot, zero-queue service occupied by a
  // slow join sheds everything else with ResourceExhausted.
  service::ServiceOptions tiny;
  tiny.max_inflight = 1;
  tiny.max_queue = 0;
  service::TossService tiny_svc(&db, &seo, &types, tiny);
  std::atomic<size_t> shed{0};
  {
    std::thread holder([&] {
      service::QueryRequest req = reqs.front();
      for (size_t i = 0; i < 50 && shed.load() == 0; ++i) {
        bench::CheckOk(tiny_svc.Run(req).status, "holder Run");
      }
    });
    std::thread prober([&] {
      for (size_t i = 0; i < 2000 && shed.load() == 0; ++i) {
        if (tiny_svc.Run(reqs.front()).status.IsResourceExhausted()) {
          shed.fetch_add(1);
        }
      }
    });
    holder.join();
    prober.join();
  }

  // Deterministic deadline: a request whose budget is already spent fails
  // with DeadlineExceeded before (or during) admission.
  CancelToken expired = CancelToken::AfterMillis(0);
  service::QueryRequest late = reqs.front();
  late.cancel = &expired;
  size_t deadline_hits =
      svc.Run(late).status.IsDeadlineExceeded() ? size_t{1} : size_t{0};

  const double qps1 =
      wall1_ms > 0 ? 1000.0 * static_cast<double>(reqs.size()) / wall1_ms : 0;
  const double qpsn =
      walln_ms > 0 ? 1000.0 * static_cast<double>(latn.size()) / walln_ms : 0;

  std::printf("Service throughput (%zu-query selection workload, "
              "max_inflight=%zu)\n",
              reqs.size(), options.max_inflight);
  std::printf("%10s %12s %12s %12s\n", "clients", "median-ms", "qps",
              "mean-wait");
  std::printf("%10d %12.3f %12.1f %12.3f\n", 1, bench::Median(lat1), qps1,
              0.0);
  std::printf("%10zu %12.3f %12.1f %12.3f\n", kClients, bench::Median(latn),
              qpsn, mean_wait);
  std::printf("\nshed responses (ResourceExhausted): %zu\n", shed.load());
  std::printf("expired-deadline responses (DeadlineExceeded): %zu\n",
              deadline_hits);

  bench::RecordBenchMs("service_throughput/single_query_ms",
                       bench::Median(lat1));
  bench::RecordBenchMs("service_throughput/multi_query_ms",
                       bench::Median(latn));
  bench::RecordBenchMs("service_throughput/qps_1client", qps1);
  bench::RecordBenchMs("service_throughput/qps_multi", qpsn);
  bench::RecordBenchMs("service_throughput/queue_wait_mean_ms", mean_wait);
  std::printf(
      "\nExpected shape: multi-client qps approaches 1-client qps on one\n"
      "hardware thread (time-sliced) and exceeds it on real cores; per-\n"
      "query latency rises with queue wait, which admission control bounds.\n");
  return 0;
}
