// Micro-benchmark: pattern-tree embedding enumeration over data trees of
// growing size, for pc-only, ad-heavy, and condition-filtered patterns.
// Each pattern runs both through the tag index (the default production
// path) and with the index disabled (the naive full-scan enumeration) to
// quantify the pruning win. Medians land in the machine-readable bench
// report (bench::RecordBenchMs).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "tax/condition_parser.h"
#include "tax/embedding.h"
#include "tax/tax_semantics.h"

namespace {

using toss::Random;
using toss::tax::DataTree;
using toss::tax::EdgeKind;
using toss::tax::PatternTree;

/// A DBLP-shaped tree with `papers` inproceedings under one root.
DataTree MakeTree(size_t papers) {
  Random rng(11);
  DataTree t;
  auto root = t.CreateRoot("dblp");
  for (size_t i = 0; i < papers; ++i) {
    auto paper = t.AppendChild(root, "inproceedings");
    size_t n_authors = 1 + rng.Uniform(3);
    for (size_t a = 0; a < n_authors; ++a) {
      t.AppendChild(paper, "author", rng.AlphaString(12));
    }
    t.AppendChild(paper, "title", rng.AlphaString(30));
    t.AppendChild(paper, "year",
                  std::to_string(1995 + rng.Uniform(9)));
  }
  t.BuildTagIndex();
  return t;
}

PatternTree PcPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  int paper = pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(paper, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"dblp\" & $2.tag = \"inproceedings\" & "
                      "$3.tag = \"author\"")
                      .value());
  return pt;
}

PatternTree AdPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kAd);
  pt.SetCondition(
      toss::tax::ParseCondition("$1.tag = \"dblp\" & $2.tag = \"author\"")
          .value());
  return pt;
}

PatternTree FilteredPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(root, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
                      "$3.tag = \"year\" & $3.content = \"1999\"")
                      .value());
  return pt;
}

void RunPattern(benchmark::State& state, const PatternTree& pattern,
                bool use_tag_index) {
  DataTree tree = MakeTree(static_cast<size_t>(state.range(0)));
  toss::tax::TaxSemantics sem;
  toss::tax::EmbeddingOptions options;
  options.use_tag_index = use_tag_index;
  for (auto _ : state) {
    auto r = toss::tax::FindEmbeddings(pattern, tree, sem, options);
    benchmark::DoNotOptimize(r.ok());
  }
}

void BM_EmbeddingPc(benchmark::State& state) {
  RunPattern(state, PcPattern(), true);
}
void BM_EmbeddingPcNaive(benchmark::State& state) {
  RunPattern(state, PcPattern(), false);
}
void BM_EmbeddingAd(benchmark::State& state) {
  RunPattern(state, AdPattern(), true);
}
void BM_EmbeddingAdNaive(benchmark::State& state) {
  RunPattern(state, AdPattern(), false);
}
void BM_EmbeddingFiltered(benchmark::State& state) {
  RunPattern(state, FilteredPattern(), true);
}
void BM_EmbeddingFilteredNaive(benchmark::State& state) {
  RunPattern(state, FilteredPattern(), false);
}

#define EMBEDDING_BENCH(fn)                                  \
  BENCHMARK(fn)->Arg(10)->Arg(100)->Arg(1000)                \
      ->Unit(benchmark::kMillisecond)->Repetitions(3)        \
      ->ReportAggregatesOnly(true)

EMBEDDING_BENCH(BM_EmbeddingPc);
EMBEDDING_BENCH(BM_EmbeddingPcNaive);
EMBEDDING_BENCH(BM_EmbeddingAd);
EMBEDDING_BENCH(BM_EmbeddingAdNaive);
EMBEDDING_BENCH(BM_EmbeddingFiltered);
EMBEDDING_BENCH(BM_EmbeddingFilteredNaive);

#undef EMBEDDING_BENCH

/// Console reporting plus RecordBenchMs on every *_median aggregate.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::string name = run.benchmark_name();
      const std::string suffix = "_median";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
        toss::bench::RecordBenchMs(
            "micro_embedding/" +
                name.substr(0, name.size() - suffix.size()),
            run.GetAdjustedRealTime());
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
