// Micro-benchmark: pattern-tree embedding enumeration over data trees of
// growing size, for pc-only, ad-heavy, and condition-filtered patterns.
// Each pattern runs both through the tag index (the default production
// path) and with the index disabled (the naive full-scan enumeration) to
// quantify the pruning win. Timing goes through bench::MeasureAdaptiveMs,
// so sub-50ms points repeat until their median stabilises; medians land in
// the machine-readable bench report.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "tax/condition_parser.h"
#include "tax/embedding.h"
#include "tax/tax_semantics.h"

namespace {

using toss::Random;
using toss::tax::DataTree;
using toss::tax::EdgeKind;
using toss::tax::PatternTree;

/// A DBLP-shaped tree with `papers` inproceedings under one root.
DataTree MakeTree(size_t papers) {
  Random rng(11);
  DataTree t;
  auto root = t.CreateRoot("dblp");
  for (size_t i = 0; i < papers; ++i) {
    auto paper = t.AppendChild(root, "inproceedings");
    size_t n_authors = 1 + rng.Uniform(3);
    for (size_t a = 0; a < n_authors; ++a) {
      t.AppendChild(paper, "author", rng.AlphaString(12));
    }
    t.AppendChild(paper, "title", rng.AlphaString(30));
    t.AppendChild(paper, "year",
                  std::to_string(1995 + rng.Uniform(9)));
  }
  t.BuildTagIndex();
  return t;
}

PatternTree PcPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  int paper = pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(paper, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"dblp\" & $2.tag = \"inproceedings\" & "
                      "$3.tag = \"author\"")
                      .value());
  return pt;
}

PatternTree AdPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kAd);
  pt.SetCondition(
      toss::tax::ParseCondition("$1.tag = \"dblp\" & $2.tag = \"author\"")
          .value());
  return pt;
}

PatternTree FilteredPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(root, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
                      "$3.tag = \"year\" & $3.content = \"1999\"")
                      .value());
  return pt;
}

struct Variant {
  const char* name;  ///< bench key component, kept from the old GB names
  PatternTree (*make)();
  bool use_tag_index;
};

}  // namespace

int main() {
  const bool smoke = toss::bench::SmokeMode();
  const std::vector<size_t> kSizes =
      smoke ? std::vector<size_t>{10} : std::vector<size_t>{10, 100, 1000};
  const Variant kVariants[] = {
      {"BM_EmbeddingPc", PcPattern, true},
      {"BM_EmbeddingPcNaive", PcPattern, false},
      {"BM_EmbeddingAd", AdPattern, true},
      {"BM_EmbeddingAdNaive", AdPattern, false},
      {"BM_EmbeddingFiltered", FilteredPattern, true},
      {"BM_EmbeddingFilteredNaive", FilteredPattern, false},
  };

  std::printf("Embedding enumeration micro-bench (median ms)\n");
  std::printf("%-28s", "variant");
  for (size_t size : kSizes) std::printf(" %10zu", size);
  std::printf("\n");

  toss::tax::TaxSemantics sem;
  for (const Variant& v : kVariants) {
    PatternTree pattern = v.make();
    toss::tax::EmbeddingOptions options;
    options.use_tag_index = v.use_tag_index;
    std::printf("%-28s", v.name);
    for (size_t size : kSizes) {
      DataTree tree = MakeTree(size);
      double ms = toss::bench::MeasureAdaptiveMs(
          std::string("micro_embedding/") + v.name + "/" +
              std::to_string(size),
          [&] {
            auto r = toss::tax::FindEmbeddings(pattern, tree, sem, options);
            toss::bench::CheckOk(r.status(), "FindEmbeddings");
          });
      std::printf(" %10.3f", ms);
    }
    std::printf("\n");
  }
  return 0;
}
