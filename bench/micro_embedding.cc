// Micro-benchmark: pattern-tree embedding enumeration over data trees of
// growing size, for pc-only, ad-heavy, and condition-filtered patterns.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "tax/condition_parser.h"
#include "tax/embedding.h"
#include "tax/tax_semantics.h"

namespace {

using toss::Random;
using toss::tax::DataTree;
using toss::tax::EdgeKind;
using toss::tax::PatternTree;

/// A DBLP-shaped tree with `papers` inproceedings under one root.
DataTree MakeTree(size_t papers) {
  Random rng(11);
  DataTree t;
  auto root = t.CreateRoot("dblp");
  for (size_t i = 0; i < papers; ++i) {
    auto paper = t.AppendChild(root, "inproceedings");
    size_t n_authors = 1 + rng.Uniform(3);
    for (size_t a = 0; a < n_authors; ++a) {
      t.AppendChild(paper, "author", rng.AlphaString(12));
    }
    t.AppendChild(paper, "title", rng.AlphaString(30));
    t.AppendChild(paper, "year",
                  std::to_string(1995 + rng.Uniform(9)));
  }
  return t;
}

PatternTree PcPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  int paper = pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(paper, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"dblp\" & $2.tag = \"inproceedings\" & "
                      "$3.tag = \"author\"")
                      .value());
  return pt;
}

PatternTree AdPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kAd);
  pt.SetCondition(
      toss::tax::ParseCondition("$1.tag = \"dblp\" & $2.tag = \"author\"")
          .value());
  return pt;
}

PatternTree FilteredPattern() {
  PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, EdgeKind::kPc);
  pt.AddChild(root, EdgeKind::kPc);
  pt.SetCondition(toss::tax::ParseCondition(
                      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
                      "$3.tag = \"year\" & $3.content = \"1999\"")
                      .value());
  return pt;
}

void RunPattern(benchmark::State& state, const PatternTree& pattern) {
  DataTree tree = MakeTree(static_cast<size_t>(state.range(0)));
  toss::tax::TaxSemantics sem;
  for (auto _ : state) {
    auto r = toss::tax::FindEmbeddings(pattern, tree, sem);
    benchmark::DoNotOptimize(r.ok());
  }
}

void BM_EmbeddingPc(benchmark::State& state) {
  RunPattern(state, PcPattern());
}
void BM_EmbeddingAd(benchmark::State& state) {
  RunPattern(state, AdPattern());
}
void BM_EmbeddingFiltered(benchmark::State& state) {
  RunPattern(state, FilteredPattern());
}

BENCHMARK(BM_EmbeddingPc)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_EmbeddingAd)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_EmbeddingFiltered)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
