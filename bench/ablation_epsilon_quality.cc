// Ablation: the precision/recall/quality tradeoff as a continuous function
// of epsilon -- the fuller curve behind the paper's two operating points
// (eps = 2 and eps = 3 in Fig. 15). The whole curve shares one pairwise
// distance scan per dataset (Fig15Fixture::EvaluateSweep / SeoSweeper)
// instead of rebuilding the SEO from scratch at every threshold.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  const bool smoke = toss::bench::SmokeMode();
  toss::bench::Fig15Fixture fixture(smoke ? 2 : 3, smoke ? 30 : 100,
                                    smoke ? 2 : 4, 2004);

  std::printf("Quality vs epsilon on the Fig. 15 workload "
              "(%zu queries, guarded Levenshtein)\n",
              fixture.query_count());
  std::printf("%8s %8s %8s %8s\n", "epsilon", "prec", "recall", "quality");
  const std::vector<double> epsilons = {0.0, 0.5, 1.0, 1.5, 2.0,
                                        2.5, 3.0, 3.5, 4.0, 5.0};
  auto sweep = fixture.EvaluateSweep("guarded-levenshtein", epsilons);
  for (size_t i = 0; i < epsilons.size(); ++i) {
    double eps = epsilons[i];
    const auto& metrics = sweep[i];
    if (!metrics.ok()) {
      std::printf("%8.1f -- %s\n", eps,
                  metrics.status().ToString().c_str());
      continue;
    }
    auto avg = toss::bench::Average(*metrics);
    std::printf("%8.1f %8.3f %8.3f %8.3f\n", eps, avg.precision,
                avg.recall, avg.quality);
  }
  std::printf(
      "\nExpected: recall rises with epsilon while precision eventually\n"
      "falls (confusable-author merges); quality peaks around eps = 3,\n"
      "matching the paper's choice of operating point.\n");
  return 0;
}
