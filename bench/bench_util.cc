#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "service/toss_service.h"

namespace toss::bench {

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

bool SmokeMode() {
  const char* v = std::getenv("TOSS_BENCH_SMOKE");
  return v != nullptr && std::string_view(v) != "0";
}

namespace {

/// Every bench links this TU, so this static turns the production telemetry
/// on for every bench run: the background time-series ticker, and -- when
/// TOSS_TELEMETRY_DUMP names a file -- a full TelemetryDump written at exit.
/// The dump honors smoke mode (CI runs smoke benches and uploads the dump
/// as a build artifact).
struct BenchTelemetry {
  BenchTelemetry() {
    obs::Telemetry::Global().StartTicker();
    if (std::getenv("TOSS_TELEMETRY_DUMP") != nullptr) {
      std::atexit([] {
        obs::Telemetry& t = obs::Telemetry::Global();
        t.StopTicker();
        const char* path = std::getenv("TOSS_TELEMETRY_DUMP");
        if (path != nullptr && !t.WriteDump(path)) {
          std::fprintf(stderr, "warning: cannot write telemetry dump %s\n",
                       path);
        }
      });
    }
  }
};
const BenchTelemetry g_bench_telemetry;

}  // namespace

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t mid = xs.size() / 2;
  return xs.size() % 2 ? xs[mid] : (xs[mid - 1] + xs[mid]) / 2;
}

namespace {

std::string BenchJsonPath() {
  if (const char* p = std::getenv("TOSS_BENCH_JSON")) return p;
#ifdef TOSS_REPO_ROOT
  return std::string(TOSS_REPO_ROOT) + "/BENCH_PR10.json";
#else
  return "BENCH_PR10.json";
#endif
}

// Reads back the flat {"name": ms} object this module writes. Tolerant of
// whitespace; anything unparseable is dropped (the file is ours alone).
std::map<std::string, double> LoadBenchJson(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    std::string key = text.substr(pos + 1, end - pos - 1);
    size_t colon = text.find(':', end);
    if (colon == std::string::npos) break;
    char* parsed_end = nullptr;
    double value = std::strtod(text.c_str() + colon + 1, &parsed_end);
    if (parsed_end != text.c_str() + colon + 1) out[key] = value;
    pos = colon + 1;
  }
  return out;
}

/// Read-merge-write of the flat bench report.
void MergeIntoBenchJson(const std::map<std::string, double>& updates) {
  const std::string path = BenchJsonPath();
  auto entries = LoadBenchJson(path);
  for (const auto& [key, value] : updates) entries[key] = value;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write bench report %s\n",
                 path.c_str());
    return;
  }
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) out << ",\n";
    first = false;
    char num[64];
    std::snprintf(num, sizeof(num), "%.3f", value);
    out << "  \"" << key << "\": " << num;
  }
  out << "\n}\n";
}

/// atexit hook: embeds the process's final metrics snapshot in the bench
/// report as flat "metrics/<name>" keys (the report is a flat name->number
/// object, so histograms flatten to count/mean_ms/p99_ms sub-keys). Running
/// a bench therefore always leaves the instrument values it exercised next
/// to the timings they explain.
void FlushMetricsSnapshot() {
  obs::MetricsRegistry::Snapshot snap = obs::Metrics().GetSnapshot();
  std::map<std::string, double> flat;
  for (const auto& [name, v] : snap.counters) {
    flat["metrics/" + name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : snap.gauges) {
    flat["metrics/" + name] = static_cast<double>(v);
  }
  for (const auto& [name, h] : snap.histograms) {
    flat["metrics/" + name + "/count"] = static_cast<double>(h.count);
    flat["metrics/" + name + "/mean_ms"] = h.MeanMillis();
    flat["metrics/" + name + "/p99_ms"] = h.QuantileUpperBoundMillis(0.99);
  }
  if (!flat.empty()) MergeIntoBenchJson(flat);
}

}  // namespace

void RecordBenchMs(const std::string& name, double median_ms) {
  if (SmokeMode()) return;
  static const bool flush_registered = [] {
    std::atexit(FlushMetricsSnapshot);
    return true;
  }();
  (void)flush_registered;
  MergeIntoBenchJson({{name, median_ms}});
}

double MeasureAdaptiveMs(const std::string& name,
                         const std::function<void()>& body) {
  constexpr double kNoisyThresholdMs = 50.0;
  constexpr double kTargetTotalMs = 1000.0;
  constexpr size_t kMaxReps = 31;
  std::vector<double> samples;
  double total_ms = 0;
  while (true) {
    Timer timer;
    body();
    const double ms = timer.ElapsedMillis();
    samples.push_back(ms);
    total_ms += ms;
    if (SmokeMode()) break;
    if (samples.size() == 1 && ms >= kNoisyThresholdMs) break;
    if (total_ms >= kTargetTotalMs || samples.size() >= kMaxReps) break;
  }
  const double median = Median(samples);
  RecordBenchMs(name, median);
  RecordBenchMs("meta/reps/" + name, static_cast<double>(samples.size()));
  return median;
}

ontology::Ontology CollectionOntology(const store::Database& db,
                                      const std::string& collection,
                                      std::vector<std::string> content_tags) {
  auto coll = db.GetCollection(collection);
  CheckOk(coll.status(), "GetCollection");
  std::vector<const xml::XmlDocument*> docs;
  for (store::DocId id : (*coll)->AllDocs()) {
    docs.push_back(&(*coll)->document(id));
  }
  ontology::OntologyMakerOptions opts;
  opts.content_tags = std::move(content_tags);
  return CheckResult(
      ontology::MakeOntologyForDocuments(
          docs, lexicon::BuiltinBibliographicLexicon(), opts),
      "MakeOntologyForDocuments");
}

core::Seo BuildSeo(std::vector<ontology::Ontology> ontologies,
                   const std::string& measure, double epsilon) {
  core::SeoBuilder builder;
  for (auto& onto : ontologies) {
    builder.AddInstanceOntology(std::move(onto));
  }
  builder.SetMeasure(CheckResult(sim::MakeMeasure(measure), "MakeMeasure"));
  builder.SetEpsilon(epsilon);
  return CheckResult(builder.Build(), "SeoBuilder::Build");
}

struct Fig15Fixture::Impl {
  struct Dataset {
    std::string name;
    std::unique_ptr<store::Database> db;
    ontology::Ontology onto;
    std::vector<data::SelectionQuery> queries;
  };
  std::vector<Dataset> datasets;
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
};

Fig15Fixture::Fig15Fixture(size_t datasets, size_t papers_per_dataset,
                           size_t queries_per_dataset, uint64_t seed)
    : impl_(std::make_unique<Impl>()) {
  data::BibConfig cfg;
  cfg.seed = seed;
  cfg.num_papers = datasets * papers_per_dataset;
  // A small author pool gives each (person, venue) intent several papers,
  // keeping per-query recall away from the 0/1 extremes.
  cfg.num_people = 10 * datasets;
  data::BibWorld world = data::GenerateWorld(cfg);

  for (size_t d = 0; d < datasets; ++d) {
    size_t first = d * papers_per_dataset;
    Impl::Dataset ds;
    ds.name = "dblp" + std::to_string(d);
    ds.db = std::make_unique<store::Database>();
    CheckOk(data::LoadIntoCollection(
                ds.db.get(), ds.name,
                data::EmitDblp(world, first, papers_per_dataset, cfg)),
            "LoadIntoCollection");
    ds.onto = CollectionOntology(*ds.db, ds.name, data::DblpContentTags());
    ds.queries = CheckResult(
        data::MakeSelectionWorkload(world, first, papers_per_dataset,
                                    queries_per_dataset, seed + 31 * d),
        "MakeSelectionWorkload");
    impl_->datasets.push_back(std::move(ds));
  }
}

Fig15Fixture::~Fig15Fixture() = default;

size_t Fig15Fixture::query_count() const {
  size_t n = 0;
  for (const auto& ds : impl_->datasets) n += ds.queries.size();
  return n;
}

std::vector<std::string> Fig15Fixture::QueryNames() const {
  std::vector<std::string> out;
  for (const auto& ds : impl_->datasets) {
    for (const auto& q : ds.queries) {
      out.push_back(ds.name + "/" + q.name);
    }
  }
  return out;
}

Result<std::vector<eval::PrMetrics>> Fig15Fixture::Evaluate(
    const std::string& measure, double epsilon) const {
  std::vector<eval::PrMetrics> out;
  for (const auto& ds : impl_->datasets) {
    core::Seo seo;
    std::unique_ptr<service::TossService> svc;
    if (measure.empty()) {
      svc = std::make_unique<service::TossService>(ds.db.get(), nullptr,
                                                   nullptr);
    } else {
      core::SeoBuilder builder;
      builder.AddInstanceOntology(ds.onto);
      TOSS_ASSIGN_OR_RETURN(auto m, sim::MakeMeasure(measure));
      builder.SetMeasure(std::move(m));
      builder.SetEpsilon(epsilon);
      TOSS_ASSIGN_OR_RETURN(seo, builder.Build());
      svc = std::make_unique<service::TossService>(ds.db.get(), &seo,
                                                   &impl_->types);
    }
    for (const auto& q : ds.queries) {
      service::QueryResponse r =
          svc->Run(service::QueryRequest::Select(ds.name, q.pattern, q.sl));
      TOSS_RETURN_NOT_OK(r.status);
      out.push_back(
          eval::ComputePr(eval::ExtractRootProvenance(r.trees), q.correct));
    }
  }
  return out;
}

std::vector<Result<std::vector<eval::PrMetrics>>> Fig15Fixture::EvaluateSweep(
    const std::string& measure, const std::vector<double>& epsilons) const {
  std::vector<Result<std::vector<eval::PrMetrics>>> out;
  if (measure.empty()) {
    // TAX baseline: no SEO to share, each epsilon is an independent run.
    for (double e : epsilons) out.push_back(Evaluate(measure, e));
    return out;
  }
  double max_eps = 0;
  for (double e : epsilons) max_eps = std::max(max_eps, e);
  // One sweeper per dataset: fusion + the pairwise distance scan happen
  // here, once, at the sweep's max epsilon.
  std::vector<core::SeoSweeper> sweepers;
  for (const auto& ds : impl_->datasets) {
    core::SeoBuilder builder;
    builder.AddInstanceOntology(ds.onto);
    auto m = sim::MakeMeasure(measure);
    if (!m.ok()) {
      out.assign(epsilons.size(),
                 Result<std::vector<eval::PrMetrics>>(m.status()));
      return out;
    }
    builder.SetMeasure(std::move(m).value());
    auto sweeper = builder.BuildSweeper(max_eps);
    if (!sweeper.ok()) {
      out.assign(epsilons.size(),
                 Result<std::vector<eval::PrMetrics>>(sweeper.status()));
      return out;
    }
    sweepers.push_back(std::move(sweeper).value());
  }
  for (double eps : epsilons) {
    auto run = [&]() -> Result<std::vector<eval::PrMetrics>> {
      std::vector<eval::PrMetrics> res;
      for (size_t d = 0; d < impl_->datasets.size(); ++d) {
        const auto& ds = impl_->datasets[d];
        TOSS_ASSIGN_OR_RETURN(core::Seo seo, sweepers[d].BuildAt(eps));
        service::TossService svc(ds.db.get(), &seo, &impl_->types);
        for (const auto& q : ds.queries) {
          service::QueryResponse r = svc.Run(
              service::QueryRequest::Select(ds.name, q.pattern, q.sl));
          TOSS_RETURN_NOT_OK(r.status);
          res.push_back(eval::ComputePr(eval::ExtractRootProvenance(r.trees),
                                        q.correct));
        }
      }
      return res;
    };
    out.push_back(run());
  }
  return out;
}

eval::PrMetrics Average(const std::vector<eval::PrMetrics>& ms) {
  eval::PrMetrics avg;
  avg.precision = avg.recall = avg.quality = 0;
  if (ms.empty()) return avg;
  for (const auto& m : ms) {
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.quality += m.quality;
    avg.returned += m.returned;
    avg.correct += m.correct;
    avg.hits += m.hits;
  }
  double n = static_cast<double>(ms.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.quality /= n;
  return avg;
}

std::vector<QueryOutcome> RunFig15Workload(size_t datasets,
                                           size_t papers_per_dataset,
                                           size_t queries_per_dataset,
                                           uint64_t seed) {
  Fig15Fixture fixture(datasets, papers_per_dataset, queries_per_dataset,
                       seed);
  auto tax = CheckResult(fixture.Evaluate("", 0), "tax");
  auto e2 = CheckResult(fixture.Evaluate("guarded-levenshtein", 2.0), "e2");
  auto e3 = CheckResult(fixture.Evaluate("guarded-levenshtein", 3.0), "e3");
  auto names = fixture.QueryNames();
  std::vector<QueryOutcome> outcomes(tax.size());
  for (size_t i = 0; i < tax.size(); ++i) {
    outcomes[i].query = names[i];
    outcomes[i].tax = tax[i];
    outcomes[i].toss2 = e2[i];
    outcomes[i].toss3 = e3[i];
  }
  return outcomes;
}

}  // namespace toss::bench
