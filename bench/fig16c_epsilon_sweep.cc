// Reproduces Fig. 16(c): TOSS execution time of selection and join queries
// as a function of the similarity threshold epsilon used to generate the
// SEO.
//
// Paper's reported shape: both curves grow roughly linearly with epsilon --
// larger epsilon puts more terms in each SEO node, so query rewriting emits
// larger disjunctions and evaluation touches more candidates / produces
// larger results. (SEO construction itself is precomputed, as in the
// paper; we report it in a separate column for context.)
//
// The SEOs for the sweep are built through core::SeoSweeper: fusion and
// the pairwise distance scan run once at the largest epsilon and each
// threshold's SEO is derived from the shared matrix -- with identical
// results to independent builds, which this harness also times for the
// recorded sweep speedup (fig16c/sweep_speedup).

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/toss_service.h"

using namespace toss;

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<double> kEpsilons =
      smoke ? std::vector<double>{0, 2}
            : std::vector<double>{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5};
  const size_t kPapers = smoke ? 80 : 600;

  data::BibConfig cfg;
  cfg.seed = 18;
  cfg.num_people = smoke ? 25 : 120;
  cfg.num_papers = kPapers;
  data::BibWorld world = data::GenerateWorld(cfg);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  store::Database db;
  bench::CheckOk(
      data::LoadIntoCollection(&db, "dblp",
                               data::EmitDblp(world, 0, kPapers, cfg)),
      "load dblp");
  bench::CheckOk(
      data::LoadIntoCollection(
          &db, "sigmod", data::EmitSigmod(world, 0, kPapers / 4, cfg)),
      "load sigmod");

  ontology::Ontology donto =
      bench::CollectionOntology(db, "dblp", data::DblpContentTags());
  ontology::Ontology sonto =
      bench::CollectionOntology(db, "sigmod", data::SigmodContentTags());

  tax::PatternTree join_pattern = data::MakeTitleJoinPattern();

  auto make_builder = [&]() {
    core::SeoBuilder builder;
    builder.AddInstanceOntology(donto);
    builder.AddInstanceOntology(sonto);
    builder.AddConstraints(ontology::kPartOf,
                           ontology::Eq("booktitle", 0, "conference", 1));
    builder.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    return builder;
  };

  // Reference path: one full fusion + pairwise scan per epsilon.
  Timer independent_timer;
  for (double eps : kEpsilons) {
    auto builder = make_builder();
    builder.SetEpsilon(eps);
    auto seo = builder.Build();
    if (!seo.ok() && !seo.status().IsInconsistent()) {
      bench::CheckOk(seo.status(), "independent seo");
    }
  }
  double independent_ms = independent_timer.ElapsedMillis();

  // Sweep path: fuse + scan once at max epsilon, threshold per epsilon.
  Timer sweep_timer;
  auto sweeper =
      bench::CheckResult(make_builder().BuildSweeper(kEpsilons.back()),
                         "BuildSweeper");
  std::vector<Result<core::Seo>> seos;
  for (double eps : kEpsilons) seos.push_back(sweeper.BuildAt(eps));
  double sweep_ms = sweep_timer.ElapsedMillis();

  std::printf("Fig 16(c): TOSS query time vs epsilon (ms)\n");
  std::printf("%8s %12s %12s %10s\n", "epsilon", "select", "join",
              "seo-nodes");
  // One long-lived service; each epsilon swaps in its SEO (invalidating the
  // prepared-query cache), as a deployment sweeping thresholds would.
  service::TossService svc(&db, nullptr, &types);
  for (size_t i = 0; i < kEpsilons.size(); ++i) {
    double eps = kEpsilons[i];
    const Result<core::Seo>& seo = seos[i];
    if (!seo.ok() && seo.status().IsInconsistent()) {
      // Def. 9: some thresholds admit no similarity enhancement -- the
      // grouping would collapse an ordered pair into a cycle.
      std::printf("%8.1f  -- similarity inconsistent (Def. 9): %s\n", eps,
                  seo.status().message().c_str());
      continue;
    }
    bench::CheckOk(seo.status(), "seo");

    bench::CheckOk(svc.SwapSeo(&*seo), "SwapSeo");

    Timer select_timer;
    for (const auto& venue : world.venues) {
      tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
          venue.short_name, venue.category);
      bench::CheckOk(
          svc.Run(service::QueryRequest::Select("dblp", pattern, {1})).status,
          "select");
    }
    double select_ms = select_timer.ElapsedMillis();

    Timer join_timer;
    bench::CheckOk(svc.Run(service::QueryRequest::Join("dblp", "sigmod",
                                                       join_pattern, {2, 4}))
                       .status,
                   "join");
    double join_ms = join_timer.ElapsedMillis();

    std::printf("%8.1f %12.2f %12.2f %10zu\n", eps, select_ms, join_ms,
                seo->TotalNodeCount());
  }

  std::printf(
      "\nSEO construction, %zu epsilons: independent builds %.2f ms, "
      "shared-matrix sweep %.2f ms (%.2fx)\n",
      kEpsilons.size(), independent_ms, sweep_ms,
      sweep_ms > 0 ? independent_ms / sweep_ms : 0.0);
  bench::RecordBenchMs("fig16c/seo_build_independent_ms", independent_ms);
  bench::RecordBenchMs("fig16c/seo_build_sweep_ms", sweep_ms);
  if (sweep_ms > 0) {
    bench::RecordBenchMs("fig16c/sweep_speedup", independent_ms / sweep_ms);
  }
  bench::RecordBenchMs("meta/hw_threads",
                       std::thread::hardware_concurrency());
  std::printf(
      "\nExpected shape: selection and join times grow roughly linearly\n"
      "with epsilon (larger SEO nodes -> larger rewritten disjunctions and\n"
      "larger results), matching the paper.\n");
  return 0;
}
