// Reproduces Fig. 16(c): TOSS execution time of selection and join queries
// as a function of the similarity threshold epsilon used to generate the
// SEO.
//
// Paper's reported shape: both curves grow roughly linearly with epsilon --
// larger epsilon puts more terms in each SEO node, so query rewriting emits
// larger disjunctions and evaluation touches more candidates / produces
// larger results. (SEO construction itself is precomputed, as in the
// paper; we report it in a separate column for context.)

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

using namespace toss;

int main() {
  const bool smoke = bench::SmokeMode();
  const std::vector<double> kEpsilons =
      smoke ? std::vector<double>{0, 2}
            : std::vector<double>{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5};
  const size_t kPapers = smoke ? 80 : 600;

  data::BibConfig cfg;
  cfg.seed = 18;
  cfg.num_people = smoke ? 25 : 120;
  cfg.num_papers = kPapers;
  data::BibWorld world = data::GenerateWorld(cfg);
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  store::Database db;
  bench::CheckOk(
      data::LoadIntoCollection(&db, "dblp",
                               data::EmitDblp(world, 0, kPapers, cfg)),
      "load dblp");
  bench::CheckOk(
      data::LoadIntoCollection(
          &db, "sigmod", data::EmitSigmod(world, 0, kPapers / 4, cfg)),
      "load sigmod");

  ontology::Ontology donto =
      bench::CollectionOntology(db, "dblp", data::DblpContentTags());
  ontology::Ontology sonto =
      bench::CollectionOntology(db, "sigmod", data::SigmodContentTags());

  tax::PatternTree join_pattern = data::MakeTitleJoinPattern();

  std::printf("Fig 16(c): TOSS query time vs epsilon (ms)\n");
  std::printf("%8s %12s %12s %14s %10s\n", "epsilon", "select", "join",
              "seo-build", "seo-nodes");
  for (double eps : kEpsilons) {
    Timer build_timer;
    core::SeoBuilder builder;
    builder.AddInstanceOntology(donto);
    builder.AddInstanceOntology(sonto);
    builder.AddConstraints(ontology::kPartOf,
                           ontology::Eq("booktitle", 0, "conference", 1));
    builder.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    builder.SetEpsilon(eps);
    auto seo = builder.Build();
    if (!seo.ok() && seo.status().IsInconsistent()) {
      // Def. 9: some thresholds admit no similarity enhancement -- the
      // grouping would collapse an ordered pair into a cycle.
      std::printf("%8.1f  -- similarity inconsistent (Def. 9): %s\n", eps,
                  seo.status().message().c_str());
      continue;
    }
    bench::CheckOk(seo.status(), "seo");
    double build_ms = build_timer.ElapsedMillis();

    core::QueryExecutor exec(&db, &*seo, &types);

    Timer select_timer;
    for (const auto& venue : world.venues) {
      tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
          venue.short_name, venue.category);
      bench::CheckOk(exec.Select("dblp", pattern, {1}, nullptr).status(),
                     "select");
    }
    double select_ms = select_timer.ElapsedMillis();

    Timer join_timer;
    bench::CheckOk(
        exec.Join("dblp", "sigmod", join_pattern, {2, 4}, nullptr).status(),
        "join");
    double join_ms = join_timer.ElapsedMillis();

    std::printf("%8.1f %12.2f %12.2f %14.2f %10zu\n", eps, select_ms,
                join_ms, build_ms, seo->TotalNodeCount());
  }
  std::printf(
      "\nExpected shape: selection and join times grow roughly linearly\n"
      "with epsilon (larger SEO nodes -> larger rewritten disjunctions and\n"
      "larger results), matching the paper.\n");
  return 0;
}
