// Closed-loop HTTP load against the network edge (DESIGN.md §16): an
// in-process HttpServer + TossService serving the /v1 wire protocol, driven
// by hundreds of concurrent keep-alive connections from a multi-threaded
// client. This measures the whole production path -- socket, parser,
// worker handoff, wire decode, service admission, query, wire encode --
// not just TossService::Run.
//
// Recorded into the bench report:
//   net_throughput/p50_ms       per-request latency median, steady load
//   net_throughput/p99_ms       per-request latency p99, steady load
//   net_throughput/qps          completed requests/s, steady load
//   net_throughput/shed_rate    fraction of 429s under deliberate overload
// plus meta/net_throughput/conns (how many keep-alive connections the
// steady phase held open) and, via the atexit metrics merge, the net.* and
// service.* instruments themselves.
//
// Two phases, two server configurations:
//   * steady: worker pool == service max_inflight, so every admitted
//     request runs without shedding; 128 connections (16 in smoke),
//     batch-pipelined by 8 client threads.
//   * overload: a wide worker pool against max_queue=0 admission, so
//     concurrent requests beyond max_inflight shed with 429 -- proving
//     overload degrades into fast explicit rejections end to end.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "net/http_server.h"
#include "net/toss_handler.h"
#include "service/toss_service.h"
#include "service/wire.h"

using namespace toss;

namespace {

/// Blocking keep-alive client connection speaking just enough HTTP/1.1 to
/// drive the server: send POST, read Content-Length-framed response.
class ClientConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  ~ClientConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  ClientConn() = default;
  ClientConn(ClientConn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ClientConn& operator=(ClientConn&&) = delete;

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one response; returns its HTTP status, or -1 on stream error.
  int ReadResponse() {
    // Head.
    while (true) {
      const size_t head_end = buf_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const size_t clen_pos = buf_.find("Content-Length: ");
        if (clen_pos == std::string::npos || clen_pos > head_end) return -1;
        const size_t body_len = static_cast<size_t>(
            std::atol(buf_.c_str() + clen_pos + strlen("Content-Length: ")));
        const size_t total = head_end + 4 + body_len;
        while (buf_.size() < total) {
          if (!Fill()) return -1;
        }
        const int status = std::atoi(buf_.c_str() + strlen("HTTP/1.1 "));
        buf_.erase(0, total);
        return status;
      }
      if (!Fill()) return -1;
    }
  }

 private:
  bool Fill() {
    char chunk[8192];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

std::string QueryBody(const data::BibWorld& world, size_t i) {
  const auto& venue = world.venues[i % world.venues.size()];
  service::QueryRequest req = service::QueryRequest::Select(
      "dblp",
      data::MakeScalabilitySelectionPattern(venue.short_name, venue.category),
      {1});
  return service::wire::RequestJson(req);
}

std::string PostRequest(const std::string& body) {
  return "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Type: "
         "application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = std::min(
      xs.size() - 1, static_cast<size_t>(p * static_cast<double>(xs.size())));
  return xs[idx];
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kConns = smoke ? 16 : 128;
  const size_t kThreads = 8;
  const size_t kRounds = smoke ? 3 : 25;
  const size_t kPapers = smoke ? 100 : 400;

  data::BibConfig cfg;
  cfg.seed = 19;
  cfg.num_people = smoke ? 30 : 100;
  cfg.num_papers = kPapers;
  data::BibWorld world = data::GenerateWorld(cfg);

  store::Database db;
  bench::CheckOk(
      data::LoadIntoCollection(&db, "dblp",
                               data::EmitDblp(world, 0, kPapers, cfg)),
      "load dblp");
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  core::Seo seo = bench::BuildSeo(
      {bench::CollectionOntology(db, "dblp", data::DblpContentTags())},
      "levenshtein", 3.0);

  // Pre-rendered request bytes, one flavor per venue.
  std::vector<std::string> requests;
  for (size_t i = 0; i < world.venues.size(); ++i) {
    requests.push_back(PostRequest(QueryBody(world, i)));
  }

  // --- Steady phase: no shedding, measure latency and throughput. --------
  service::ServiceOptions svc_opts;
  svc_opts.max_inflight = 4;
  svc_opts.max_queue = 1024;  // queue, don't shed: this phase measures speed
  service::TossService svc(&db, &seo, &types, svc_opts);

  net::ServerOptions srv_opts;
  srv_opts.max_connections = kConns + 16;
  srv_opts.worker_threads = 8;
  net::HttpServer server(net::MakeTossHandler(&svc), srv_opts);
  bench::CheckOk(server.Start(), "server start");

  const size_t per_thread = kConns / kThreads;
  std::vector<std::vector<double>> lat_ms(kThreads);
  std::atomic<size_t> errors{0};
  std::atomic<size_t> completed{0};

  Timer wall;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<ClientConn> conns(per_thread);
      for (auto& c : conns) {
        if (!c.Connect(server.port())) {
          errors.fetch_add(1);
          return;
        }
      }
      for (size_t r = 0; r < kRounds; ++r) {
        // Batch: one request in flight on every connection at once, so the
        // server holds kConns busy keep-alive sockets.
        Timer batch;
        for (size_t c = 0; c < conns.size(); ++c) {
          const auto& bytes =
              requests[(t * per_thread + c + r) % requests.size()];
          if (!conns[c].Send(bytes)) errors.fetch_add(1);
        }
        for (size_t c = 0; c < conns.size(); ++c) {
          const int status = conns[c].ReadResponse();
          if (status != 200) {
            errors.fetch_add(1);
          } else {
            completed.fetch_add(1);
          }
        }
        // Batch wall time amortized per request: with every socket busy
        // the per-request latency IS the batch drain rate.
        lat_ms[t].push_back(batch.ElapsedMillis() /
                            static_cast<double>(conns.size()));
      }
    });
  }
  for (auto& th : clients) th.join();
  const double wall_ms = wall.ElapsedMillis();
  server.Stop();

  std::vector<double> all_lat;
  for (auto& v : lat_ms) all_lat.insert(all_lat.end(), v.begin(), v.end());
  const double p50 = Percentile(all_lat, 0.50);
  const double p99 = Percentile(all_lat, 0.99);
  const double qps =
      1000.0 * static_cast<double>(completed.load()) / wall_ms;

  if (errors.load() != 0) {
    std::fprintf(stderr, "net_throughput: %zu request errors\n",
                 errors.load());
    return 1;
  }

  // --- Overload phase: zero queue, wide worker pool -> explicit 429s. ----
  service::ServiceOptions tiny_opts;
  tiny_opts.max_inflight = 1;
  tiny_opts.max_queue = 0;
  service::TossService tiny(&db, &seo, &types, tiny_opts);
  net::ServerOptions wide_opts;
  wide_opts.max_connections = 64;
  wide_opts.worker_threads = 16;
  net::HttpServer overload(net::MakeTossHandler(&tiny), wide_opts);
  bench::CheckOk(overload.Start(), "overload server start");

  const size_t kOverloadConns = smoke ? 8 : 32;
  const size_t kOverloadRounds = smoke ? 2 : 8;
  std::atomic<size_t> ok_count{0}, shed_count{0}, other{0};
  {
    std::vector<std::thread> storm;
    for (size_t t = 0; t < 4; ++t) {
      storm.emplace_back([&, t] {
        std::vector<ClientConn> conns(kOverloadConns / 4);
        for (auto& c : conns) {
          if (!c.Connect(overload.port())) {
            other.fetch_add(1);
            return;
          }
        }
        for (size_t r = 0; r < kOverloadRounds; ++r) {
          for (size_t c = 0; c < conns.size(); ++c) {
            conns[c].Send(requests[(t + c + r) % requests.size()]);
          }
          for (auto& conn : conns) {
            switch (conn.ReadResponse()) {
              case 200: ok_count.fetch_add(1); break;
              case 429: shed_count.fetch_add(1); break;
              default: other.fetch_add(1); break;
            }
          }
        }
      });
    }
    for (auto& th : storm) th.join();
  }
  overload.Stop();

  const double total_overload =
      static_cast<double>(ok_count.load() + shed_count.load());
  const double shed_rate =
      total_overload > 0
          ? static_cast<double>(shed_count.load()) / total_overload
          : 0.0;

  std::printf(
      "net_throughput: %zu conns x %zu rounds  p50 %.3f ms  p99 %.3f ms  "
      "%.0f qps\n",
      kConns, kRounds, p50, p99, qps);
  std::printf(
      "overload: %zu ok, %zu shed (429), %zu other -> shed rate %.2f\n",
      ok_count.load(), shed_count.load(), other.load(), shed_rate);
  if (other.load() != 0) {
    std::fprintf(stderr, "net_throughput: unexpected overload responses\n");
    return 1;
  }
  if (shed_count.load() == 0 && !smoke) {
    std::fprintf(stderr, "net_throughput: overload phase never shed\n");
    return 1;
  }

  bench::RecordBenchMs("net_throughput/p50_ms", p50);
  bench::RecordBenchMs("net_throughput/p99_ms", p99);
  bench::RecordBenchMs("net_throughput/qps", qps);
  bench::RecordBenchMs("net_throughput/shed_rate", shed_rate);
  bench::RecordBenchMs("meta/net_throughput/conns",
                       static_cast<double>(kConns));
  return 0;
}
