// Durable live ingest under the write-ahead log (DESIGN.md "Write path &
// WAL"): commit latency and group-commit amortization for a mixed
// read/write workload.
//
// Three phases over one durable database:
//   solo    -- one writer, sequential DurableInsert: every commit pays a
//              full fsync; the per-mutation latency floor.
//   group   -- 4 concurrent writers, direct DurableInsert: followers ride
//              the leader's fsync, so batches form and the per-mutation
//              cost drops below the solo floor.
//   service -- 4 writers + 2 query clients through TossService::Run: the
//              production path, where mutations serialize on the exclusive
//              executor lock and queries interleave between them.
//
// What this records into the bench report:
//   wal_ingest/solo_commit_p50_ms      solo phase median commit latency
//   wal_ingest/solo_commit_p99_ms
//   wal_ingest/group_commit_p50_ms     group phase, per-mutation
//   wal_ingest/group_commit_p99_ms
//   wal_ingest/group_mean_batch        records per fsync in the group phase
//   wal_ingest/group_ingest_per_s      group phase mutations/second
//   wal_ingest/service_mutation_p50_ms service phase, per-mutation
//   wal_ingest/service_query_p50_ms    query latency while ingest runs
// plus, via the atexit metrics merge, the store.wal.* instruments
// (commit_latency_ns / batch_records histograms, fsyncs, rotations, ...).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "service/toss_service.h"
#include "store/env.h"
#include "xml/xml_writer.h"

using namespace toss;

namespace {

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

/// Inserts docs [first, last) of `docs` under unique keys, one timed
/// DurableInsert each, appending latencies to `lat_ms[base...]`.
void WriteSlice(store::Database& db, const std::vector<data::NamedDoc>& docs,
                size_t first, size_t last, const char* key_prefix,
                std::vector<double>& lat_ms, size_t base) {
  for (size_t i = first; i < last; ++i) {
    const std::string key = std::string(key_prefix) + std::to_string(i);
    Timer t;
    bench::CheckOk(db.DurableInsert("dblp", key, xml::Write(docs[i].second)),
                   "DurableInsert");
    lat_ms[base + (i - first)] = t.ElapsedMillis();
  }
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const bool smoke = bench::SmokeMode();
  const size_t kPapers = smoke ? 120 : 1200;   // docs to ingest per phase
  const size_t kWriters = 4;
  const size_t kReaders = 2;

  data::BibConfig cfg;
  cfg.seed = 23;
  cfg.num_people = smoke ? 30 : 120;
  cfg.num_papers = kPapers;
  data::BibWorld world = data::GenerateWorld(cfg);
  const std::vector<data::NamedDoc> docs =
      data::EmitDblp(world, 0, kPapers, cfg);

  const std::string dir =
      (fs::temp_directory_path() / "toss_bench_wal_ingest").string();
  fs::remove_all(dir);
  auto db = store::Database::OpenDurable(dir, store::Env::Default());
  bench::CheckOk(db.status(), "OpenDurable");

  // --- solo: sequential commits, one fsync each --------------------------
  std::vector<double> solo_ms(docs.size());
  Timer solo_timer;
  WriteSlice(*db, docs, 0, docs.size(), "solo-", solo_ms, 0);
  const double solo_wall_ms = solo_timer.ElapsedMillis();
  const store::WalWriter::Stats after_solo = db->GetWalStats();

  // --- group: concurrent writers share fsyncs ----------------------------
  std::vector<double> group_ms(docs.size());
  const size_t slice = docs.size() / kWriters;
  Timer group_timer;
  {
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
      const size_t first = w * slice;
      const size_t last = (w + 1 == kWriters) ? docs.size() : first + slice;
      writers.emplace_back([&, w, first, last] {
        WriteSlice(*db, docs, first, last,
                   ("g" + std::to_string(w) + "-").c_str(), group_ms, first);
      });
    }
    for (auto& th : writers) th.join();
  }
  const double group_wall_ms = group_timer.ElapsedMillis();
  const store::WalWriter::Stats after_group = db->GetWalStats();
  const uint64_t group_records = after_group.records - after_solo.records;
  const uint64_t group_batches = after_group.batches - after_solo.batches;
  const double mean_batch =
      group_batches > 0
          ? static_cast<double>(group_records) /
                static_cast<double>(group_batches)
          : 0;

  // --- service: the production front door, reads interleaved -------------
  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  core::Seo seo = bench::BuildSeo(
      {bench::CollectionOntology(*db, "dblp", data::DblpContentTags())},
      "levenshtein", 3.0);
  service::ServiceOptions options;
  options.max_inflight = kWriters + kReaders;
  service::TossService svc(&*db, &seo, &types, options);

  std::vector<service::QueryRequest> queries;
  for (const auto& venue : world.venues) {
    queries.push_back(service::QueryRequest::Select(
        "dblp",
        data::MakeScalabilitySelectionPattern(venue.short_name,
                                              venue.category),
        {1}));
  }

  std::vector<double> svc_mut_ms(docs.size());
  std::vector<double> svc_read_ms;
  std::mutex read_mu;
  std::atomic<bool> ingest_done{false};
  {
    std::vector<std::thread> threads;
    for (size_t w = 0; w < kWriters; ++w) {
      const size_t first = w * slice;
      const size_t last = (w + 1 == kWriters) ? docs.size() : first + slice;
      threads.emplace_back([&, w, first, last] {
        for (size_t i = first; i < last; ++i) {
          const std::string key =
              "s" + std::to_string(w) + "-" + std::to_string(i);
          Timer t;
          bench::CheckOk(
              svc.Run(service::QueryRequest::Insert(
                          "dblp", key, xml::Write(docs[i].second)))
                  .status,
              "service Insert");
          svc_mut_ms[i] = t.ElapsedMillis();
        }
      });
    }
    for (size_t r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        std::vector<double> mine;
        size_t q = r;
        while (!ingest_done.load(std::memory_order_relaxed)) {
          Timer t;
          bench::CheckOk(svc.Run(queries[q % queries.size()]).status,
                         "service Select");
          mine.push_back(t.ElapsedMillis());
          ++q;
        }
        std::lock_guard<std::mutex> lock(read_mu);
        svc_read_ms.insert(svc_read_ms.end(), mine.begin(), mine.end());
      });
    }
    // Writers finish first; readers poll the flag.
    for (size_t w = 0; w < kWriters; ++w) threads[w].join();
    ingest_done.store(true, std::memory_order_relaxed);
    for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  }

  // A checkpoint folds the ingested log into a snapshot; time it for the
  // printed table (smoke keeps it too -- it exercises rotation).
  Timer ckpt_timer;
  bench::CheckOk(db->Checkpoint(), "Checkpoint");
  const double ckpt_ms = ckpt_timer.ElapsedMillis();

  const double group_per_s =
      group_wall_ms > 0
          ? 1000.0 * static_cast<double>(group_records) / group_wall_ms
          : 0;
  std::printf("WAL ingest (%zu docs per phase, %zu writers, %zu readers)\n",
              docs.size(), kWriters, kReaders);
  std::printf("%-28s %10s %10s\n", "phase", "p50-ms", "p99-ms");
  std::printf("%-28s %10.3f %10.3f\n", "solo commit",
              Percentile(solo_ms, 0.50), Percentile(solo_ms, 0.99));
  std::printf("%-28s %10.3f %10.3f\n", "group commit (4 writers)",
              Percentile(group_ms, 0.50), Percentile(group_ms, 0.99));
  std::printf("%-28s %10.3f %10.3f\n", "service mutation",
              Percentile(svc_mut_ms, 0.50), Percentile(svc_mut_ms, 0.99));
  std::printf("%-28s %10.3f %10.3f\n", "service query (during ingest)",
              Percentile(svc_read_ms, 0.50), Percentile(svc_read_ms, 0.99));
  std::printf("\nsolo wall: %.1f ms (%zu fsyncs)   group wall: %.1f ms "
              "(%llu fsyncs, %.2f records/batch, max %llu)\n",
              solo_wall_ms, docs.size(), group_wall_ms,
              static_cast<unsigned long long>(group_batches), mean_batch,
              static_cast<unsigned long long>(after_group.max_batch));
  std::printf("checkpoint after ingest: %.1f ms\n", ckpt_ms);

  bench::RecordBenchMs("wal_ingest/solo_commit_p50_ms",
                       Percentile(solo_ms, 0.50));
  bench::RecordBenchMs("wal_ingest/solo_commit_p99_ms",
                       Percentile(solo_ms, 0.99));
  bench::RecordBenchMs("wal_ingest/group_commit_p50_ms",
                       Percentile(group_ms, 0.50));
  bench::RecordBenchMs("wal_ingest/group_commit_p99_ms",
                       Percentile(group_ms, 0.99));
  bench::RecordBenchMs("wal_ingest/group_mean_batch", mean_batch);
  bench::RecordBenchMs("wal_ingest/group_ingest_per_s", group_per_s);
  bench::RecordBenchMs("wal_ingest/service_mutation_p50_ms",
                       Percentile(svc_mut_ms, 0.50));
  bench::RecordBenchMs("wal_ingest/service_query_p50_ms",
                       Percentile(svc_read_ms, 0.50));
  std::printf(
      "\nExpected shape: group commit cuts fsyncs ~(records/batch)x, so its\n"
      "p50 undercuts solo while p99 stays within a batch's fsync; service\n"
      "mutations add the exclusive-lock handoff, and queries interleave\n"
      "between commits rather than stalling for the whole ingest.\n");
  fs::remove_all(dir);
  return 0;
}
