#!/usr/bin/env python3
"""Bench-regression smoke check.

Compares the current bench report against the committed previous-PR
baseline and fails when any shared timing key regresses by more than the
threshold factor (default 2x). When the report paths are not given, the
two newest BENCH_PR<N>.json files in the repository root (by PR number)
are used -- newest as current, second-newest as baseline -- so CI does not
need re-editing every PR.

Only keys present in BOTH files are compared -- new figures have no
baseline and renamed/retired figures have no current value, and neither
should fail the build. Bookkeeping keys ("meta/...") and raw counter
snapshots ("metrics/...") are not medians and are skipped. Baselines below
the --min-ms floor are skipped too: a 0.3 ms figure doubling is scheduler
noise, not a regression.

Usage: check_bench_regression.py [current.json] [baseline.json]
Exits 0 when no compared key regresses, 1 otherwise, 2 on bad input.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def newest_reports():
    """The two newest BENCH_PR<N>.json files in the repo root, or None."""
    root = Path(__file__).resolve().parent.parent
    reports = []
    for p in root.glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", p.name)
        if m:
            reports.append((int(m.group(1)), p))
    if len(reports) < 2:
        return None
    reports.sort()
    (_, baseline), (_, current) = reports[-2:]
    return str(current), str(baseline)


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(report, dict):
        print(f"error: {path}: expected a flat JSON object", file=sys.stderr)
        sys.exit(2)
    return report


def comparable(key, value):
    # meta/metrics keys are bookkeeping, not medians; qps keys are
    # throughput (higher is better), so a ratio check reads backwards;
    # *_rate keys are ratios in [0, 1] (e.g. net shed_rate), not timings.
    return (
        isinstance(value, (int, float))
        and not key.startswith("meta/")
        and not key.startswith("metrics/")
        and "qps" not in key
        and not key.endswith("_rate")
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?", default=None)
    ap.add_argument("baseline", nargs="?", default=None)
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when current/baseline exceeds this (default 2.0)",
    )
    ap.add_argument(
        "--min-ms",
        type=float,
        default=5.0,
        help="skip keys whose baseline is below this floor (default 5.0)",
    )
    args = ap.parse_args()

    if args.current is None or args.baseline is None:
        detected = newest_reports()
        if detected is None:
            print(
                "error: fewer than two BENCH_PR<N>.json reports in the repo "
                "root and no explicit paths given",
                file=sys.stderr,
            )
            sys.exit(2)
        if args.current is None:
            args.current = detected[0]
        if args.baseline is None:
            args.baseline = detected[1]
        print(f"auto-detected: current={args.current} baseline={args.baseline}")

    current = load(args.current)
    baseline = load(args.baseline)

    shared = sorted(
        k
        for k in current
        if k in baseline
        and comparable(k, current[k])
        and comparable(k, baseline[k])
    )
    if not shared:
        print(
            f"error: no shared timing keys between {args.current} and "
            f"{args.baseline}",
            file=sys.stderr,
        )
        sys.exit(2)

    regressions = []
    compared = 0
    for key in shared:
        base = float(baseline[key])
        cur = float(current[key])
        if base < args.min_ms:
            continue
        compared += 1
        ratio = cur / base
        marker = ""
        if ratio > args.max_ratio:
            marker = "  << REGRESSION"
            regressions.append(key)
        print(f"{key:48s} {base:10.3f} -> {cur:10.3f}  ({ratio:5.2f}x){marker}")

    print(
        f"\n{compared} keys compared (floor {args.min_ms} ms), "
        f"{len(regressions)} above {args.max_ratio}x"
    )
    if regressions:
        print("regressed keys: " + ", ".join(regressions), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
