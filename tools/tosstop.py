#!/usr/bin/env python3
"""tosstop: render service health from successive telemetry dumps.

A TelemetryDump() JSON document (written by benches via TOSS_TELEMETRY_DUMP,
by the crash handler, or on demand) carries cumulative metrics. Given two or
more dumps of the same process, this tool diffs consecutive pairs and prints
one table row per interval: request rate, interval p50/p99 of the service
run latency, shed and error rates, and WAL fsync rate + p99 -- the
at-a-glance "is it healthy" view.

Interval percentiles are interpolated from the 28 power-of-two histogram
buckets embedded in each dump (the same estimator as
Histogram::Snapshot::PercentileMillis in src/obs/metrics.h).

Usage:
  tosstop.py dump1.json dump2.json [dump3.json ...]
  tosstop.py --self-test        # exercises the pipeline on synthetic dumps

Exits 0 on success, 2 on unreadable/malformed input.
"""

import argparse
import json
import sys

NUM_BUCKETS = 28


def bucket_upper_ns(b):
    """Inclusive upper bound of bucket b in ns (mirrors Histogram::UpperBound)."""
    if b + 1 >= NUM_BUCKETS:
        return None  # overflow bucket
    return 256 << b


def percentile_ms(buckets, q):
    """Interpolated quantile in ms over one interval's bucket deltas."""
    count = sum(buckets)
    if count == 0:
        return 0.0
    rank = q * (count - 1)
    seen = 0
    last_finite = bucket_upper_ns(NUM_BUCKETS - 2)
    for b, c in enumerate(buckets):
        if c == 0:
            continue
        lo_rank = seen
        seen += c
        if rank < seen:
            lower = 0.0 if b == 0 else float(bucket_upper_ns(b - 1))
            upper = bucket_upper_ns(b)
            upper = 2.0 * last_finite if upper is None else float(upper)
            in_bucket = (rank - lo_rank + 1.0) / c
            return (lower + in_bucket * (upper - lower)) / 1e6
    return 0.0


def load_dump(path):
    """Reads a dump from a file path or, for http(s):// URLs, from a live
    server's GET /v1/telemetry endpoint (the src/net/ HTTP edge)."""
    try:
        if path.startswith(("http://", "https://")):
            import urllib.request

            url = path if "/v1/telemetry" in path else (
                path.rstrip("/") + "/v1/telemetry")
            with urllib.request.urlopen(url, timeout=10) as resp:
                doc = json.load(resp)
        else:
            with open(path) as f:
                doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or "metrics" not in doc:
        print(f"error: {path}: not a telemetry dump", file=sys.stderr)
        sys.exit(2)
    return doc


def counter(doc, name):
    return doc["metrics"].get("counters", {}).get(name, 0)


def hist_buckets(doc, name):
    h = doc["metrics"].get("histograms", {}).get(name)
    if h is None:
        return [0] * NUM_BUCKETS
    return h.get("buckets", [0] * NUM_BUCKETS)


def interval_row(prev, cur):
    dt_ms = cur.get("ts_unix_ms", 0) - prev.get("ts_unix_ms", 0)
    dt_s = max(dt_ms / 1000.0, 1e-9)

    def rate(name):
        return max(counter(cur, name) - counter(prev, name), 0) / dt_s

    def delta_buckets(name):
        pb, cb = hist_buckets(prev, name), hist_buckets(cur, name)
        return [max(c - p, 0) for p, c in zip(pb, cb)]

    run = delta_buckets("service.run_latency_ns")
    fsync = delta_buckets("store.wal.fsync_latency_ns")
    return {
        "dt_s": dt_s,
        "qps": rate("service.requests"),
        "p50_ms": percentile_ms(run, 0.5),
        "p99_ms": percentile_ms(run, 0.99),
        "shed_s": rate("service.shed"),
        "err_s": rate("service.errors"),
        "fsync_s": rate("store.wal.fsyncs"),
        "fsync_p99_ms": percentile_ms(fsync, 0.99),
    }


HEADER = (
    f"{'interval':>9} {'qps':>9} {'p50_ms':>8} {'p99_ms':>8} "
    f"{'shed/s':>8} {'err/s':>8} {'fsync/s':>8} {'fsyncp99':>9}"
)


def format_row(row):
    return (
        f"{row['dt_s']:>8.1f}s {row['qps']:>9.1f} {row['p50_ms']:>8.3f} "
        f"{row['p99_ms']:>8.3f} {row['shed_s']:>8.1f} {row['err_s']:>8.1f} "
        f"{row['fsync_s']:>8.1f} {row['fsync_p99_ms']:>9.3f}"
    )


def render(dumps):
    print(HEADER)
    for prev, cur in zip(dumps, dumps[1:]):
        print(format_row(interval_row(prev, cur)))


def synthetic_dump(ts_ms, requests, shed, errors, fsyncs, run_buckets,
                   fsync_buckets):
    return {
        "ts_unix_ms": ts_ms,
        "build": {"project": "toss"},
        "metrics": {
            "counters": {
                "service.requests": requests,
                "service.shed": shed,
                "service.errors": errors,
                "store.wal.fsyncs": fsyncs,
            },
            "gauges": {},
            "histograms": {
                "service.run_latency_ns": {
                    "count": sum(run_buckets),
                    "buckets": run_buckets,
                },
                "store.wal.fsync_latency_ns": {
                    "count": sum(fsync_buckets),
                    "buckets": fsync_buckets,
                },
            },
        },
        "timeseries": {"interval_ms": 500, "windows": []},
        "flight_recorder": {"records": [], "sampled_traces": []},
    }


def self_test():
    """Two synthetic dumps one second apart; checks the computed rates."""
    zeros = [0] * NUM_BUCKETS
    run1 = list(zeros)
    # 95 samples in bucket 12 ((512us, 1.05ms]) and 5 in bucket 16
    # ((8.4ms, 16.8ms]): interval p50 lands in bucket 12, p99 (rank 98.01)
    # in bucket 16.
    run2 = list(zeros)
    run2[12] = 95
    run2[16] = 5
    fsync2 = list(zeros)
    fsync2[14] = 10
    d1 = synthetic_dump(1000, 0, 0, 0, 0, run1, zeros)
    d2 = synthetic_dump(2000, 100, 5, 7, 10, run2, fsync2)

    row = interval_row(d1, d2)
    assert abs(row["qps"] - 100.0) < 1e-6, row
    assert abs(row["shed_s"] - 5.0) < 1e-6, row
    assert abs(row["err_s"] - 7.0) < 1e-6, row
    assert abs(row["fsync_s"] - 10.0) < 1e-6, row
    assert 0.512 < row["p50_ms"] <= 1.049, row
    assert 8.388 < row["p99_ms"] <= 16.778, row
    assert 2.097 < row["fsync_p99_ms"] <= 4.195, row
    render([d1, d2])
    print("self-test ok")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("dumps", nargs="*", help="two or more telemetry dumps")
    ap.add_argument("--self-test", action="store_true",
                    help="run on synthetic dumps and verify the math")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0
    if len(args.dumps) < 2:
        ap.error("need at least two dump files (or --self-test)")
    render([load_dump(p) for p in args.dumps])
    return 0


if __name__ == "__main__":
    sys.exit(main())
